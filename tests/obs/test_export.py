"""Exporter tests: repro-trace/1 JSONL, Chrome trace_event, heatmap."""

import json

import pytest

from repro import core, obs
from repro.graphs.specs import parse_graph


@pytest.fixture(scope="module")
def trace():
    with obs.capture() as session:
        core.run_apsp(parse_graph("er:16:p=0.3:seed=2"), seed=0)
    return session.build_trace(0, label="apsp er16")


class TestJsonl:
    def test_every_line_parses(self, trace):
        lines = [json.loads(line) for line in obs.to_jsonl(trace)]
        assert lines[0]["type"] == "header"
        assert lines[0]["schema"] == "repro-trace/1"
        assert lines[0]["n"] == 16 and lines[0]["label"] == "apsp er16"
        types = {line["type"] for line in lines}
        assert types == {"header", "round", "message", "event", "span"}

    def test_stream_is_complete(self, trace):
        lines = [json.loads(line) for line in obs.to_jsonl(trace)]
        by_type = {}
        for line in lines:
            by_type.setdefault(line["type"], []).append(line)
        assert len(by_type["message"]) == len(trace.messages)
        assert len(by_type["event"]) == len(trace.events)
        assert len(by_type["span"]) == len(trace.spans)
        assert sum(r["messages"] for r in by_type["round"]) == \
            len(trace.messages)

    def test_write_jsonl(self, trace, tmp_path):
        path = obs.write_jsonl(trace, tmp_path / "t.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert json.loads(lines[0])["schema"] == "repro-trace/1"
        assert len(lines) >= 1 + len(trace.messages)


class TestChrome:
    def test_structure_is_loadable(self, trace, tmp_path):
        path = obs.write_chrome(trace, tmp_path / "t.json")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert isinstance(data["traceEvents"], list)
        assert data["otherData"]["schema"] == "repro-trace/1"
        for event in data["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] != "M":
                assert "ts" in event
            if event["ph"] == "X":
                assert event["dur"] > 0

    def test_lanes_present(self, trace):
        data = obs.to_chrome(trace)
        names = {
            e["args"]["name"]
            for e in data["traceEvents"]
            if e["name"] == "process_name"
        }
        assert names == {"rounds", "nodes", "edges"}
        phases = {e["ph"] for e in data["traceEvents"]}
        assert {"M", "C", "X"} <= phases

    def test_rounds_map_to_microseconds(self, trace):
        from repro.obs.export import ROUND_US

        data = obs.to_chrome(trace)
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert slices
        assert all(e["ts"] % ROUND_US == 0 for e in slices)
        assert max(e["ts"] for e in slices) <= trace.rounds * ROUND_US


class TestHeatmapAndSummary:
    def test_heatmap_rows_are_busiest_edges(self, trace):
        text = obs.render_heatmap(trace, max_edges=5)
        lines = text.splitlines()
        rows = [line for line in lines if "|" in line]
        assert len(rows) == 5
        busiest = max(
            trace.edge_totals().items(), key=lambda kv: kv[1][1]
        )[0]
        assert f"{busiest[0]}->{busiest[1]}" in text

    def test_heatmap_width_bounds_columns(self, trace):
        text = obs.render_heatmap(trace, width=30, max_edges=3)
        rows = [line for line in text.splitlines() if "|" in line]
        cells = rows[0].split("|")[1]
        assert len(cells) <= 30

    def test_empty_trace_heatmap(self):
        from repro.obs.session import Trace

        empty = Trace(n=2, m=1, bandwidth_bits=48, rounds=0,
                      messages=[], events=[], spans=[], queue_depths={})
        assert "no messages" in obs.render_heatmap(empty)

    def test_summary_mentions_invariants_and_census(self, trace):
        text = obs.render_summary(trace)
        assert "lemma1_no_wave_collisions" in text
        assert "remark3_single_pebble_hop" in text
        assert "BfsToken" in text
        assert "round x edge heatmap" in text
