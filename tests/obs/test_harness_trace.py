"""Harness integration: campaigns recording traces into the ResultStore."""

import json

import pytest

from repro.harness import CampaignSpec, SpecError, run_campaign
from repro.harness.runner import execute_task
from repro.harness.spec import Task


class TestSpecTraceField:
    def test_expand_adds_trace_param(self):
        spec = CampaignSpec.from_dict({
            "graphs": ["path:6"], "trace": True,
        })
        tasks = spec.expand()
        assert all(t.param_dict()["trace"] is True for t in tasks)

    def test_with_trace_round_trip(self):
        spec = CampaignSpec.from_dict({"graphs": ["path:6"]})
        assert not spec.trace
        traced = spec.with_trace()
        assert traced.trace and not spec.trace
        assert traced.with_trace(False).expand() == spec.expand()

    def test_trace_changes_cache_key(self):
        spec = CampaignSpec.from_dict({"graphs": ["path:6"]})
        plain = spec.expand()[0]
        traced = spec.with_trace().expand()[0]
        assert plain.key() != traced.key()

    def test_trace_rejected_as_shared_param(self):
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({
                "graphs": ["path:6"], "params": {"trace": True},
            })


class TestExecuteTask:
    def test_traced_record_carries_summary(self):
        task = Task.make("path:8", "apsp", {"seed": 0, "trace": True})
        record = execute_task(task)
        trace = record["trace"]
        assert trace["schema"] == "repro-trace/1"
        assert trace["lemma1_collisions"] == 0
        assert trace["rounds"] == record["metrics"]["rounds"]
        assert trace["messages"] == record["metrics"]["messages_total"]

    def test_untraced_record_has_no_trace_field(self):
        record = execute_task(Task.make("path:8", "apsp", {"seed": 0}))
        assert "trace" not in record

    def test_traced_record_is_deterministic(self):
        task = Task.make("er:16:p=0.3:seed=2", "apsp",
                         {"seed": 0, "trace": True})
        first = execute_task(task)
        second = execute_task(task)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_traced_run_metrics_match_untraced(self):
        plain = execute_task(Task.make("torus:3x4", "apsp", {"seed": 0}))
        traced = execute_task(
            Task.make("torus:3x4", "apsp", {"seed": 0, "trace": True})
        )
        assert traced["metrics"] == plain["metrics"]
        assert traced["result"] == plain["result"]


class TestCampaignEndToEnd:
    def test_traced_campaign_stores_summaries(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "traced",
            "graphs": ["path:{n}"],
            "sizes": [8, 10],
            "algorithms": ["apsp"],
            "trace": True,
        })
        store = tmp_path / "out.jsonl"
        summary = run_campaign(
            spec, store_path=store, cache_dir=tmp_path / "cache",
            show_progress=False,
        )
        assert summary.failures == 0
        records = [
            json.loads(line)
            for line in store.read_text(encoding="utf-8").splitlines()
        ]
        assert len(records) == 2
        for record in records:
            assert record["trace"]["schema"] == "repro-trace/1"
            assert record["trace"]["lemma1_collisions"] == 0

    def test_cache_replay_returns_identical_trace(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "traced",
            "graphs": ["path:8"],
            "algorithms": ["apsp"],
            "trace": True,
        })
        cache = tmp_path / "cache"

        def run(out):
            run_campaign(spec, store_path=out, cache_dir=cache,
                         show_progress=False)
            return [
                json.loads(line)
                for line in out.read_text(encoding="utf-8").splitlines()
            ]

        first = run(tmp_path / "a.jsonl")
        second = run(tmp_path / "b.jsonl")
        assert second[0]["timing"]["cache_hit"]
        for record in (first[0], second[0]):
            record.pop("timing")
        assert first[0] == second[0]
