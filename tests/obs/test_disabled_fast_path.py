"""The disabled-tracer contract: importing ``repro.obs`` must change
nothing observable.

The span/event instrumentation inside :mod:`repro.core` is guarded by a
single module-global slot, and the message-capture hook only attaches
when a capture session is live.  This module pins all of it, with
``repro.obs`` *imported* throughout (it is, above):

* no tracer is active by default, and traced-then-exited sessions leave
  the globals clean;
* an untraced run keeps the strict fault-free fast path;
* golden-equivalence cases still reproduce their pinned metrics and
  result digests byte-for-byte;
* the bench suite's deterministic counters still equal the committed
  ``benchmarks/results/baseline.json`` (the regression gate's anchor).
"""

import json
from pathlib import Path

import pytest

import repro.obs  # noqa: F401 — importing it is the point
from repro import core
from repro.congest.network import Network
from repro.core.apsp import ApspNode
from repro.graphs.specs import parse_graph
from repro.obs import is_enabled

BASELINE = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "results" / "baseline.json"
)


class TestInertByDefault:
    def test_no_tracer_installed(self):
        assert not is_enabled()

    def test_untraced_network_keeps_fast_path(self):
        network = Network(parse_graph("path:6"), ApspNode, seed=0)
        assert network._fast_path
        network.run()
        assert network._fast_path

    def test_traced_network_leaves_fast_path_and_next_run_regains_it(self):
        from repro import obs

        with obs.capture():
            traced = Network(parse_graph("path:6"), ApspNode, seed=0)
            assert not traced._fast_path
            traced.run()
        untraced = Network(parse_graph("path:6"), ApspNode, seed=0)
        assert untraced._fast_path


class TestGoldensUnchanged:
    """The golden-equivalence suite runs in full elsewhere; here we pin
    one fast-path and one fault-injected case with repro.obs imported in
    the same process, which is what this module is about."""

    @pytest.fixture(scope="class")
    def goldens(self):
        path = (
            Path(__file__).resolve().parents[1]
            / "congest" / "golden_equivalence.json"
        )
        return json.loads(path.read_text(encoding="utf-8"))

    def test_apsp_strict_case_byte_identical(self, goldens):
        from tests.congest.test_golden_equivalence import CASES

        assert CASES["apsp_strict_tracked"]() == \
            goldens["apsp_strict_tracked"]

    def test_ssp_case_byte_identical(self, goldens):
        from tests.congest.test_golden_equivalence import CASES

        assert CASES["ssp_er24"]() == goldens["ssp_er24"]


class TestBenchCountersUnchanged:
    @pytest.fixture(scope="class")
    def baseline(self):
        return json.loads(BASELINE.read_text(encoding="utf-8"))

    @pytest.mark.parametrize("name", ["bench_apsp", "bench_ssp"])
    def test_quick_counters_match_baseline(self, baseline, name):
        from repro.bench.workloads import WORKLOADS

        pinned = baseline["workloads"][name]
        metrics = WORKLOADS[name].run(quick=True)
        assert metrics.rounds == pinned["rounds"]
        assert metrics.messages_total == pinned["messages"]
        assert metrics.bits_total == pinned["bits"]


class TestTracingIsObservationallyInvisible:
    """Tracing takes the slow path, but deliveries, results and metrics
    must be identical — the capture layer is a pure observer."""

    def test_traced_run_matches_untraced_metrics_and_results(self):
        from repro import obs

        graph = parse_graph("er:20:p=0.2:seed=5")
        plain = core.run_apsp(graph, seed=0)
        with obs.capture():
            traced = core.run_apsp(graph, seed=0)
        assert traced.metrics.to_dict() == plain.metrics.to_dict()
        assert {
            uid: res.distances for uid, res in traced.results.items()
        } == {
            uid: res.distances for uid, res in plain.results.items()
        }
