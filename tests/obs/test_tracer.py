"""Unit tests for the span/event runtime (repro.obs.tracer)."""

import pytest

from repro.obs import tracer as tracer_mod
from repro.obs.tracer import Tracer


class TestTracer:
    def test_event_recording(self):
        tracer = Tracer()
        tracer.event("pebble_move", node=3, round_no=17, to=5)
        tracer.event("pebble_move", node=5, round_no=18, to=3)
        tracer.event("other", node=1, round_no=1)
        moves = tracer.events("pebble_move")
        assert len(moves) == 2
        assert moves[0].node == 3 and moves[0].round_no == 17
        assert moves[0].attrs == {"to": 5}
        assert len(tracer.events()) == 3

    def test_span_pairing(self):
        tracer = Tracer()
        sid = tracer.span_begin("bfs_wave", node=4, round_no=10, src=4)
        tracer.event("noise", round_no=11)
        tracer.span_end(sid, round_no=25, adopted=19)
        spans = tracer.finished_spans()
        assert len(spans) == 1
        span = spans[0]
        assert span.name == "bfs_wave"
        assert (span.begin, span.end, span.rounds) == (10, 25, 15)
        # End attrs merge over begin attrs.
        assert span.attrs == {"src": 4, "adopted": 19}

    def test_open_span_closed_at_final_round(self):
        tracer = Tracer()
        tracer.span_begin("phase", round_no=5)
        spans = tracer.finished_spans(final_round=40)
        assert spans[0].end == 40
        # Without a final round the span collapses to its begin round.
        assert tracer.finished_spans()[0].end == 5

    def test_span_ids_are_distinct(self):
        tracer = Tracer()
        ids = {tracer.span_begin("s", round_no=i) for i in range(5)}
        assert len(ids) == 5

    def test_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("setup", node=1, round_no=3):
            tracer.event("inner", round_no=3)
        spans = tracer.finished_spans()
        assert spans[0].name == "setup" and spans[0].rounds == 0


class TestModuleSlot:
    def test_disabled_by_default(self):
        assert not tracer_mod.is_enabled()
        assert tracer_mod.active() is None

    def test_module_event_is_noop_when_disabled(self):
        tracer_mod.event("ignored", node=1, round_no=1)
        with tracer_mod.span("also_ignored") as sid:
            assert sid is None
        assert not tracer_mod.is_enabled()

    def test_tracing_installs_and_restores(self):
        with tracer_mod.tracing() as tracer:
            assert tracer_mod.active() is tracer
            tracer_mod.event("seen", round_no=1)
            assert len(tracer.events("seen")) == 1
        assert tracer_mod.active() is None

    def test_tracing_nests(self):
        with tracer_mod.tracing() as outer:
            with tracer_mod.tracing() as inner:
                assert tracer_mod.active() is inner
                tracer_mod.event("inner_only")
            assert tracer_mod.active() is outer
            assert outer.events("inner_only") == []
        assert not tracer_mod.is_enabled()

    def test_tracing_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with tracer_mod.tracing():
                raise RuntimeError("boom")
        assert not tracer_mod.is_enabled()
