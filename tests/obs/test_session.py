"""Capture-session behaviour: hook install/restore, trace assembly,
queue depths, and the messages=False fast-path-preserving mode."""

import pytest

from repro import core, obs
from repro.congest import network as network_mod
from repro.congest.network import Network
from repro.core.apsp import ApspNode
from repro.graphs.specs import parse_graph
from repro.obs import tracer as tracer_mod


class TestHooks:
    def test_hooks_restored_after_capture(self):
        assert network_mod._network_observer is None
        with obs.capture():
            assert network_mod._network_observer is not None
            assert tracer_mod.is_enabled()
        assert network_mod._network_observer is None
        assert not tracer_mod.is_enabled()

    def test_hooks_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("boom")
        assert network_mod._network_observer is None
        assert not tracer_mod.is_enabled()

    def test_empty_capture_raises_on_trace(self):
        with obs.capture() as session:
            pass
        assert session.network_count == 0
        with pytest.raises(ValueError):
            _ = session.trace


class TestTraceAssembly:
    def test_trace_matches_metrics(self):
        graph = parse_graph("torus:4x4")
        with obs.capture() as session:
            summary = core.run_apsp(graph, seed=0)
        trace = session.trace
        assert trace.n == graph.n and trace.m == graph.m
        assert trace.rounds == summary.metrics.rounds
        assert len(trace.messages) == summary.metrics.messages_total
        assert sum(r.bits for r in trace.messages) == \
            summary.metrics.bits_total

    def test_message_fields_decoded(self):
        with obs.capture() as session:
            core.run_apsp(parse_graph("path:6"), seed=0)
        tokens = [
            r for r in session.trace.messages if r.kind == "BfsToken"
        ]
        assert tokens
        assert all(
            set(r.fields) == {"root", "dist"} and r.bits > 0
            for r in tokens
        )

    def test_multiple_networks_indexed(self):
        with obs.capture() as session:
            core.run_apsp(parse_graph("path:5"), seed=0)
            core.run_apsp(parse_graph("cycle:6"), seed=0)
        assert session.network_count == 2
        assert session.build_trace(0).n == 5
        assert session.build_trace(1).n == 6

    def test_round_stats_and_edge_totals_consistent(self):
        with obs.capture() as session:
            core.run_apsp(parse_graph("grid:3x4"), seed=0)
        trace = session.trace
        stats = trace.round_stats()
        assert sum(s.messages for s in stats) == len(trace.messages)
        totals = trace.edge_totals()
        assert sum(c for c, _ in totals.values()) == len(trace.messages)
        assert 0.0 < trace.max_edge_utilization() <= 1.0

    def test_queue_depths_under_serialize_backlog(self):
        from repro.congest.message import IdMessage
        from repro.congest.node import NodeAlgorithm

        class BurstNode(NodeAlgorithm):
            """Stages 4 one-per-round messages at once, forcing backlog."""

            def program(self):
                if self.uid == 1:
                    for _ in range(4):
                        self.send(2, IdMessage(uid=self.uid))
                for _ in range(8):
                    yield
                return None

        graph = parse_graph("path:2")
        with obs.capture() as session:
            network = Network(graph, BurstNode, seed=0, policy="serialize")
            budget = network.size_model.size_bits(IdMessage(uid=1))
            network.policy.budget_bits = budget  # one message per round
            network.run()
        depths = session.trace.queue_depths
        assert depths, "serialize backlog must surface queue depths"
        # 4 staged, 1 delivered per round: depths 3, 2, 1 remain.
        assert sorted(
            per_edge[(1, 2)] for per_edge in depths.values()
        ) == [1, 2, 3]


class TestMessagesOff:
    def test_spans_only_capture_keeps_fast_path(self):
        captured = []
        original = Network.__init__

        def spy(self, *args, **kwargs):
            original(self, *args, **kwargs)
            captured.append(self)

        Network.__init__ = spy
        try:
            with obs.capture(messages=False) as session:
                core.run_apsp(parse_graph("path:6"), seed=0)
        finally:
            Network.__init__ = original
        assert session.network_count == 0
        assert captured and captured[0]._fast_path
        # Span/event instrumentation still ran.
        assert session.tracer.events("pebble_move")
        assert any(
            s.name == "bfs_tree"
            for s in session.tracer.finished_spans()
        )
