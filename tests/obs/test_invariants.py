"""Paper invariants over real traces (the acceptance criteria of the
observability layer): Lemma 1 / Remark 3 on Algorithm 1, Theorem 3 on
Algorithm 2 — plus negative tests on fabricated traces so a violation
would actually be flagged."""

import pytest

from repro import core, obs
from repro.graphs.specs import parse_graph
from repro.obs.invariants import (
    check,
    lemma1_collisions,
    max_wave_delay,
    pebble_hops_per_round,
    ssp_source_count,
    wave_delays,
)
from repro.obs.session import MessageRecord, Trace


def _capture(run):
    with obs.capture() as session:
        run()
    return session.trace


@pytest.fixture(scope="module")
def apsp32_trace():
    graph = parse_graph("er:32:p=0.15:seed=1")
    return _capture(lambda: core.run_apsp(graph, seed=0))


@pytest.fixture(scope="module")
def ssp_trace():
    graph = parse_graph("er:32:p=0.15:seed=1")
    return _capture(
        lambda: core.run_ssp(graph, [1, 5, 9, 13, 17], seed=0)
    )


class TestLemma1:
    def test_no_collisions_on_32_node_apsp(self, apsp32_trace):
        assert lemma1_collisions(apsp32_trace) == []

    def test_collisions_detected_on_fabricated_trace(self):
        colliding = Trace(
            n=3, m=2, bandwidth_bits=48, rounds=5,
            messages=[
                MessageRecord(3, 1, 2, "BfsToken", 10,
                              {"root": 1, "dist": 1}),
                MessageRecord(3, 1, 2, "BfsToken", 10,
                              {"root": 2, "dist": 2}),
            ],
            events=[], spans=[], queue_depths={},
        )
        found = lemma1_collisions(colliding)
        assert len(found) == 1
        assert found[0].roots == (1, 2)
        result = next(
            r for r in check(colliding)
            if r.name == "lemma1_no_wave_collisions"
        )
        assert not result.ok

    def test_check_reports_ok(self, apsp32_trace):
        result = next(
            r for r in check(apsp32_trace)
            if r.name == "lemma1_no_wave_collisions"
        )
        assert result.ok


class TestRemark3:
    def test_single_pebble_hop_per_round(self, apsp32_trace):
        hops = pebble_hops_per_round(apsp32_trace)
        assert hops, "APSP trace must contain pebble messages"
        assert max(hops.values()) == 1

    def test_total_hops_is_2n_minus_2(self, apsp32_trace):
        # Remark 3: a DFS traversal crosses each tree edge twice.
        assert sum(pebble_hops_per_round(apsp32_trace).values()) == \
            2 * (apsp32_trace.n - 1)


class TestTheorem3:
    def test_wave_delay_within_source_count(self, ssp_trace):
        delay = max_wave_delay(ssp_trace)
        size_s = ssp_source_count(ssp_trace)
        assert size_s == 5
        assert delay is not None
        assert 0 <= delay <= size_s

    def test_every_pair_has_nonnegative_delay(self, ssp_trace):
        delays = wave_delays(ssp_trace)
        # Every (node, source) pair adopted a distance, except each
        # source's own zero-distance entry (set locally, no adoption).
        assert len(delays) == (ssp_trace.n - 1) * 5
        assert all(d >= 0 for d in delays.values())

    def test_check_reports_bound(self, ssp_trace):
        result = next(
            r for r in check(ssp_trace)
            if r.name == "theorem3_wave_delay_bound"
        )
        assert result.ok

    def test_violation_detected_on_fabricated_events(self, ssp_trace):
        from repro.obs.tracer import ObsRecord

        late = Trace(
            n=2, m=1, bandwidth_bits=48, rounds=50,
            messages=[], spans=[], queue_depths={},
            events=[
                ObsRecord("event", "ssp_loop_start", 10, 1, None,
                          {"size_s": 2, "duration": 20, "in_s": True}),
                # Distance 3 adopted at round 40: delay 27 > |S| = 2.
                ObsRecord("event", "wave_adopt", 40, 2, None,
                          {"source": 1, "dist": 3}),
            ],
        )
        result = next(
            r for r in check(late)
            if r.name == "theorem3_wave_delay_bound"
        )
        assert not result.ok


class TestSummaryDigest:
    def test_summary_carries_invariant_counters(self, apsp32_trace):
        summary = apsp32_trace.summary_dict()
        assert summary["schema"] == "repro-trace/1"
        assert summary["lemma1_collisions"] == 0
        assert summary["max_pebble_hops_per_round"] == 1
        assert summary["messages"] == len(apsp32_trace.messages)

    def test_ssp_summary_carries_wave_delay(self, ssp_trace):
        summary = ssp_trace.summary_dict()
        assert summary["max_wave_delay"] <= 5
