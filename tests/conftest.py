"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

from repro.graphs import (
    Graph,
    barbell_graph,
    caterpillar_graph,
    circulant_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    random_tree,
    star_graph,
    torus_graph,
)

# Simulations are slow relative to hypothesis defaults; tune globally.
settings.register_profile(
    "sim",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("sim")


def topology_zoo():
    """The standard graph menagerie most algorithm tests run over.

    Kept small enough that a full-APSP test over the whole zoo stays
    fast, while covering trees, cycles, dense/sparse, low/high diameter
    and odd/even girth.
    """
    return [
        ("path12", path_graph(12)),
        ("cycle9", cycle_graph(9)),
        ("cycle10", cycle_graph(10)),
        ("star9", star_graph(9)),
        ("complete7", complete_graph(7)),
        ("bipartite4x5", complete_bipartite_graph(4, 5)),
        ("grid4x4", grid_graph(4, 4)),
        ("torus4x5", torus_graph(4, 5)),
        ("tree20", random_tree(20, seed=7)),
        ("caterpillar", caterpillar_graph(6, 2)),
        ("lollipop", lollipop_graph(5, 6)),
        ("barbell", barbell_graph(4, 3)),
        ("circulant", circulant_graph(14, [1, 4])),
        ("er25", erdos_renyi_graph(25, 0.15, seed=3, ensure_connected=True)),
        ("er25dense", erdos_renyi_graph(25, 0.4, seed=5, ensure_connected=True)),
    ]


@pytest.fixture(params=topology_zoo(), ids=lambda pair: pair[0])
def zoo_graph(request) -> Graph:
    """Parametrized fixture iterating over the topology zoo."""
    return request.param[1]


def random_connected_graph(n: int, seed: int) -> Graph:
    """A small random connected graph (for hypothesis-driven tests)."""
    rng = random.Random(seed)
    p = rng.uniform(0.08, 0.5)
    return erdos_renyi_graph(n, p, seed=seed, ensure_connected=True)
