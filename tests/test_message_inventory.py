"""Global message-inventory invariants.

Every registered message type must fit the default CONGEST budget at
every network size — the blanket version of the paper's "messages carry
O(log n) bits" claims, checked once for the whole inventory so adding
an oversized message type fails loudly.
"""

import pytest

from repro.congest.message import MESSAGE_REGISTRY, SizeModel
from repro.congest.network import default_bandwidth

# Importing core registers the protocol messages.
import repro.core  # noqa: F401

SIZES = [2, 10, 100, 1000, 10**4, 10**6]


@pytest.mark.parametrize("n", SIZES)
def test_every_message_fits_default_bandwidth(n):
    model = SizeModel(n)
    budget = default_bandwidth(n)
    for cls in MESSAGE_REGISTRY:
        sample = _sample(cls, n)
        assert sample.size_bits(model) <= budget, (cls.__name__, n)


@pytest.mark.parametrize("n", SIZES)
def test_message_sizes_are_logarithmic(n):
    """Size grows with log n, never with n."""
    small = SizeModel(max(2, n // 100))
    big = SizeModel(n)
    for cls in MESSAGE_REGISTRY:
        sample = _sample(cls, 1)
        growth = sample.size_bits(big) - sample.size_bits(small)
        # At most ~7 extra bits per field for a 100x size increase.
        assert growth <= 8 * max(1, len(cls.FIELDS)), cls.__name__


def test_worst_case_bundles_fit():
    """The specific bundles the algorithms co-schedule on one edge."""
    from repro.core.messages import BfsToken, DownMsg, JoinMsg, PebbleMsg

    for n in SIZES:
        model = SizeModel(n)
        budget = default_bandwidth(n)
        bundles = [
            # APSP traversal: a wave token + the pebble.
            [BfsToken(root=1, dist=0), PebbleMsg()],
            # APSP finish: a wave token + the finish broadcast.
            [BfsToken(root=1, dist=0), DownMsg(root=1, value=0)],
            # Tree building: a wave token + a join.
            [BfsToken(root=1, dist=0), JoinMsg(root=1)],
        ]
        for bundle in bundles:
            total = sum(msg.size_bits(model) for msg in bundle)
            assert total <= budget, (n, [type(m).__name__
                                         for m in bundle])


def _sample(cls, n):
    """Instantiate a message type with minimal legal field values."""
    kwargs = {}
    for name, kind in cls.FIELDS:
        if kind == "id":
            kwargs[name] = 1
        elif kind == "flag":
            kwargs[name] = False
        else:
            kwargs[name] = 0
    return cls(**kwargs)
