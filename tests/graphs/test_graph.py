"""Unit tests for the Graph type."""

import pytest

from repro.congest.errors import GraphError
from repro.graphs import Graph, normalize_edge, path_graph


class TestConstruction:
    def test_basic(self):
        g = Graph([1, 2, 3], [(1, 2), (3, 2)])
        assert g.n == 3
        assert g.m == 2
        assert g.nodes == (1, 2, 3)
        assert g.edges == ((1, 2), (2, 3))

    def test_isolated_nodes_allowed(self):
        g = Graph([1, 2, 3], [(1, 2)])
        assert g.degree(3) == 0
        assert not g.is_connected()

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph([1], [(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph([1, 2], [(1, 2), (2, 1)])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(GraphError):
            Graph([1, 2], [(1, 3)])

    def test_non_positive_node_rejected(self):
        with pytest.raises(GraphError):
            Graph([0, 1], [])
        with pytest.raises(GraphError):
            Graph([-3], [])

    def test_non_int_node_rejected(self):
        with pytest.raises(GraphError):
            Graph(["a"], [])

    def test_from_edges(self):
        g = Graph.from_edges([(5, 2), (2, 9)])
        assert g.nodes == (2, 5, 9)


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph([1, 2, 3, 4], [(2, 4), (2, 1), (2, 3)])
        assert g.neighbors(2) == (1, 3, 4)

    def test_neighbors_unknown_node(self):
        with pytest.raises(GraphError):
            path_graph(3).neighbors(9)

    def test_has_edge(self):
        g = path_graph(3)
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)
        assert not g.has_edge(1, 3)

    def test_min_node(self):
        assert Graph([4, 7, 2], []).min_node() == 2
        with pytest.raises(GraphError):
            Graph([], []).min_node()

    def test_directed_edges_both_orientations(self):
        g = path_graph(3)
        assert sorted(g.directed_edges()) == [
            (1, 2), (2, 1), (2, 3), (3, 2)
        ]


class TestStructure:
    def test_connected(self):
        assert path_graph(5).is_connected()
        assert not Graph([1, 2, 3], [(1, 2)]).is_connected()
        assert Graph([1], []).is_connected()

    def test_subgraph(self):
        g = path_graph(5)
        sub = g.subgraph([2, 3, 4])
        assert sub.nodes == (2, 3, 4)
        assert sub.edges == ((2, 3), (3, 4))

    def test_subgraph_unknown_nodes(self):
        with pytest.raises(GraphError):
            path_graph(3).subgraph([1, 9])

    def test_relabeled(self):
        g = Graph([10, 20, 30], [(10, 30)])
        relabeled, mapping = g.relabeled()
        assert relabeled.nodes == (1, 2, 3)
        assert mapping == {10: 1, 20: 2, 30: 3}
        assert relabeled.has_edge(1, 3)

    def test_union_disjoint(self):
        a = Graph([1, 2], [(1, 2)])
        b = Graph([3, 4], [(3, 4)])
        u = a.union_disjoint(b)
        assert u.n == 4 and u.m == 2

    def test_union_overlapping_rejected(self):
        with pytest.raises(GraphError):
            path_graph(3).union_disjoint(path_graph(2))


class TestDunder:
    def test_equality_and_hash(self):
        a = Graph([1, 2], [(1, 2)])
        b = Graph([2, 1], [(2, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Graph([1, 2], [])

    def test_repr(self):
        assert repr(path_graph(4)) == "Graph(n=4, m=3)"

    def test_normalize_edge(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)
