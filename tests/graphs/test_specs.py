"""Compact graph-spec strings (shared by the CLI and the harness)."""

import pytest

from repro import graphs
from repro.graphs.specs import (
    GraphSpecError,
    has_size_placeholder,
    parse_graph,
    substitute_size,
)


@pytest.mark.parametrize("spec,expected", [
    ("path:6", graphs.path_graph(6)),
    ("cycle:7", graphs.cycle_graph(7)),
    ("star:5", graphs.star_graph(5)),
    ("complete:5", graphs.complete_graph(5)),
    ("grid:3x4", graphs.grid_graph(3, 4)),
    ("torus:3x4", graphs.torus_graph(3, 4)),
    ("tree:9:seed=4", graphs.random_tree(9, seed=4)),
    ("dumbbell:4:3", graphs.dumbbell_with_path(4, 3)),
    ("diameter2:20:seed=1", graphs.diameter_two_random(20, seed=1)),
    ("diameter4:20:seed=1", graphs.diameter_four_blobs(20, seed=1)),
])
def test_families_round_trip(spec, expected):
    assert parse_graph(spec) == expected


def test_er_spec_is_connected_and_seeded():
    graph = parse_graph("er:30:p=0.1:seed=5")
    assert graph.is_connected()
    assert graph == graphs.erdos_renyi_graph(
        30, 0.1, seed=5, ensure_connected=True
    )


def test_file_spec(tmp_path):
    from repro.graphs import io as graph_io

    target = tmp_path / "g.edges"
    graph_io.save(graphs.path_graph(5), target)
    assert parse_graph(f"file:{target}") == graphs.path_graph(5)


def test_unknown_family_rejected():
    with pytest.raises(GraphSpecError):
        parse_graph("hypercube:8")


def test_malformed_arguments_rejected():
    with pytest.raises(GraphSpecError):
        parse_graph("path:banana")
    with pytest.raises(GraphSpecError):
        parse_graph("path")


def test_size_placeholder_helpers():
    assert has_size_placeholder("path:{n}")
    assert not has_size_placeholder("torus:4x4")
    assert substitute_size("er:{n}:p=0.1", 30) == "er:30:p=0.1"
    assert substitute_size("torus:4x4", 30) == "torus:4x4"
