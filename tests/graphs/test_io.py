"""Round-trip tests for the edge-list serialization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import Graph, path_graph
from repro.graphs.io import dumps, load, loads, save
from tests.conftest import random_connected_graph


@given(st.integers(min_value=2, max_value=30),
       st.integers(min_value=0, max_value=10**6))
def test_roundtrip_random_graphs(n, seed):
    graph = random_connected_graph(n, seed)
    assert loads(dumps(graph)) == graph


def test_roundtrip_with_isolated_nodes():
    graph = Graph([1, 2, 3, 9], [(1, 2)])
    assert loads(dumps(graph)) == graph


def test_comments_and_blank_lines_ignored():
    text = "# a comment\n\nn 3\n1 2\n2 3\n"
    graph = loads(text)
    assert graph == path_graph(3)


def test_file_roundtrip(tmp_path):
    graph = random_connected_graph(12, 5)
    target = tmp_path / "graph.txt"
    save(graph, target)
    assert load(target) == graph


def test_malformed_line_rejected():
    import pytest

    from repro.congest.errors import GraphError

    with pytest.raises(GraphError):
        loads("1 2 3\n")
