"""Tests for the topology zoo: structural invariants per family."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest.errors import GraphError
from repro.graphs import (
    GIRTH_INFINITE,
    balanced_tree,
    barbell_graph,
    caterpillar_graph,
    circulant_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    diameter,
    diameter_four_blobs,
    diameter_two_random,
    dumbbell_with_path,
    erdos_renyi_graph,
    girth,
    grid_graph,
    lollipop_graph,
    path_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    torus_graph,
)


class TestDeterministicFamilies:
    @pytest.mark.parametrize("n", [1, 2, 5, 12])
    def test_path(self, n):
        g = path_graph(n)
        assert (g.n, g.m) == (n, n - 1)
        if n > 1:
            assert diameter(g) == n - 1
        assert girth(g) == GIRTH_INFINITE

    @pytest.mark.parametrize("n", [3, 4, 9, 10])
    def test_cycle(self, n):
        g = cycle_graph(n)
        assert (g.n, g.m) == (n, n)
        assert diameter(g) == n // 2
        assert girth(g) == n

    @pytest.mark.parametrize("n", [2, 3, 8])
    def test_star(self, n):
        g = star_graph(n)
        assert (g.n, g.m) == (n, n - 1)
        assert g.degree(1) == n - 1
        if n >= 3:
            assert diameter(g) == 2

    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_complete(self, n):
        g = complete_graph(n)
        assert g.m == n * (n - 1) // 2
        if n >= 2:
            assert diameter(g) == 1
        if n >= 3:
            assert girth(g) == 3

    @pytest.mark.parametrize("a,b", [(1, 1), (2, 3), (4, 4)])
    def test_bipartite(self, a, b):
        g = complete_bipartite_graph(a, b)
        assert (g.n, g.m) == (a + b, a * b)
        if min(a, b) >= 2:
            assert girth(g) == 4

    @pytest.mark.parametrize("rows,cols", [(1, 5), (3, 4), (4, 4)])
    def test_grid(self, rows, cols):
        g = grid_graph(rows, cols)
        assert g.n == rows * cols
        assert diameter(g) == rows + cols - 2
        if rows >= 2 and cols >= 2:
            assert girth(g) == 4

    @pytest.mark.parametrize("rows,cols", [(3, 3), (4, 5), (3, 7)])
    def test_torus(self, rows, cols):
        g = torus_graph(rows, cols)
        assert g.n == rows * cols
        assert diameter(g) == rows // 2 + cols // 2
        assert girth(g) == min(rows, cols, 4)

    @pytest.mark.parametrize("b,h", [(2, 0), (2, 3), (3, 2)])
    def test_balanced_tree(self, b, h):
        g = balanced_tree(b, h)
        expected_n = sum(b ** level for level in range(h + 1))
        assert g.n == expected_n
        assert g.m == g.n - 1
        assert g.is_connected()
        assert girth(g) == GIRTH_INFINITE

    def test_caterpillar(self):
        g = caterpillar_graph(5, 2)
        assert g.n == 5 + 10
        assert g.m == g.n - 1
        assert girth(g) == GIRTH_INFINITE

    def test_lollipop(self):
        g = lollipop_graph(5, 4)
        assert g.n == 9
        assert girth(g) == 3
        assert diameter(g) == 5

    def test_barbell(self):
        g = barbell_graph(4, 2)
        assert g.n == 10
        assert girth(g) == 3
        assert g.is_connected()

    def test_circulant(self):
        g = circulant_graph(10, [1])
        assert g == cycle_graph(10)
        g2 = circulant_graph(12, [2, 3])
        assert g2.is_connected()
        assert all(g2.degree(v) == 4 for v in g2.nodes)

    def test_circulant_validation(self):
        with pytest.raises(GraphError):
            circulant_graph(10, [7])

    def test_dumbbell_diameter_control(self):
        for path_len in (2, 5, 9):
            g = dumbbell_with_path(4, path_len)
            assert diameter(g) == path_len + 2
            assert g.is_connected()


class TestRandomFamilies:
    @given(st.integers(min_value=2, max_value=30),
           st.integers(min_value=0, max_value=10**6))
    def test_er_connected_flag(self, n, seed):
        g = erdos_renyi_graph(n, 0.1, seed=seed, ensure_connected=True)
        assert g.n == n
        assert g.is_connected()

    def test_er_determinism(self):
        a = erdos_renyi_graph(20, 0.3, seed=5)
        b = erdos_renyi_graph(20, 0.3, seed=5)
        assert a == b

    def test_er_density_monotone(self):
        sparse = erdos_renyi_graph(30, 0.1, seed=1)
        dense = erdos_renyi_graph(30, 0.8, seed=1)
        assert dense.m > sparse.m

    def test_er_probability_validation(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, 1.5)

    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=10**6))
    def test_random_tree_is_tree(self, n, seed):
        g = random_tree(n, seed=seed)
        assert g.m == n - 1
        assert g.is_connected()

    @pytest.mark.parametrize("n,d", [(8, 3), (10, 4), (13, 2)])
    def test_random_regular(self, n, d):
        g = random_regular_graph(n, d, seed=3)
        assert all(g.degree(v) == d for v in g.nodes)

    def test_random_regular_parity_validation(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)

    @pytest.mark.parametrize("n", [10, 25, 41])
    def test_diameter_two_family(self, n):
        g = diameter_two_random(n, seed=n)
        assert diameter(g) == 2

    @pytest.mark.parametrize("n", [9, 20, 33])
    def test_diameter_four_family(self, n):
        g = diameter_four_blobs(n, seed=n)
        assert diameter(g) == 4
