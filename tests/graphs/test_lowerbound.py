"""Tests for the lower-bound gadget families.

The whole point of these constructions is that their diameter is a
function of hidden disjointness/membership instances, with a narrow
communication cut between the players.  Each property is verified
against the sequential oracle over randomized instances.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest.errors import GraphError
from repro.graphs import (
    communication_lower_bound_bits,
    cut_width,
    cycle_graph,
    diameter,
    diameter_2_vs_3,
    diameter_gap2_family,
    girth,
    girth3_two_bfs_family,
    input_bits,
    mirror_gadget,
    pad_with_path,
    random_disjointness_instance,
    random_membership_instance,
    subdivide,
)
from repro.graphs.analysis import bfs_distances

instance_params = st.tuples(
    st.integers(min_value=2, max_value=6),       # p
    st.booleans(),                               # intersecting
    st.floats(min_value=0.0, max_value=0.9),     # density
    st.integers(min_value=0, max_value=10**6),   # seed
)


class TestDisjointnessInstances:
    @given(instance_params)
    def test_promise_respected(self, params):
        p, intersecting, density, seed = params
        x, y = random_disjointness_instance(
            p, intersecting=intersecting, density=density, seed=seed
        )
        if intersecting:
            assert len(x & y) == 1
        else:
            assert not (x & y)
        universe_ok = all(
            1 <= i <= p and 1 <= j <= p for (i, j) in x | y
        )
        assert universe_ok


class TestDiameter2vs3:
    @given(instance_params)
    def test_planted_diameter_matches_oracle(self, params):
        p, intersecting, density, seed = params
        x, y = random_disjointness_instance(
            p, intersecting=intersecting, density=density, seed=seed
        )
        gadget = diameter_2_vs_3(p, x, y)
        assert gadget.planted_diameter == (3 if intersecting else 2)
        assert diameter(gadget.graph) == gadget.planted_diameter
        assert gadget.disjoint == (not intersecting)

    def test_structure(self):
        x, y = random_disjointness_instance(4, intersecting=False, seed=1)
        gadget = diameter_2_vs_3(4, x, y)
        assert gadget.graph.n == 4 * 4 + 2
        assert cut_width(gadget) == 2 * 4 + 1
        assert input_bits(gadget) == 16
        assert communication_lower_bound_bits(gadget) == 16
        # Sides partition the node set.
        assert gadget.alice_side | gadget.bob_side == \
            gadget.graph.node_set()
        assert not (gadget.alice_side & gadget.bob_side)
        # Cut edges are exactly the side-crossing edges.
        crossing = {
            edge for edge in gadget.graph.edges
            if (edge[0] in gadget.alice_side) != (edge[1] in gadget.alice_side)
        }
        assert crossing == set(gadget.cut_edges)

    def test_cut_grows_linearly_while_input_grows_quadratically(self):
        widths = []
        bits = []
        for p in (2, 4, 8):
            x, y = random_disjointness_instance(p, intersecting=False, seed=p)
            gadget = diameter_2_vs_3(p, x, y)
            widths.append(cut_width(gadget))
            bits.append(input_bits(gadget))
        assert widths == [5, 9, 17]
        assert bits == [4, 16, 64]

    def test_validation(self):
        with pytest.raises(GraphError):
            diameter_2_vs_3(1, frozenset(), frozenset())
        with pytest.raises(GraphError):
            diameter_2_vs_3(3, frozenset({(7, 1)}), frozenset())
        with pytest.raises(GraphError):
            diameter_2_vs_3(
                3,
                frozenset({(1, 1), (2, 2)}),
                frozenset({(1, 1), (2, 2)}),
            )


class TestMirrorGadget:
    @given(instance_params)
    def test_planted_diameter_matches_oracle(self, params):
        p, intersecting, density, seed = params
        x, y = random_disjointness_instance(
            p, intersecting=intersecting, density=density, seed=seed
        )
        gadget = mirror_gadget(p, x, y)
        assert gadget.planted_diameter == (4 if intersecting else 3)
        assert diameter(gadget.graph) == gadget.planted_diameter

    def test_size(self):
        x, y = random_disjointness_instance(3, intersecting=True, seed=2)
        gadget = mirror_gadget(3, x, y)
        assert gadget.graph.n == 6 * 3 + 3


class TestGap2Family:
    @given(
        st.integers(min_value=2, max_value=6),
        st.booleans(),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_diameter_is_d_or_d_plus_2(self, p, intersecting, ell, seed):
        xs, ys = random_membership_instance(
            p, intersecting=intersecting, seed=seed
        )
        gadget = diameter_gap2_family(p, ell, xs, ys)
        d = 2 * ell + 3
        expected = d if intersecting else d + 2
        assert gadget.planted_diameter == expected
        assert diameter(gadget.graph) == expected
        assert gadget.intersecting == intersecting

    def test_witness_pair_realizes_diameter(self):
        xs, ys = random_membership_instance(5, intersecting=False, seed=3)
        gadget = diameter_gap2_family(5, 3, xs, ys)
        u, v = gadget.witness_pair
        assert bfs_distances(gadget.graph, u)[v] == gadget.planted_diameter

    def test_validation(self):
        with pytest.raises(GraphError):
            diameter_gap2_family(5, 1, frozenset({1}), frozenset({2}))
        with pytest.raises(GraphError):
            diameter_gap2_family(5, 3, frozenset(), frozenset({2}))
        with pytest.raises(GraphError):
            diameter_gap2_family(5, 3, frozenset({9}), frozenset({2}))


class TestGirth3Family:
    @given(st.integers(min_value=3, max_value=6), st.booleans(),
           st.integers(min_value=0, max_value=1000))
    def test_girth_is_3_and_verdict_tracks_diameter(self, p, intersecting,
                                                    seed):
        x, y = random_disjointness_instance(
            p, intersecting=intersecting, seed=seed
        )
        gadget = girth3_two_bfs_family(p, x, y)
        assert girth(gadget.graph) == 3
        assert (diameter(gadget.graph) <= 2) == (not intersecting)

    def test_needs_p_at_least_3(self):
        with pytest.raises(GraphError):
            girth3_two_bfs_family(2, frozenset(), frozenset())


class TestPadWithPath:
    """Lemma 11's extension of the hardness family to larger D."""

    @staticmethod
    def row1_instance(p, intersecting, seed):
        x, y = random_disjointness_instance(p, intersecting=False,
                                            seed=seed)
        if not intersecting:
            return x, y
        xs, ys = set(x), set(y)
        xs.add((1, 2))
        ys.add((1, 2))
        ys -= xs - {(1, 2)}
        return frozenset(xs), frozenset(ys)

    @pytest.mark.parametrize("length", [1, 2, 5])
    @pytest.mark.parametrize("intersecting", [True, False])
    def test_diameter_shifts_by_length(self, length, intersecting):
        x, y = self.row1_instance(4, intersecting, seed=3)
        gadget = diameter_2_vs_3(4, x, y)
        padded = pad_with_path(gadget, length)
        base = 3 if intersecting else 2
        assert padded.planted_diameter == base + length
        assert diameter(padded.graph) == base + length

    def test_cut_unchanged(self):
        x, y = self.row1_instance(4, False, seed=1)
        gadget = diameter_2_vs_3(4, x, y)
        padded = pad_with_path(gadget, 4)
        assert padded.cut_edges == gadget.cut_edges

    def test_witness_outside_row1_rejected(self):
        x = frozenset({(2, 3)})
        y = frozenset({(2, 3)})
        gadget = diameter_2_vs_3(4, x, y)
        with pytest.raises(GraphError):
            pad_with_path(gadget, 3)

    def test_length_validated(self):
        x, y = self.row1_instance(3, False, seed=0)
        with pytest.raises(GraphError):
            pad_with_path(diameter_2_vs_3(3, x, y), 0)


class TestSubdivide:
    def test_distances_scale_exactly(self):
        g = cycle_graph(6)
        for k in (1, 2, 3):
            s = subdivide(g, k)
            original = bfs_distances(g, 1)
            stretched = bfs_distances(s, 1)
            for node, dist in original.items():
                assert stretched[node] == k * dist
            assert s.m == k * g.m
            assert girth(s) == k * girth(g)

    def test_k_must_be_positive(self):
        with pytest.raises(GraphError):
            subdivide(cycle_graph(3), 0)
