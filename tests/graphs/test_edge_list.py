"""The tolerant SNAP-style edge-list loader (``file:`` spec backend)."""

from __future__ import annotations

import pytest

from repro.congest.errors import GraphError
from repro.graphs import (
    Graph,
    load_edge_list,
    loads_edge_list,
    path_graph,
)
from repro.graphs import io as graph_io
from repro.graphs.specs import GraphSpecError, parse_graph

MESSY = """\
# SNAP-style comment
% matrix-market-style comment

0 1
1 2  3
2 3\t5
1 2 9
3 3
0 3
"""


def test_messy_snap_file_parses():
    graph = loads_edge_list(MESSY)
    # 0-based ids shift up by one; the self-loop 3-3 is dropped; the
    # duplicate 1-2 edge collapses.
    assert graph.node_set() == {1, 2, 3, 4}
    assert graph.m == 4
    assert graph.has_edge(1, 2) and graph.has_edge(1, 4)


def test_weighted_parse_keeps_first_weight():
    weighted = loads_edge_list(MESSY, weighted=True)
    assert weighted.weight(2, 3) == 3            # not the duplicate's 9
    assert weighted.weight(3, 4) == 5
    assert weighted.weight(1, 2) == 1            # default_weight
    assert weighted.weight(1, 4) == 1


def test_one_based_files_are_not_shifted():
    graph = loads_edge_list("1 2\n2 3\n")
    assert graph.node_set() == {1, 2, 3}


def test_strict_format_is_a_subset():
    original = path_graph(7)
    text = graph_io.dumps(original)
    graph = loads_edge_list(text)
    assert graph.node_set() == original.node_set()
    assert sorted(graph.edges) == sorted(original.edges)


@pytest.mark.parametrize("bad", [
    "1 2 3 4\n",       # too many columns
    "a b\n",           # non-integer ids
    "1 2 0\n",         # non-positive weight
    "1 2 -3\n",
])
def test_malformed_lines_raise_graph_error(bad):
    with pytest.raises(GraphError):
        loads_edge_list(bad)


def test_load_edge_list_and_file_spec(tmp_path):
    target = tmp_path / "edges.txt"
    target.write_text("# toy\n0 1\n1 2\n", encoding="utf-8")
    loaded = load_edge_list(target)
    assert isinstance(loaded, Graph)
    assert loaded.node_set() == {1, 2, 3}
    via_spec = parse_graph(f"file:{target}")
    assert via_spec.node_set() == loaded.node_set()
    assert sorted(via_spec.edges) == sorted(loaded.edges)


def test_file_spec_missing_path_raises():
    with pytest.raises((GraphSpecError, OSError)):
        parse_graph("file:/no/such/edges.txt")
