"""The sequential oracles, cross-checked against networkx.

The distributed algorithms are tested against :mod:`repro.graphs.analysis`;
these tests in turn pin the oracles to an independent implementation, so
no quantity in the project rests on a single piece of code.
"""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest.errors import GraphError
from repro.graphs import (
    GIRTH_INFINITE,
    Graph,
    all_eccentricities,
    all_pairs_distances,
    bfs_distances,
    bfs_tree,
    center,
    cycle_graph,
    diameter,
    distance_matrix,
    eccentricity,
    girth,
    grid_graph,
    is_forest,
    is_k_dominating_set,
    is_tree,
    k_neighborhood,
    path_graph,
    peripheral_vertices,
    radius,
    random_tree,
    star_graph,
)
from tests.conftest import random_connected_graph, topology_zoo


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.nodes)
    g.add_edges_from(graph.edges)
    return g


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestAgainstNetworkx:
    def test_distances(self, name, graph):
        nxg = to_networkx(graph)
        want = dict(nx.all_pairs_shortest_path_length(nxg))
        got = all_pairs_distances(graph)
        assert {u: dict(d) for u, d in got.items()} == \
            {u: dict(d) for u, d in want.items()}

    def test_eccentricity_diameter_radius(self, name, graph):
        nxg = to_networkx(graph)
        assert all_eccentricities(graph) == nx.eccentricity(nxg)
        assert diameter(graph) == nx.diameter(nxg)
        assert radius(graph) == nx.radius(nxg)

    def test_center_peripheral(self, name, graph):
        nxg = to_networkx(graph)
        assert center(graph) == frozenset(nx.center(nxg))
        assert peripheral_vertices(graph) == frozenset(nx.periphery(nxg))

    def test_girth(self, name, graph):
        nxg = to_networkx(graph)
        assert girth(graph) == nx.girth(nxg)


@given(st.integers(min_value=2, max_value=28),
       st.integers(min_value=0, max_value=10**6))
def test_random_graphs_match_networkx(n, seed):
    graph = random_connected_graph(n, seed)
    nxg = to_networkx(graph)
    assert diameter(graph) == nx.diameter(nxg)
    assert girth(graph) == nx.girth(nxg)
    assert all_eccentricities(graph) == nx.eccentricity(nxg)


class TestBfs:
    def test_distances_on_path(self):
        assert bfs_distances(path_graph(4), 2) == {2: 0, 1: 1, 3: 1, 4: 2}

    def test_unknown_source(self):
        with pytest.raises(GraphError):
            bfs_distances(path_graph(3), 7)

    def test_partial_on_disconnected(self):
        g = Graph([1, 2, 3], [(1, 2)])
        assert bfs_distances(g, 1) == {1: 0, 2: 1}

    def test_tree_parents_valid(self):
        g = grid_graph(3, 3)
        parents = bfs_tree(g, 1)
        dist = bfs_distances(g, 1)
        assert parents[1] is None
        for node, parent in parents.items():
            if parent is not None:
                assert dist[node] == dist[parent] + 1
                assert g.has_edge(node, parent)

    def test_tie_break_smallest_parent(self):
        g = cycle_graph(4)  # node 3 reachable via 2 and 4
        parents = bfs_tree(g, 1)
        assert parents[3] == 2


class TestPredicates:
    def test_is_tree(self):
        assert is_tree(random_tree(15, seed=1))
        assert not is_tree(cycle_graph(5))
        assert not is_tree(Graph([1, 2, 3], [(1, 2)]))  # disconnected

    def test_is_forest(self):
        assert is_forest(Graph([1, 2, 3], [(1, 2)]))
        assert not is_forest(cycle_graph(3))

    def test_eccentricity_requires_connectivity(self):
        with pytest.raises(GraphError):
            eccentricity(Graph([1, 2, 3], [(1, 2)]), 1)

    def test_girth_of_forest_infinite(self):
        assert girth(random_tree(10, seed=3)) == GIRTH_INFINITE


class TestNeighborhoodsAndDomination:
    def test_k_neighborhood(self):
        g = path_graph(7)
        assert k_neighborhood(g, 4, 0) == frozenset({4})
        assert k_neighborhood(g, 4, 2) == frozenset({2, 3, 4, 5, 6})

    def test_is_k_dominating(self):
        g = path_graph(9)
        assert is_k_dominating_set(g, [2, 5, 8], 1)
        assert not is_k_dominating_set(g, [2, 5], 1)
        assert is_k_dominating_set(g, [5], 4)

    def test_star_center_dominates(self):
        assert is_k_dominating_set(star_graph(10), [1], 1)


def test_distance_matrix_shape_and_symmetry():
    g = grid_graph(3, 3)
    matrix = distance_matrix(g)
    assert len(matrix) == g.n
    for i in range(g.n):
        assert matrix[i][i] == 0
        for j in range(g.n):
            assert matrix[i][j] == matrix[j][i]
