"""Tests for the weighted-graph extension (subdivision reduction)."""

import random

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest.errors import GraphError
from repro.graphs import Graph, path_graph
from repro.graphs.weighted import (
    WeightedGraph,
    expand,
    from_edge_weights,
    oracle_weighted_distances,
    weighted_apsp,
)
from tests.conftest import random_connected_graph


def random_weighted(n: int, seed: int, max_w: int = 4) -> WeightedGraph:
    base = random_connected_graph(n, seed)
    rng = random.Random(seed)
    weights = {edge: rng.randint(1, max_w) for edge in base.edges}
    return WeightedGraph(base, weights)


class TestConstruction:
    def test_from_edge_weights(self):
        wg = from_edge_weights([1, 2, 3], [(1, 2, 5), (2, 3, 1)])
        assert wg.weight(1, 2) == 5
        assert wg.weight(3, 2) == 1
        assert wg.max_weight == 5

    def test_missing_weight_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph(path_graph(3), {(1, 2): 1})

    def test_unknown_edge_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph(path_graph(2), {(1, 2): 1, (1, 3): 2})

    def test_non_positive_weight_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph(path_graph(2), {(1, 2): 0})


class TestExpansion:
    def test_unit_weights_expand_to_same_graph(self):
        base = path_graph(4)
        wg = WeightedGraph(base, {e: 1 for e in base.edges})
        assert expand(wg).unit_graph == base

    def test_edge_counts(self):
        wg = from_edge_weights([1, 2, 3], [(1, 2, 3), (2, 3, 2)])
        expansion = expand(wg)
        assert expansion.unit_graph.m == 5
        assert expansion.unit_graph.n == 3 + 2 + 1
        assert set(expansion.relay_of.values()) <= {(1, 2), (2, 3)}

    def test_distances_preserved(self):
        wg = random_weighted(10, seed=3)
        expansion = expand(wg)
        oracle = oracle_weighted_distances(wg)
        from repro.graphs import bfs_distances

        for u in wg.graph.nodes:
            hops = bfs_distances(expansion.unit_graph, u)
            for v in wg.graph.nodes:
                assert hops[v] == oracle[u][v]


class TestWeightedApsp:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dijkstra_oracle(self, seed):
        wg = random_weighted(9, seed=seed)
        distances, rounds = weighted_apsp(wg)
        assert distances == oracle_weighted_distances(wg)
        assert rounds > 0

    def test_matches_networkx(self):
        wg = random_weighted(8, seed=7)
        distances, _ = weighted_apsp(wg)
        nxg = nx.Graph()
        for (u, v), w in wg.weights.items():
            nxg.add_edge(u, v, weight=w)
        want = dict(nx.all_pairs_dijkstra_path_length(nxg))
        assert {u: dict(d) for u, d in distances.items()} == \
            {u: dict(d) for u, d in want.items()}

    def test_rounds_grow_with_weights(self):
        base = path_graph(8)
        light = WeightedGraph(base, {e: 1 for e in base.edges})
        heavy = WeightedGraph(base, {e: 4 for e in base.edges})
        _, light_rounds = weighted_apsp(light)
        _, heavy_rounds = weighted_apsp(heavy)
        assert heavy_rounds > light_rounds


@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=10**4))
def test_weighted_apsp_property(n, seed):
    wg = random_weighted(n, seed=seed, max_w=3)
    distances, _ = weighted_apsp(wg)
    assert distances == oracle_weighted_distances(wg)
