"""Smoke tests for the package surface."""

import repro
from repro import congest, core, graphs, harness, protocols


def test_version():
    assert repro.__version__ == "1.1.0"


def test_quickstart_from_docstring():
    g = graphs.torus_graph(4, 4)
    apsp = core.run_apsp(g)
    assert apsp.diameter() == graphs.diameter(g)
    assert apsp.rounds > 0


def test_all_exports_resolve():
    for module in (congest, core, graphs, harness, protocols):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"


def test_layering_core_imports_nothing_private_from_tests():
    # The public surface exposes the documented layers.
    assert repro.__all__ == [
        "congest", "core", "graphs", "harness", "protocols",
        "__version__",
    ]
