"""Smoke tests: the example scripts run end to end and say what they
promise.  (The slowest examples — full sweeps — are exercised at
reduced scope by the unit tests of the algorithms they call; here we
run the fast ones whole.)"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "APSP finished in" in out
    assert "diameter = 6" in out
    assert "shortest route" in out


def test_routing_tables(capsys):
    out = run_example("routing_tables.py", capsys)
    assert "Algorithm 1 (paper)" in out
    assert "link-state" in out
    assert "routing table of router" in out


def test_social_network_center(capsys):
    out = run_example("social_network_center.py", capsys)
    assert "exact (Lemmas 5-6)" in out
    assert "center candidates" in out
    assert "Remark 2" in out


def test_lower_bound_demo(capsys):
    out = run_example("lower_bound_demo.py", capsys)
    assert "disjoint" in out and "intersecting" in out
    assert "Lemma 11" in out


def test_girth_demo(capsys):
    out = run_example("girth_demo.py", capsys)
    assert "g=64" in out
    assert "inf" in out


def test_trace_demo(capsys):
    out = run_example("trace_demo.py", capsys)
    assert "[ok  ] lemma1_no_wave_collisions" in out
    assert "FAIL" not in out
    assert "Theorem 3 allows up to 5" in out
    assert "round x edge heatmap" in out
    assert "repro-trace/1 JSONL" in out


@pytest.mark.slow
def test_diameter_sweep(capsys):
    out = run_example("diameter_sweep.py", capsys)
    assert "Cor1 branch" in out


def test_all_examples_have_docstrings_and_main():
    for script in sorted(EXAMPLES.glob("*.py")):
        text = script.read_text(encoding="utf-8")
        assert '"""' in text, script.name
        assert '__name__ == "__main__"' in text, script.name
        assert "Run:" in text, script.name
