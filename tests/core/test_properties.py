"""Tests for the exact property algorithms (Lemmas 2–7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.properties import GIRTH_INFINITE, run_graph_properties
from repro.graphs import (
    all_eccentricities,
    center,
    cycle_graph,
    diameter,
    girth,
    path_graph,
    peripheral_vertices,
    radius,
    random_tree,
)
from tests.conftest import random_connected_graph, topology_zoo


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestAgainstOracle:
    def test_eccentricities(self, name, graph):
        summary = run_graph_properties(graph)
        assert summary.eccentricities() == all_eccentricities(graph)

    def test_diameter_known_to_all(self, name, graph):
        summary = run_graph_properties(graph)
        assert summary.diameter == diameter(graph)
        values = {r.diameter for r in summary.results.values()}
        assert len(values) == 1  # Definition 6: same estimate everywhere

    def test_radius(self, name, graph):
        summary = run_graph_properties(graph)
        assert summary.radius == radius(graph)

    def test_center_membership(self, name, graph):
        summary = run_graph_properties(graph)
        assert summary.center() == center(graph)

    def test_peripheral_membership(self, name, graph):
        summary = run_graph_properties(graph)
        assert summary.peripheral() == peripheral_vertices(graph)

    def test_girth(self, name, graph):
        summary = run_graph_properties(graph)
        assert summary.girth == girth(graph)

    def test_rounds_linear(self, name, graph):
        summary = run_graph_properties(graph)
        ecc1 = all_eccentricities(graph)[1]
        assert summary.rounds <= 3 * graph.n + 20 * max(1, ecc1) + 30


class TestGirthConventions:
    def test_tree_has_infinite_girth(self):
        summary = run_graph_properties(random_tree(15, seed=4))
        assert summary.girth == GIRTH_INFINITE

    def test_path_has_infinite_girth(self):
        summary = run_graph_properties(path_graph(8))
        assert summary.girth == GIRTH_INFINITE

    def test_odd_and_even_cycles_exact(self):
        assert run_graph_properties(cycle_graph(7)).girth == 7
        assert run_graph_properties(cycle_graph(8)).girth == 8

    def test_girth_can_be_skipped(self):
        summary = run_graph_properties(path_graph(5), include_girth=False)
        assert next(iter(summary.results.values())).girth is None


@given(st.integers(min_value=2, max_value=18),
       st.integers(min_value=0, max_value=10**6))
def test_all_properties_on_random_graphs(n, seed):
    graph = random_connected_graph(n, seed)
    summary = run_graph_properties(graph)
    assert summary.diameter == diameter(graph)
    assert summary.radius == radius(graph)
    assert summary.girth == girth(graph)
    assert summary.center() == center(graph)
    assert summary.peripheral() == peripheral_vertices(graph)
