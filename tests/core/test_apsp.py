"""Tests for Algorithm 1 (APSP): correctness, round bound, Lemma 1."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest import GraphError, Network
from repro.core.apsp import ApspGirthNode, ApspNode, run_apsp
from repro.graphs import (
    Graph,
    all_eccentricities,
    all_pairs_distances,
    bfs_distances,
    diameter,
    path_graph,
)
from tests.conftest import random_connected_graph, topology_zoo


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestCorrectness:
    def test_distances_match_oracle(self, name, graph):
        summary = run_apsp(graph)
        oracle = all_pairs_distances(graph)
        for uid in graph.nodes:
            assert dict(summary.results[uid].distances) == oracle[uid]

    def test_parents_encode_shortest_path_trees(self, name, graph):
        summary = run_apsp(graph)
        for uid in graph.nodes:
            result = summary.results[uid]
            for target, parent in result.parents.items():
                if target == uid:
                    assert parent is None
                    continue
                # Remark 4: the parent is a neighbor one step closer to
                # the target — the routing-table next hop.
                assert graph.has_edge(uid, parent)
                assert summary.distance(parent, target) == \
                    summary.distance(uid, target) - 1

    def test_next_hop_routes_reach_target(self, name, graph):
        summary = run_apsp(graph)
        for source in list(graph.nodes)[:5]:
            for target in graph.nodes:
                hops = 0
                current = source
                while current != target:
                    current = summary.results[current].next_hop(target)
                    hops += 1
                assert hops == summary.distance(source, target)

    def test_eccentricities_derive_locally(self, name, graph):
        summary = run_apsp(graph)
        assert summary.eccentricities() == all_eccentricities(graph)
        assert summary.diameter() == diameter(graph)


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestComplexity:
    def test_linear_round_bound(self, name, graph):
        """Theorem 1: O(n).  Concretely ≤ 3n + 8·ecc(1) + c here."""
        summary = run_apsp(graph)
        ecc1 = all_eccentricities(graph)[1]
        assert summary.rounds <= 3 * graph.n + 8 * max(1, ecc1) + 12

    def test_strict_bandwidth_respected(self, name, graph):
        """Lemma 1's consequence: runs clean under the strict policy
        (an over-budget edge would have raised)."""
        network = Network(graph, ApspNode)
        network.run()
        assert network.metrics.max_edge_bits_in_round <= \
            network.bandwidth_bits


class Lemma1Probe(ApspNode):
    """APSP node that returns its Lemma 1 violation count."""

    def make_result(self):
        return self.lemma1_violations


@pytest.mark.parametrize("name,graph", topology_zoo())
def test_lemma1_no_node_forwards_two_waves(name, graph):
    outcome = Network(graph, Lemma1Probe).run()
    assert set(outcome.results.values()) == {0}


@given(st.integers(min_value=2, max_value=22),
       st.integers(min_value=0, max_value=10**6))
def test_apsp_matches_oracle_on_random_graphs(n, seed):
    graph = random_connected_graph(n, seed)
    summary = run_apsp(graph)
    oracle = all_pairs_distances(graph)
    for uid in graph.nodes:
        assert dict(summary.results[uid].distances) == oracle[uid]


@given(st.integers(min_value=2, max_value=20),
       st.integers(min_value=0, max_value=10**6))
def test_lemma1_invariant_on_random_graphs(n, seed):
    graph = random_connected_graph(n, seed)
    outcome = Network(graph, Lemma1Probe).run()
    assert set(outcome.results.values()) == {0}


class TestValidation:
    def test_requires_node_one(self):
        with pytest.raises(GraphError):
            run_apsp(Graph([2, 3], [(2, 3)]))

    def test_requires_connectivity(self):
        with pytest.raises(GraphError):
            run_apsp(Graph([1, 2, 3], [(1, 2)]))

    def test_single_node(self):
        summary = run_apsp(Graph([1], []))
        assert dict(summary.results[1].distances) == {1: 0}


class TestGirthBookkeeping:
    def test_off_by_default(self):
        summary = run_apsp(path_graph(5))
        assert summary.results[1].girth_candidate is None

    def test_candidates_never_below_girth(self):
        from repro.graphs import girth, lollipop_graph

        graph = lollipop_graph(5, 3)
        summary = run_apsp(graph, collect_girth=True)
        g = girth(graph)
        for result in summary.results.values():
            if result.girth_candidate is not None:
                assert result.girth_candidate >= g

    def test_minimum_candidate_equals_girth(self):
        from repro.graphs import girth

        for seed in range(5):
            graph = random_connected_graph(18, seed)
            summary = run_apsp(graph, collect_girth=True)
            candidates = [
                r.girth_candidate for r in summary.results.values()
                if r.girth_candidate is not None
            ]
            want = girth(graph)
            got = min(candidates) if candidates else float("inf")
            assert got == want
