"""Tests for Algorithm 2 (S-SP): correctness, round bound, and the
documented counterexample to the extended abstract's id-only priority."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest import GraphError, Network
from repro.core.ssp import PRIORITY_ID, SspNode, run_ssp
from repro.graphs import (
    all_eccentricities,
    bfs_distances,
    cycle_graph,
    diameter,
    grid_graph,
    path_graph,
)
from tests.conftest import random_connected_graph, topology_zoo


def oracle_ssp(graph, sources):
    return {
        node: {
            source: bfs_distances(graph, source)[node]
            for source in sources
        }
        for node in graph.nodes
    }


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestCorrectness:
    def test_random_source_sets(self, name, graph):
        rng = random.Random(hash(name) & 0xFFFF)
        for trial in range(3):
            size = rng.randint(1, min(7, graph.n))
            sources = rng.sample(list(graph.nodes), size)
            summary = run_ssp(graph, sources)
            want = oracle_ssp(graph, sources)
            for node in graph.nodes:
                assert dict(summary.results[node].distances) == want[node]

    def test_parents_point_one_step_closer(self, name, graph):
        sources = list(graph.nodes)[:4]
        summary = run_ssp(graph, sources)
        for node in graph.nodes:
            result = summary.results[node]
            for source, parent in result.parents.items():
                if source == node:
                    assert parent is None
                    continue
                assert graph.has_edge(node, parent)
                assert summary.results[parent].distances[source] == \
                    result.distances[source] - 1


class TestEdgeCases:
    def test_empty_source_set(self):
        summary = run_ssp(path_graph(6), [])
        for result in summary.results.values():
            assert dict(result.distances) == {}

    def test_all_nodes_as_sources_is_apsp(self):
        graph = grid_graph(3, 4)
        summary = run_ssp(graph, graph.nodes)
        from repro.graphs import all_pairs_distances

        oracle = all_pairs_distances(graph)
        for node in graph.nodes:
            assert dict(summary.results[node].distances) == oracle[node]

    def test_single_source(self):
        graph = cycle_graph(9)
        summary = run_ssp(graph, [5])
        want = bfs_distances(graph, 5)
        for node in graph.nodes:
            assert summary.results[node].distances[5] == want[node]

    def test_unknown_source_rejected(self):
        with pytest.raises(GraphError):
            run_ssp(path_graph(3), [9])

    def test_nearest_source_helper(self):
        graph = path_graph(9)
        summary = run_ssp(graph, [1, 9])
        assert summary.results[2].nearest_source() == (1, 1)
        assert summary.results[8].nearest_source() == (9, 1)
        # Equidistant: tie to the smaller id.
        assert summary.results[5].nearest_source() == (1, 4)


class TestComplexity:
    @pytest.mark.parametrize("size", [1, 4, 8])
    def test_rounds_linear_in_s_plus_d(self, size):
        graph = grid_graph(5, 5)
        sources = list(graph.nodes)[:size]
        summary = run_ssp(graph, sources)
        ecc1 = all_eccentricities(graph)[1]
        # init (≈3·ecc) + main loop (|S| + 2·ecc + 2).
        assert summary.rounds <= size + 8 * ecc1 + 16

    def test_one_offer_per_edge_per_round(self):
        graph = grid_graph(4, 4)
        network = Network(
            graph, SspNode,
            inputs={u: u <= 8 for u in graph.nodes},
        )
        network.run()
        assert network.metrics.max_edge_bits_in_round <= \
            network.bandwidth_bits


@given(st.integers(min_value=2, max_value=20),
       st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=0, max_value=10**6))
def test_ssp_matches_oracle_on_random_instances(n, seed, source_seed):
    graph = random_connected_graph(n, seed)
    rng = random.Random(source_seed)
    size = rng.randint(0, n)
    sources = rng.sample(list(graph.nodes), size)
    summary = run_ssp(graph, sources)
    want = oracle_ssp(graph, sources)
    for node in graph.nodes:
        assert dict(summary.results[node].distances) == want[node]


class TestPaperRuleDiscrepancy:
    """The extended abstract's smaller-id-first rule records a
    non-shortest distance on this instance (see the module docstring of
    repro.core.ssp); the corrected (dist, id) rule does not."""

    GRAPH = cycle_graph(9)
    SOURCES = [9, 2, 3, 4, 7, 8, 5]

    def test_id_only_priority_is_wrong_here(self):
        summary = run_ssp(self.GRAPH, self.SOURCES, priority=PRIORITY_ID)
        # Wave 5 reaches node 1 around the "wrong" side of the cycle
        # first because ids 7, 8, 9 never delay it there.
        assert summary.results[1].distances[5] == 5
        assert bfs_distances(self.GRAPH, 5)[1] == 4

    def test_corrected_priority_is_right_here(self):
        summary = run_ssp(self.GRAPH, self.SOURCES)
        assert summary.results[1].distances[5] == 4

    def test_id_only_rule_still_terminates_in_bound(self):
        summary = run_ssp(self.GRAPH, self.SOURCES, priority=PRIORITY_ID)
        ecc1 = all_eccentricities(self.GRAPH)[1]
        assert summary.rounds <= len(self.SOURCES) + 8 * ecc1 + 16
