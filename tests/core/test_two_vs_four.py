"""Tests for Algorithm 3 (2-vs-4, Theorem 7)."""

import math

import pytest

from repro.core.two_vs_four import degree_threshold, run_two_vs_four
from repro.graphs import (
    complete_graph,
    diameter,
    diameter_four_blobs,
    diameter_two_random,
    star_graph,
)


class TestVerdicts:
    @pytest.mark.parametrize("n", [12, 25, 50])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_diameter_two_family(self, n, seed):
        graph = diameter_two_random(n, seed=seed)
        assert diameter(graph) == 2  # promise holds
        summary = run_two_vs_four(graph, seed=seed)
        assert summary.diameter == 2

    @pytest.mark.parametrize("n", [12, 25, 50])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_diameter_four_family(self, n, seed):
        graph = diameter_four_blobs(n, seed=seed)
        assert diameter(graph) == 4
        summary = run_two_vs_four(graph, seed=seed)
        assert summary.diameter == 4

    def test_all_nodes_agree(self):
        summary = run_two_vs_four(diameter_two_random(30, seed=7))
        verdicts = {r.diameter for r in summary.results.values()}
        assert len(verdicts) == 1


class TestBranches:
    def test_low_degree_branch_on_blobs(self):
        # The pendant node has degree 1 << s.
        summary = run_two_vs_four(diameter_four_blobs(40, seed=1))
        assert summary.branch == "low-degree"

    def test_sampled_branch_on_dense_graph(self):
        # Complete graph: every degree = n-1 ≥ s.
        summary = run_two_vs_four(complete_graph(30))
        assert summary.branch == "sampled"
        assert summary.diameter == 2  # ≤ 2, reported as the 2 branch

    def test_low_degree_branch_on_star(self):
        summary = run_two_vs_four(star_graph(40))
        assert summary.branch == "low-degree"
        assert summary.diameter == 2

    def test_source_count_bounded(self):
        n = 50
        summary = run_two_vs_four(diameter_two_random(n, seed=3))
        s = degree_threshold(n)
        count = next(iter(summary.results.values())).source_count
        # N1(v) of a low-degree node, or a Θ(√(n log n)) sample.
        assert count <= 4 * s + 1


class TestComplexityShape:
    def test_sublinear_in_n_on_dense_instances(self):
        """Rounds grow like √(n log n), clearly below n for larger n."""
        rounds = {}
        for n in (40, 90):
            summary = run_two_vs_four(diameter_two_random(n, seed=5))
            rounds[n] = summary.rounds
        assert rounds[90] < 90  # sublinear already at n = 90
        assert rounds[90] <= rounds[40] * math.sqrt(90 / 40) * 2.5

    def test_threshold_formula(self):
        assert degree_threshold(100) == pytest.approx(
            math.sqrt(100 * math.log2(100))
        )
