"""Tests for the Section 3.1 baselines: correct, but superlinear."""

import pytest

from repro.congest import GraphError
from repro.core.apsp import run_apsp
from repro.core.baselines import run_baseline_apsp
from repro.graphs import (
    Graph,
    all_pairs_distances,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from tests.conftest import random_connected_graph

ALGORITHMS = [
    "sequential-bfs",
    "distance-vector",
    "distance-vector-delta",
    "link-state",
]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestCorrectness:
    def test_grid(self, algorithm):
        graph = grid_graph(4, 4)
        summary = run_baseline_apsp(graph, algorithm)
        oracle = all_pairs_distances(graph)
        for uid in graph.nodes:
            assert dict(summary.results[uid].distances) == oracle[uid]

    def test_path(self, algorithm):
        graph = path_graph(12)
        summary = run_baseline_apsp(graph, algorithm)
        oracle = all_pairs_distances(graph)
        for uid in graph.nodes:
            assert dict(summary.results[uid].distances) == oracle[uid]

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random(self, algorithm, seed):
        graph = random_connected_graph(18, seed)
        summary = run_baseline_apsp(graph, algorithm)
        oracle = all_pairs_distances(graph)
        for uid in graph.nodes:
            assert dict(summary.results[uid].distances) == oracle[uid]


class TestComplexityContrast:
    def test_sequential_bfs_is_n_times_d(self):
        """The unmodified textbook schedule costs Θ(n·D)."""
        graph = path_graph(20)
        baseline = run_baseline_apsp(graph, "sequential-bfs")
        ours = run_apsp(graph)
        assert baseline.rounds > 5 * ours.rounds

    def test_link_state_superlinear_on_dense_graphs(self):
        """Flooding Θ(n²) edges through B-bit links beats n by a lot."""
        graph = erdos_renyi_graph(40, 0.5, seed=3, ensure_connected=True)
        baseline = run_baseline_apsp(graph, "link-state")
        ours = run_apsp(graph)
        assert baseline.rounds > ours.rounds

    def test_periodic_dv_superlinear_on_deep_graphs(self):
        """RIP-style periodic advertisement pays Θ(n/B) latency per hop,
        so Θ(n·D/B) total — clearly superlinear on a path."""
        graph = path_graph(40)
        ours = run_apsp(graph).rounds
        naive = run_baseline_apsp(graph, "distance-vector").rounds
        assert naive > 2.5 * ours

    def test_delta_dv_is_competitive(self):
        """Ablation: the event-driven variant pipelines and is linear —
        the superlinearity is a property of the periodic protocol, not
        of distance vectors per se."""
        graph = path_graph(40)
        naive = run_baseline_apsp(graph, "distance-vector").rounds
        delta = run_baseline_apsp(graph, "distance-vector-delta").rounds
        assert delta < naive / 2


class TestValidation:
    def test_unknown_baseline(self):
        with pytest.raises(GraphError):
            run_baseline_apsp(path_graph(4), "carrier-pigeon")

    def test_sequential_needs_dense_ids(self):
        graph = Graph([1, 2, 5], [(1, 2), (2, 5)])
        with pytest.raises(GraphError):
            run_baseline_apsp(graph, "sequential-bfs")

    def test_other_baselines_accept_sparse_ids(self):
        graph = Graph([1, 2, 5], [(1, 2), (2, 5)])
        summary = run_baseline_apsp(graph, "distance-vector")
        oracle = all_pairs_distances(graph)
        for uid in graph.nodes:
            assert dict(summary.results[uid].distances) == oracle[uid]
