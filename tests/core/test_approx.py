"""Tests for Theorem 4 / Corollary 4 / Remarks 1–2: every approximation
guarantee is asserted against the exact oracle."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest import GraphError
from repro.core.approx import (
    remark2_center_peripheral,
    run_approx_properties,
    run_remark1,
    smoothing_parameter,
)
from repro.graphs import (
    all_eccentricities,
    center,
    diameter,
    dumbbell_with_path,
    path_graph,
    peripheral_vertices,
    radius,
)
from tests.conftest import random_connected_graph, topology_zoo

EPSILONS = [0.5, 1.0]


@pytest.mark.parametrize("name,graph", topology_zoo())
@pytest.mark.parametrize("epsilon", EPSILONS)
class TestTheorem4:
    def test_eccentricity_sandwich(self, name, graph, epsilon):
        """Theorem 4: ecc(v) ≤ est(v) ≤ (1+ε)·ecc(v)."""
        summary = run_approx_properties(graph, epsilon)
        eccs = all_eccentricities(graph)
        for uid, estimate in summary.ecc_estimates().items():
            assert eccs[uid] <= estimate <= (1 + epsilon) * eccs[uid]

    def test_diameter_sandwich(self, name, graph, epsilon):
        summary = run_approx_properties(graph, epsilon)
        d = diameter(graph)
        assert d <= summary.diameter_estimate <= (1 + epsilon) * d

    def test_radius_sandwich(self, name, graph, epsilon):
        summary = run_approx_properties(graph, epsilon)
        r = radius(graph)
        assert r <= summary.radius_estimate <= (1 + epsilon) * r

    def test_center_superset(self, name, graph, epsilon):
        """Set-approximation: the true center is always included."""
        summary = run_approx_properties(graph, epsilon)
        assert center(graph) <= summary.center_approx()

    def test_center_members_near_optimal(self, name, graph, epsilon):
        """Members cost at most rad + 2k (Definition 5 extension)."""
        summary = run_approx_properties(graph, epsilon)
        k = next(iter(summary.results.values())).k
        eccs = all_eccentricities(graph)
        r = radius(graph)
        for uid in summary.center_approx():
            assert eccs[uid] <= r + 2 * k

    def test_peripheral_superset_and_quality(self, name, graph, epsilon):
        summary = run_approx_properties(graph, epsilon)
        assert peripheral_vertices(graph) <= summary.peripheral_approx()
        k = next(iter(summary.results.values())).k
        eccs = all_eccentricities(graph)
        d = diameter(graph)
        for uid in summary.peripheral_approx():
            assert eccs[uid] >= d - 2 * k


class TestSmoothingParameter:
    def test_formula(self):
        assert smoothing_parameter(0.5, 16) == 2
        assert smoothing_parameter(1.0, 16) == 4
        assert smoothing_parameter(0.5, 4) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(GraphError):
            smoothing_parameter(0, 10)

    def test_exact_fallback_used_on_shallow_graphs(self):
        # Diameter 2 → k = 0 → exact path: estimates are exact.
        from repro.graphs import star_graph

        summary = run_approx_properties(star_graph(12), 0.5)
        assert summary.ecc_estimates() == all_eccentricities(star_graph(12))
        assert next(iter(summary.results.values())).k == 0

    def test_sampling_path_used_on_deep_graphs(self):
        summary = run_approx_properties(path_graph(40), 0.5)
        assert next(iter(summary.results.values())).k >= 1

    def test_epsilon_validated(self):
        with pytest.raises(GraphError):
            run_approx_properties(path_graph(5), -1.0)


class TestComplexityShape:
    def test_cheaper_than_apsp_at_intermediate_diameter(self):
        """O(n/D + D) beats O(n) once D is neither tiny nor ~n.

        (On a path D = n and both sides are Θ(n), so the win shows on
        dumbbell graphs whose diameter is decoupled from n.)
        """
        from repro.core.apsp import run_apsp

        graph = dumbbell_with_path(40, 12)
        exact_rounds = run_apsp(graph).rounds
        approx_rounds = run_approx_properties(graph, 1.0).rounds
        assert approx_rounds < exact_rounds

    def test_dom_size_shrinks_with_diameter(self):
        sizes = []
        for path_len in (8, 16, 32):
            graph = dumbbell_with_path(6, path_len)
            summary = run_approx_properties(graph, 1.0)
            sizes.append(next(iter(summary.results.values())).dom_size)
        assert sizes[0] >= sizes[1] >= sizes[2]


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestRemark1:
    def test_diameter_factor_two(self, name, graph):
        results, _ = run_remark1(graph)
        d = diameter(graph)
        estimate = next(iter(results.values())).diameter_estimate
        assert d <= estimate <= 2 * d

    def test_radius_factor_two(self, name, graph):
        results, _ = run_remark1(graph)
        r = radius(graph)
        estimate = next(iter(results.values())).radius_estimate
        assert r <= estimate <= 2 * r

    def test_eccentricity_factor_three(self, name, graph):
        results, _ = run_remark1(graph)
        eccs = all_eccentricities(graph)
        for uid, result in results.items():
            assert eccs[uid] <= result.ecc_estimate <= 3 * eccs[uid]

    def test_runs_in_o_d(self, name, graph):
        _, metrics = run_remark1(graph)
        ecc1 = all_eccentricities(graph)[1]
        assert metrics.rounds <= 4 * max(1, ecc1) + 10


class TestRemark2:
    def test_all_nodes_answer(self):
        graph = path_graph(7)
        answer = remark2_center_peripheral(graph)
        assert answer == frozenset(graph.nodes)
        # Contains both true sets (the set-approximation requirement).
        assert center(graph) <= answer
        assert peripheral_vertices(graph) <= answer


@given(st.integers(min_value=2, max_value=16),
       st.integers(min_value=0, max_value=10**6))
def test_theorem4_guarantee_on_random_graphs(n, seed):
    graph = random_connected_graph(n, seed)
    summary = run_approx_properties(graph, 0.75)
    eccs = all_eccentricities(graph)
    for uid, estimate in summary.ecc_estimates().items():
        assert eccs[uid] <= estimate <= 1.75 * eccs[uid]
