"""Tests for the Section 3.6 companions (Corollaries 1–2)."""

import pytest

from repro.core.prt import (
    combined_diameter_estimate,
    combined_girth_estimate,
    run_prt_diameter,
)
from repro.graphs import (
    cycle_graph,
    diameter,
    dumbbell_with_path,
    erdos_renyi_graph,
    girth,
    grid_graph,
    path_graph,
    torus_graph,
)


ZOO = [
    ("path25", path_graph(25)),
    ("cycle20", cycle_graph(20)),
    ("grid5x5", grid_graph(5, 5)),
    ("torus4x6", torus_graph(4, 6)),
    ("er35", erdos_renyi_graph(35, 0.15, seed=3, ensure_connected=True)),
    ("dumbbell", dumbbell_with_path(6, 10)),
]


@pytest.mark.parametrize("name,graph", ZOO)
class TestPrtDiameter:
    def test_estimate_in_two_thirds_band(self, name, graph):
        """ACIM/PRT guarantee: ⌊2D/3⌋ ≤ estimate ≤ D."""
        summary = run_prt_diameter(graph)
        d = diameter(graph)
        assert (2 * d) // 3 <= summary.estimate <= d

    def test_all_nodes_agree(self, name, graph):
        summary = run_prt_diameter(graph)
        estimates = {r.estimate for r in summary.results.values()}
        assert len(estimates) == 1

    def test_sample_size_reasonable(self, name, graph):
        import math

        summary = run_prt_diameter(graph)
        target = math.sqrt(graph.n * math.log2(graph.n))
        size = next(iter(summary.results.values())).sample_size
        assert 1 <= size <= max(6 * target, graph.n)


class TestCorollary1:
    def test_picks_ours_on_deep_graphs(self):
        outcome = combined_diameter_estimate(path_graph(50))
        assert outcome["branch"] == "holzer-wattenhofer-1+eps"
        d = diameter(path_graph(50))
        assert d <= outcome["estimate"] <= 1.5 * d

    def test_picks_prt_on_shallow_graphs(self):
        graph = erdos_renyi_graph(120, 0.3, seed=4, ensure_connected=True)
        outcome = combined_diameter_estimate(graph)
        assert outcome["branch"] == "prt-3/2"
        d = diameter(graph)
        assert (2 * d) // 3 <= outcome["estimate"] <= 1.5 * d + 1

    def test_reports_rounds(self):
        outcome = combined_diameter_estimate(grid_graph(4, 4))
        assert outcome["rounds"] > 0


class TestCorollary2:
    def test_exact_branch_on_long_cycles(self):
        graph = cycle_graph(24)
        outcome = combined_girth_estimate(graph)
        g = girth(graph)
        assert g <= outcome["girth"] <= 1.5 * g

    def test_approx_branch_on_shallow_graphs(self):
        graph = erdos_renyi_graph(60, 0.3, seed=7, ensure_connected=True)
        outcome = combined_girth_estimate(graph)
        assert outcome["branch"] == "theorem5-approx"
        g = girth(graph)
        assert g <= outcome["girth"] <= 1.5 * g
