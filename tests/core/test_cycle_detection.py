"""Tests for the S-SP cycle-detection bookkeeping (Theorem 5's engine).

Soundness: every candidate is ≥ the true girth (candidates describe
real closed walks).  Completeness: with a k-dominating source set the
global minimum candidate is ≤ g + 2k + 2.  Both bounds are what the
girth approximation's stopping rule relies on.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest import Network
from repro.core.dominating import DominatingSetNode, compute_dominating_set
from repro.core.ssp import SspNode, ssp_main_loop
from repro.core.subroutines import build_bfs_tree
from repro.graphs import (
    circulant_graph,
    cycle_graph,
    girth,
    grid_graph,
    lollipop_graph,
    torus_graph,
)
from tests.conftest import random_connected_graph


class DetectingSspNode(SspNode):
    detect_cycles = True

    def program(self):
        in_s = bool(self.ctx.input_value)
        tree = yield from build_bfs_tree(self, 1,
                                         mark=1 if in_s else 0)
        size_s = tree.marked_count
        duration = size_s + tree.diameter_bound + 2
        outcome = yield from ssp_main_loop(
            self, in_s, size_s, duration, detect_cycles=True
        )
        return outcome.cycle_candidate


def candidates_for(graph, sources, seed=0):
    inputs = {u: (u in set(sources)) for u in graph.nodes}
    outcome = Network(graph, DetectingSspNode, inputs=inputs,
                      seed=seed).run()
    return [c for c in outcome.results.values() if c is not None]


class TestSoundness:
    @pytest.mark.parametrize("make,sources", [
        (lambda: cycle_graph(12), [1]),
        (lambda: cycle_graph(13), [1, 7]),
        (lambda: torus_graph(4, 6), [1, 10, 20]),
        (lambda: grid_graph(4, 5), [3]),
        (lambda: lollipop_graph(5, 6), [11]),
        (lambda: circulant_graph(18, [1, 5]), [2, 9]),
    ])
    def test_candidates_never_below_girth(self, make, sources):
        graph = make()
        g = girth(graph)
        for candidate in candidates_for(graph, sources):
            assert candidate >= g

    @given(st.integers(min_value=4, max_value=16),
           st.integers(min_value=0, max_value=10**5))
    def test_soundness_on_random_graphs(self, n, seed):
        graph = random_connected_graph(n, seed)
        g = girth(graph)
        sources = list(graph.nodes)[: max(1, n // 3)]
        for candidate in candidates_for(graph, sources, seed=seed):
            assert candidate >= g


class DomDetectNode(DominatingSetNode):
    """k-dominating set, then DOM-SP with detection (one Thm 5 phase)."""

    def program(self):
        k = int(self.ctx.input_value)
        tree = yield from build_bfs_tree(self, 1)
        dom = yield from compute_dominating_set(self, tree, k)
        outcome = yield from ssp_main_loop(
            self, dom.in_dom, dom.size,
            dom.size + tree.diameter_bound + 2,
            detect_cycles=True,
        )
        return outcome.cycle_candidate


class TestCompleteness:
    @pytest.mark.parametrize("make,k", [
        (lambda: cycle_graph(20), 2),
        (lambda: cycle_graph(30), 3),
        (lambda: torus_graph(4, 8), 1),
        (lambda: grid_graph(5, 5), 2),
        (lambda: lollipop_graph(6, 10), 1),
    ])
    def test_min_candidate_within_g_plus_2k(self, make, k):
        graph = make()
        g = girth(graph)
        inputs = {u: k for u in graph.nodes}
        outcome = Network(graph, DomDetectNode, inputs=inputs).run()
        candidates = [c for c in outcome.results.values()
                      if c is not None]
        assert candidates, "a cyclic graph must yield candidates"
        assert g <= min(candidates) <= g + 2 * k + 2

    def test_forest_yields_no_candidates(self):
        from repro.graphs import random_tree

        graph = random_tree(20, seed=4)
        inputs = {u: 2 for u in graph.nodes}
        outcome = Network(graph, DomDetectNode, inputs=inputs).run()
        assert all(c is None for c in outcome.results.values())
