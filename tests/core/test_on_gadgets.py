"""Integration: the paper's algorithms on the paper's hard instances.

The lower-bound gadgets are exactly the graphs the algorithms should
find difficult-but-correct; running the full stack on them is both a
correctness test on adversarial topology (dense cliques, tiny cuts,
pendant paths) and the glue between the upper- and lower-bound halves
of the reproduction.
"""

import pytest

from repro.core import (
    run_apsp,
    run_approx_properties,
    run_graph_properties,
    run_ssp,
    run_two_vs_four,
)
from repro.graphs import (
    all_pairs_distances,
    diameter,
    diameter_2_vs_3,
    diameter_gap2_family,
    girth,
    mirror_gadget,
    pad_with_path,
    random_disjointness_instance,
    random_membership_instance,
)


@pytest.fixture(params=[True, False], ids=["intersecting", "disjoint"])
def gadget_2v3(request):
    x, y = random_disjointness_instance(
        4, intersecting=request.param, seed=13
    )
    return diameter_2_vs_3(4, x, y)


class TestOn2v3Gadget:
    def test_apsp_exact(self, gadget_2v3):
        graph = gadget_2v3.graph
        summary = run_apsp(graph)
        oracle = all_pairs_distances(graph)
        for uid in graph.nodes:
            assert dict(summary.results[uid].distances) == oracle[uid]

    def test_properties_decide_the_instance(self, gadget_2v3):
        summary = run_graph_properties(gadget_2v3.graph,
                                       include_girth=True)
        assert summary.diameter == gadget_2v3.planted_diameter
        assert summary.girth == 3  # the cliques

    def test_ssp_from_cut_endpoints(self, gadget_2v3):
        graph = gadget_2v3.graph
        sources = [u for u, _ in gadget_2v3.cut_edges][:3]
        summary = run_ssp(graph, sources)
        for uid in graph.nodes:
            for source in sources:
                assert summary.results[uid].distances[source] == \
                    all_pairs_distances(graph)[source][uid]

    def test_approx_brackets_planted_diameter(self, gadget_2v3):
        summary = run_approx_properties(gadget_2v3.graph, 0.5)
        d = gadget_2v3.planted_diameter
        assert d <= summary.diameter_estimate <= 1.5 * d


class TestOnMirrorGadget:
    @pytest.mark.parametrize("intersecting", [True, False])
    def test_properties(self, intersecting):
        x, y = random_disjointness_instance(
            3, intersecting=intersecting, seed=5
        )
        gadget = mirror_gadget(3, x, y)
        summary = run_graph_properties(gadget.graph, include_girth=False)
        assert summary.diameter == gadget.planted_diameter


class TestOnGap2Family:
    @pytest.mark.parametrize("intersecting", [True, False])
    def test_exact_and_approx_diameter(self, intersecting):
        xs, ys = random_membership_instance(
            6, intersecting=intersecting, seed=2
        )
        gadget = diameter_gap2_family(6, 3, xs, ys)
        exact = run_graph_properties(gadget.graph, include_girth=False)
        assert exact.diameter == gadget.planted_diameter
        approx = run_approx_properties(gadget.graph, 0.5)
        assert gadget.planted_diameter <= approx.diameter_estimate \
            <= 1.5 * gadget.planted_diameter

    def test_witness_pair_distance_via_apsp(self):
        xs, ys = random_membership_instance(6, intersecting=False,
                                            seed=9)
        gadget = diameter_gap2_family(6, 3, xs, ys)
        summary = run_apsp(gadget.graph)
        u, v = gadget.witness_pair
        assert summary.distance(u, v) == gadget.planted_diameter


class TestOnPaddedGadget:
    def test_properties_track_padding(self):
        x, y = random_disjointness_instance(3, intersecting=False,
                                            seed=7)
        gadget = diameter_2_vs_3(3, x, y)
        for length in (2, 5):
            padded = pad_with_path(gadget, length)
            summary = run_graph_properties(padded.graph,
                                           include_girth=True)
            assert summary.diameter == padded.planted_diameter
            assert summary.girth == girth(padded.graph) == 3
