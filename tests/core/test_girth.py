"""Tests for the girth algorithms (Lemma 7 exact, Theorem 5 approx)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.girth import run_approx_girth, run_exact_girth
from repro.core.properties import GIRTH_INFINITE
from repro.graphs import (
    circulant_graph,
    cycle_graph,
    girth,
    grid_graph,
    lollipop_graph,
    path_graph,
    random_tree,
    torus_graph,
)
from tests.conftest import random_connected_graph, topology_zoo


@pytest.mark.parametrize("name,graph", topology_zoo())
def test_exact_girth_matches_oracle(name, graph):
    summary = run_exact_girth(graph)
    assert summary.girth == girth(graph)


class TestExactConventions:
    def test_forest_infinite(self):
        assert run_exact_girth(random_tree(14, seed=2)).girth == \
            GIRTH_INFINITE
        assert run_exact_girth(path_graph(9)).girth == GIRTH_INFINITE

    def test_triangle_found_in_big_graph(self):
        assert run_exact_girth(lollipop_graph(8, 10)).girth == 3

    def test_large_even_girth(self):
        assert run_exact_girth(cycle_graph(16)).girth == 16

    def test_results_marked_exact(self):
        summary = run_exact_girth(cycle_graph(5))
        assert all(r.exact for r in summary.results.values())


@pytest.mark.parametrize("name,graph", topology_zoo())
@pytest.mark.parametrize("epsilon", [0.5, 1.0])
def test_approx_girth_guarantee(name, graph, epsilon):
    """Theorem 5: g ≤ estimate ≤ (1+ε)·g (∞ stays ∞)."""
    summary = run_approx_girth(graph, epsilon)
    true_girth = girth(graph)
    if true_girth == GIRTH_INFINITE:
        assert summary.girth == GIRTH_INFINITE
    else:
        assert true_girth <= summary.girth <= (1 + epsilon) * true_girth


class TestApproxBehaviour:
    def test_phases_reported(self):
        summary = run_approx_girth(cycle_graph(20), 0.5)
        phases = {r.phases for r in summary.results.values()}
        assert len(phases) == 1
        assert phases.pop() >= 1

    def test_large_girth_avoids_exact_fallback(self):
        """On a big cycle, g ≈ n and a large-k phase certifies fast."""
        summary = run_approx_girth(cycle_graph(40), 1.0)
        assert not next(iter(summary.results.values())).exact
        assert summary.girth <= 2 * 40

    def test_tiny_girth_falls_back_to_exact(self):
        """A triangle in a deep graph forces the min{·, n} branch."""
        graph = lollipop_graph(4, 20)
        summary = run_approx_girth(graph, 0.25)
        assert summary.girth == 3

    def test_approx_girth_on_standard_families(self):
        for graph, expected in [
            (torus_graph(4, 8), 4),
            (grid_graph(5, 5), 4),
            (cycle_graph(12), 12),
        ]:
            assert girth(graph) == expected
            summary = run_approx_girth(graph, 0.5)
            assert expected <= summary.girth <= 1.5 * expected


@given(st.integers(min_value=3, max_value=16),
       st.integers(min_value=0, max_value=10**6))
def test_approx_girth_on_random_graphs(n, seed):
    graph = random_connected_graph(n, seed)
    true_girth = girth(graph)
    summary = run_approx_girth(graph, 1.0)
    if true_girth == GIRTH_INFINITE:
        assert summary.girth == GIRTH_INFINITE
    else:
        assert true_girth <= summary.girth <= 2 * true_girth
