"""Message-complexity bounds.

Besides rounds, the paper states message/bit budgets: Algorithm 1's
BFS-per-node approach moves O(n·m) messages; S-SP "uses O((|S|+D)·|E|)
messages" (Section 3.2).  These tests pin the measured totals to those
shapes with explicit constants, so a regression that starts spamming
the network (e.g. re-flooding on every receipt) fails even if round
counts stay plausible.
"""

import pytest

from repro.core import run_apsp, run_remark1, run_ssp
from repro.graphs import all_eccentricities, diameter
from tests.conftest import topology_zoo


@pytest.mark.parametrize("name,graph", topology_zoo())
def test_apsp_messages_linear_in_n_times_m(name, graph):
    """Each BFS_v crosses each edge O(1) times; plus tree/pebble/sync
    overhead linear in n + m."""
    summary = run_apsp(graph)
    budget = 2 * graph.n * graph.m + 10 * (graph.n + graph.m) + 50
    assert summary.metrics.messages_total <= budget


@pytest.mark.parametrize("name,graph", topology_zoo())
def test_ssp_messages_bounded_by_s_plus_d_times_m(name, graph):
    """Section 3.2: O((|S| + D) · |E|) messages."""
    sources = list(graph.nodes)[: max(1, graph.n // 3)]
    summary = run_ssp(graph, sources)
    d0 = 2 * all_eccentricities(graph)[1]
    budget = 4 * (len(sources) + max(1, d0)) * graph.m + \
        10 * (graph.n + graph.m) + 50
    assert summary.metrics.messages_total <= budget


@pytest.mark.parametrize("name,graph", topology_zoo())
def test_remark1_messages_linear_in_m(name, graph):
    """One BFS + echo + sync: O(m) messages total."""
    _, metrics = run_remark1(graph)
    assert metrics.messages_total <= 6 * graph.m + 6 * graph.n + 20


@pytest.mark.parametrize("name,graph", topology_zoo())
def test_apsp_bits_are_messages_times_logn(name, graph):
    """No message carries more than O(log n) bits."""
    summary = run_apsp(graph)
    import math

    per_message_cap = 8 * math.ceil(math.log2(graph.n + 2)) + 16
    assert summary.metrics.bits_total <= \
        summary.metrics.messages_total * per_message_cap
