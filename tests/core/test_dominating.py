"""Tests for the Lemma 10 k-dominating-set construction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest import GraphError
from repro.core.dominating import run_dominating_set
from repro.graphs import (
    all_eccentricities,
    bfs_distances,
    is_k_dominating_set,
    path_graph,
    star_graph,
)
from tests.conftest import random_connected_graph, topology_zoo


@pytest.mark.parametrize("name,graph", topology_zoo())
@pytest.mark.parametrize("k", [1, 3])
class TestProperties:
    def test_is_dominating(self, name, graph, k):
        infos, _ = run_dominating_set(graph, k)
        dom = {u for u, info in infos.items() if info.in_dom}
        assert is_k_dominating_set(graph, dom, k)

    def test_size_bound(self, name, graph, k):
        """Lemma 10 flavour: |DOM| ≤ 1 + ⌊n/(k+1)⌋."""
        infos, _ = run_dominating_set(graph, k)
        dom = {u for u, info in infos.items() if info.in_dom}
        assert len(dom) <= 1 + graph.n // (k + 1)

    def test_size_agreed_and_correct(self, name, graph, k):
        infos, _ = run_dominating_set(graph, k)
        dom = {u for u, info in infos.items() if info.in_dom}
        assert {info.size for info in infos.values()} == {len(dom)}

    def test_dominator_assignment(self, name, graph, k):
        """Definition 9's partition: every node within k of its own
        dominator, which is a DOM member (itself if in DOM)."""
        infos, _ = run_dominating_set(graph, k)
        dom = {u for u, info in infos.items() if info.in_dom}
        for uid, info in infos.items():
            assert info.dominator in dom
            if info.in_dom:
                assert info.dominator == uid
            assert bfs_distances(graph, uid)[info.dominator] <= k


class TestComplexity:
    @pytest.mark.parametrize("k", [1, 2, 5, 10])
    def test_rounds_linear_in_d_plus_k(self, k):
        graph = path_graph(30)
        infos, metrics = run_dominating_set(graph, k)
        ecc1 = all_eccentricities(graph)[1]
        assert metrics.rounds <= 8 * ecc1 + 3 * k + 30

    def test_root_always_in_dom(self):
        infos, _ = run_dominating_set(path_graph(10), 2)
        assert infos[1].in_dom

    def test_star_k1_is_tiny(self):
        infos, _ = run_dominating_set(star_graph(20), 1)
        dom = {u for u, info in infos.items() if info.in_dom}
        assert dom == {1}


class TestValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(GraphError):
            run_dominating_set(path_graph(5), 0)


@given(st.integers(min_value=2, max_value=20),
       st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=1, max_value=6))
def test_domination_on_random_graphs(n, seed, k):
    graph = random_connected_graph(n, seed)
    infos, _ = run_dominating_set(graph, k)
    dom = {u for u, info in infos.items() if info.in_dom}
    assert is_k_dominating_set(graph, dom, k)
    assert len(dom) <= 1 + n // (k + 1)
