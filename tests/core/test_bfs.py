"""Tests for the standalone BFS primitives (Claim 1, Definition 7,
Section 8)."""

import random

import pytest

from repro.core.bfs import (
    run_all_two_bfs,
    run_bfs,
    run_k_bfs,
    run_tree_check,
)
from repro.graphs import (
    all_eccentricities,
    bfs_distances,
    cycle_graph,
    diameter,
    diameter_2_vs_3,
    girth3_two_bfs_family,
    grid_graph,
    k_neighborhood,
    path_graph,
    random_disjointness_instance,
    random_tree,
    star_graph,
)
from tests.conftest import random_connected_graph, topology_zoo


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestSingleBfs:
    def test_depths(self, name, graph):
        results, _ = run_bfs(graph)
        oracle = bfs_distances(graph, 1)
        assert {u: r.depth for u, r in results.items()} == oracle

    def test_ecc_root_shared(self, name, graph):
        results, _ = run_bfs(graph)
        assert {r.ecc_root for r in results.values()} == \
            {all_eccentricities(graph)[1]}


class TestTreeCheck:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_trees_pass(self, seed):
        verdict, _ = run_tree_check(random_tree(15, seed=seed))
        assert verdict

    def test_path_passes(self):
        verdict, _ = run_tree_check(path_graph(10))
        assert verdict

    def test_star_passes(self):
        verdict, _ = run_tree_check(star_graph(9))
        assert verdict

    @pytest.mark.parametrize("make", [
        lambda: cycle_graph(4),
        lambda: cycle_graph(11),
        lambda: grid_graph(3, 3),
    ])
    def test_cyclic_graphs_fail(self, make):
        verdict, _ = run_tree_check(make())
        assert not verdict

    def test_runs_in_o_d(self):
        graph = path_graph(30)
        _, metrics = run_tree_check(graph)
        assert metrics.rounds <= 8 * 29 + 20  # O(D) with D = 29


class TestKBfs:
    @pytest.mark.parametrize("k", [0, 1, 2, 4])
    def test_truncated_tables(self, k):
        rng = random.Random(k)
        graph = random_connected_graph(20, seed=5)
        sources = rng.sample(list(graph.nodes), 4)
        results, _ = run_k_bfs(graph, sources, k)
        for uid, result in results.items():
            want = {
                s: bfs_distances(graph, s)[uid]
                for s in sources
                if bfs_distances(graph, s)[uid] <= k
            }
            assert dict(result.distances) == want

    def test_k_zero_only_self(self):
        graph = path_graph(5)
        results, _ = run_k_bfs(graph, [3], 0)
        assert dict(results[3].distances) == {3: 0}
        assert dict(results[1].distances) == {}


class TestAllTwoBfs:
    def test_neighborhoods_on_zoo_sample(self):
        for _, graph in [("grid", grid_graph(3, 4)),
                         ("cycle", cycle_graph(8))]:
            results, _ = run_all_two_bfs(graph)
            for uid, result in results.items():
                assert result.two_neighborhood == \
                    k_neighborhood(graph, uid, 2)

    @pytest.mark.parametrize("intersecting", [True, False])
    def test_verdict_decides_diameter_2_vs_3(self, intersecting):
        """The Theorem 8 reduction: trees complete ⟺ diameter ≤ 2."""
        x, y = random_disjointness_instance(
            4, intersecting=intersecting, seed=11
        )
        gadget = girth3_two_bfs_family(4, x, y)
        results, _ = run_all_two_bfs(gadget.graph)
        verdict = next(iter(results.values())).all_trees_complete
        assert verdict == (diameter(gadget.graph) <= 2)

    def test_rounds_scale_with_bandwidth(self):
        """Halving B roughly doubles the streaming time — the Θ(n/B)
        bottleneck of Theorem 8."""
        x, y = random_disjointness_instance(6, intersecting=False, seed=2)
        gadget = diameter_2_vs_3(6, x, y)
        _, wide = run_all_two_bfs(gadget.graph, bandwidth_bits=256)
        _, narrow = run_all_two_bfs(gadget.graph, bandwidth_bits=64)
        assert narrow.rounds > wide.rounds
