"""Tests for the standalone pebble traversal (Remark 3)."""

import pytest

from repro.core.traversal import run_pebble_traversal
from repro.graphs import Graph, path_graph, star_graph
from tests.conftest import topology_zoo


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestTraversal:
    def test_every_node_visited_once(self, name, graph):
        results, _ = run_pebble_traversal(graph)
        visits = [r.first_visit_round for r in results.values()]
        assert all(v is not None for v in visits)
        # Distinct visit rounds: the pebble is in one place at a time.
        assert len(set(visits)) == graph.n

    def test_visit_order_is_dfs_of_t1(self, name, graph):
        results, _ = run_pebble_traversal(graph)
        order = sorted(results.values(), key=lambda r: r.first_visit_round)
        # DFS property: each newly visited node (after the root) is a
        # child of some already-visited node, and specifically of the
        # most recent ancestor with unvisited children — verify the
        # parent was visited earlier.
        seen = set()
        for result in order:
            if result.parent is not None:
                assert result.parent in seen
            seen.add(result.uid)

    def test_children_visited_in_ascending_order(self, name, graph):
        results, _ = run_pebble_traversal(graph)
        for result in results.values():
            rounds = [
                results[child].first_visit_round
                for child in result.children
            ]
            assert rounds == sorted(rounds)

    def test_linear_rounds(self, name, graph):
        """Remark 3: 2(n-1) moves + O(D) bookkeeping."""
        results, metrics = run_pebble_traversal(graph)
        ecc1 = max(r.depth for r in results.values())
        assert metrics.rounds <= 2 * graph.n + 8 * max(1, ecc1) + 12


class TestSmallCases:
    def test_single_node(self):
        results, _ = run_pebble_traversal(Graph([1], []))
        assert results[1].first_visit_round is not None

    def test_path_visits_in_line_order(self):
        results, _ = run_pebble_traversal(path_graph(6))
        order = sorted(results, key=lambda u: results[u].first_visit_round)
        assert order == [1, 2, 3, 4, 5, 6]

    def test_star_visits_leaves_ascending(self):
        results, _ = run_pebble_traversal(star_graph(6))
        order = sorted(results, key=lambda u: results[u].first_visit_round)
        assert order == [1, 2, 3, 4, 5, 6]
