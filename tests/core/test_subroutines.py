"""Tests for the protocol kit: tree building, broadcast, convergecast."""

import pytest

from repro.congest import INFINITY, Network, NodeAlgorithm, ProtocolError
from repro.core.subroutines import (
    aggregate_and_share,
    aligned_broadcast,
    aligned_convergecast,
    build_bfs_tree,
    combine_max,
    combine_min,
    combine_sum,
    wait_until_round,
)
from repro.graphs import (
    Graph,
    all_eccentricities,
    bfs_distances,
    grid_graph,
    path_graph,
    star_graph,
)
from tests.conftest import topology_zoo


class TreeProbe(NodeAlgorithm):
    """Builds T_1 and reports everything it learned."""

    def program(self):
        mark = 1 if self.uid % 2 == 0 else 0
        tree = yield from build_bfs_tree(self, 1, mark=mark)
        return tree


def build_all_trees(graph, factory=TreeProbe):
    outcome = Network(graph, factory).run()
    return outcome.results, outcome.metrics


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestBuildBfsTree:
    def test_depths_are_distances(self, name, graph):
        trees, _ = build_all_trees(graph)
        oracle = bfs_distances(graph, 1)
        assert {u: t.depth for u, t in trees.items()} == oracle

    def test_parents_consistent(self, name, graph):
        trees, _ = build_all_trees(graph)
        for uid, tree in trees.items():
            if uid == 1:
                assert tree.parent is None
                assert tree.is_root
            else:
                assert graph.has_edge(uid, tree.parent)
                assert trees[tree.parent].depth == tree.depth - 1
                assert uid in trees[tree.parent].children

    def test_children_lists_form_tree(self, name, graph):
        trees, _ = build_all_trees(graph)
        total_children = sum(len(t.children) for t in trees.values())
        assert total_children == graph.n - 1

    def test_ecc_root_exact_everywhere(self, name, graph):
        trees, _ = build_all_trees(graph)
        true_ecc = all_eccentricities(graph)[1]
        assert {t.ecc_root for t in trees.values()} == {true_ecc}

    def test_census_counts_marks(self, name, graph):
        trees, _ = build_all_trees(graph)
        marked = sum(1 for u in graph.nodes if u % 2 == 0)
        assert {t.marked_count for t in trees.values()} == {marked}

    def test_all_exit_same_round(self, name, graph):
        trees, _ = build_all_trees(graph)
        assert len({t.start_round for t in trees.values()}) == 1

    def test_runs_in_o_diameter(self, name, graph):
        trees, metrics = build_all_trees(graph)
        ecc = next(iter(trees.values())).ecc_root
        assert metrics.rounds <= 4 * max(1, ecc) + 10


class TestBuildBfsTreeEdgeCases:
    def test_single_node(self):
        trees, _ = build_all_trees(Graph([1], []))
        tree = trees[1]
        assert tree.depth == 0 and tree.children == ()
        assert tree.ecc_root == 0
        assert tree.diameter_bound == 1

    def test_two_nodes(self):
        trees, _ = build_all_trees(path_graph(2))
        assert trees[2].parent == 1
        assert trees[1].children == (2,)

    def test_star_children_all_leaves(self):
        trees, _ = build_all_trees(star_graph(6))
        assert set(trees[1].children) == {2, 3, 4, 5, 6}
        for leaf in range(2, 7):
            assert trees[leaf].children == ()


class AggProbe(NodeAlgorithm):
    """Exercises broadcast / convergecast / aggregate-and-share."""

    def program(self):
        tree = yield from build_bfs_tree(self, 1)
        received = yield from aligned_broadcast(
            self, tree, 12345 if tree.is_root else None
        )
        total = yield from aligned_convergecast(
            self, tree, self.uid, combine_sum
        )
        shared_max = yield from aggregate_and_share(
            self, tree, self.uid, combine_max
        )
        shared_min = yield from aggregate_and_share(
            self, tree, self.uid, combine_min
        )
        return (received, total, shared_max, shared_min)


@pytest.mark.parametrize("name,graph", topology_zoo())
def test_aggregation_primitives(name, graph):
    outcome = Network(graph, AggProbe).run()
    n = graph.n
    expected_sum = sum(graph.nodes)
    for uid, (received, total, shared_max, shared_min) in \
            outcome.results.items():
        assert received == 12345
        if uid == 1:
            assert total == expected_sum
        else:
            assert total is None
        assert shared_max == max(graph.nodes)
        assert shared_min == min(graph.nodes)


class TestCombines:
    def test_min_with_infinity(self):
        assert combine_min(INFINITY, 5) == 5
        assert combine_min(5, INFINITY) == 5
        assert combine_min(INFINITY, INFINITY) == INFINITY
        assert combine_min(3, 7) == 3

    def test_max_with_infinity(self):
        assert combine_max(INFINITY, 5) == INFINITY
        assert combine_max(5, INFINITY) == INFINITY
        assert combine_max(3, 7) == 7

    def test_sum_rejects_infinity(self):
        assert combine_sum(2, 3) == 5
        with pytest.raises(ProtocolError):
            combine_sum(INFINITY, 1)


class TestWaitUntilRound:
    def test_missed_round_raises(self):
        class Late(NodeAlgorithm):
            def program(self):
                yield
                yield
                yield from wait_until_round(self, 1)

        with pytest.raises(ProtocolError):
            Network(path_graph(2), Late).run()

    def test_broadcast_without_value_raises(self):
        class BadRoot(NodeAlgorithm):
            def program(self):
                tree = yield from build_bfs_tree(self, 1)
                yield from aligned_broadcast(self, tree, None)

        with pytest.raises(ProtocolError):
            Network(path_graph(3), BadRoot).run()
