"""Failure-injection tests: broken assumptions must fail loudly.

The CONGEST model is synchronous and reliable, so "failures" here are
violated *assumptions* — undersized bandwidth, disconnected inputs,
missing node 1, bad parameters — each of which must produce a specific
exception rather than a silent wrong answer.
"""

import pytest

from repro.congest import (
    BandwidthExceededError,
    GraphError,
    RoundLimitExceededError,
)
from repro.core import (
    run_approx_girth,
    run_approx_properties,
    run_apsp,
    run_graph_properties,
    run_ssp,
)
from repro.graphs import Graph, grid_graph, path_graph


class TestUndersizedBandwidth:
    """The paper's algorithms need B large enough for one message
    bundle; below that the strict policy must abort the run."""

    def test_apsp_aborts_below_minimum_budget(self):
        with pytest.raises(BandwidthExceededError):
            run_apsp(grid_graph(3, 3), bandwidth_bits=8)

    def test_ssp_aborts_below_minimum_budget(self):
        with pytest.raises(BandwidthExceededError):
            run_ssp(grid_graph(3, 3), [1, 5], bandwidth_bits=8)

    def test_generous_budget_changes_nothing(self):
        """Extra bandwidth must not change results or round counts —
        the algorithms never use more than their O(log n) bundles."""
        graph = grid_graph(3, 4)
        tight = run_apsp(graph)
        roomy = run_apsp(graph, bandwidth_bits=4096)
        assert tight.rounds == roomy.rounds
        for uid in graph.nodes:
            assert dict(tight.results[uid].distances) == \
                dict(roomy.results[uid].distances)


class TestStructuralAssumptions:
    def test_disconnected_input_rejected_everywhere(self):
        broken = Graph([1, 2, 3, 4], [(1, 2), (3, 4)])
        for runner in (
            lambda: run_apsp(broken),
            lambda: run_ssp(broken, [1]),
            lambda: run_graph_properties(broken),
            lambda: run_approx_properties(broken, 0.5),
            lambda: run_approx_girth(broken, 0.5),
        ):
            with pytest.raises(GraphError):
                runner()

    def test_missing_node_one_rejected(self):
        shifted = Graph([2, 3, 4], [(2, 3), (3, 4)])
        with pytest.raises(GraphError):
            run_apsp(shifted)

    def test_bad_epsilon_rejected(self):
        with pytest.raises(GraphError):
            run_approx_properties(path_graph(5), 0.0)
        with pytest.raises(GraphError):
            run_approx_girth(path_graph(5), -0.5)


class TestRunawayProtection:
    def test_round_limit_is_a_hard_stop(self):
        from repro.congest import Network, NodeAlgorithm

        class Spin(NodeAlgorithm):
            def program(self):
                while True:
                    yield

        network = Network(path_graph(3), Spin, max_rounds=25)
        with pytest.raises(RoundLimitExceededError) as exc:
            network.run()
        assert exc.value.unfinished == 3
        assert exc.value.max_rounds == 25
