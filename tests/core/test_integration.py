"""Cross-algorithm integration tests.

Different algorithms computing overlapping quantities must agree with
each other (not just with the oracle), every runner must be
deterministic under a fixed seed, and every paper algorithm must stay
within the strict bandwidth budget on every edge of every round.
"""

import pytest

from repro.congest import Network, default_bandwidth
from repro.core import (
    run_approx_properties,
    run_apsp,
    run_graph_properties,
    run_remark1,
    run_ssp,
)
from repro.core.apsp import ApspGirthNode
from repro.core.approx import ApproxEccNode
from repro.core.dominating import DominatingSetNode
from repro.core.girth import GirthApproxNode
from repro.core.ssp import SspNode
from repro.core.two_vs_four import TwoVsFourNode
from repro.graphs import diameter_two_random, grid_graph
from tests.conftest import topology_zoo


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestCrossAlgorithmAgreement:
    def test_apsp_equals_ssp_with_all_sources(self, name, graph):
        apsp = run_apsp(graph)
        ssp = run_ssp(graph, graph.nodes)
        for uid in graph.nodes:
            assert dict(apsp.results[uid].distances) == \
                dict(ssp.results[uid].distances)

    def test_properties_agree_with_apsp_aggregates(self, name, graph):
        apsp = run_apsp(graph)
        props = run_graph_properties(graph, include_girth=False)
        assert props.diameter == apsp.diameter()
        assert props.radius == apsp.radius()
        assert props.eccentricities() == apsp.eccentricities()

    def test_approx_brackets_exact(self, name, graph):
        props = run_graph_properties(graph, include_girth=False)
        approx = run_approx_properties(graph, 0.5)
        assert props.diameter <= approx.diameter_estimate \
            <= 1.5 * props.diameter
        assert props.radius <= approx.radius_estimate \
            <= 1.5 * props.radius

    def test_remark1_brackets_exact(self, name, graph):
        props = run_graph_properties(graph, include_girth=False)
        results, _ = run_remark1(graph)
        sample = next(iter(results.values()))
        assert props.diameter <= sample.diameter_estimate \
            <= 2 * props.diameter


@pytest.mark.parametrize("name,graph", topology_zoo())
class TestDeterminism:
    def test_apsp_deterministic(self, name, graph):
        a = run_apsp(graph, seed=5)
        b = run_apsp(graph, seed=5)
        assert a.rounds == b.rounds
        for uid in graph.nodes:
            assert dict(a.results[uid].distances) == \
                dict(b.results[uid].distances)

    def test_approx_deterministic(self, name, graph):
        a = run_approx_properties(graph, 0.5, seed=9)
        b = run_approx_properties(graph, 0.5, seed=9)
        assert a.rounds == b.rounds
        assert a.ecc_estimates() == b.ecc_estimates()


#: Every per-node program from the paper, with the inputs it needs on a
#: 4x5 grid (n = 20).
def _paper_factories(graph):
    yield ApspGirthNode, None
    yield SspNode, {u: (u <= 6) for u in graph.nodes}
    yield DominatingSetNode, {u: 2 for u in graph.nodes}
    yield ApproxEccNode, {u: 0.5 for u in graph.nodes}
    yield GirthApproxNode, {u: 0.5 for u in graph.nodes}


class TestBandwidthCompliance:
    """Every paper algorithm survives the strict policy and never
    exceeds B — the machine-checked version of the O(log n) message
    claims throughout the paper."""

    def test_all_programs_within_budget_on_grid(self):
        graph = grid_graph(4, 5)
        budget = default_bandwidth(graph.n)
        for factory, inputs in _paper_factories(graph):
            network = Network(graph, factory, inputs=inputs)
            network.run()
            assert network.metrics.max_edge_bits_in_round <= budget, \
                factory.__name__

    def test_two_vs_four_within_budget(self):
        graph = diameter_two_random(24, seed=3)
        network = Network(graph, TwoVsFourNode)
        network.run()
        assert network.metrics.max_edge_bits_in_round <= \
            default_bandwidth(graph.n)
