"""Tests for min-id leader election."""

import pytest

from repro.congest import GraphError
from repro.core.leader import relabel_for_apsp, run_leader_election
from repro.graphs import Graph, all_pairs_distances, path_graph
from tests.conftest import random_connected_graph, topology_zoo


@pytest.mark.parametrize("name,graph", topology_zoo())
def test_everyone_elects_the_minimum(name, graph):
    results, _ = run_leader_election(graph)
    assert {info.leader for info in results.values()} == \
        {min(graph.nodes)}
    assert results[min(graph.nodes)].is_leader


def test_works_without_node_one():
    graph = Graph([10, 20, 30, 40], [(10, 20), (20, 30), (30, 40)])
    results, _ = run_leader_election(graph)
    assert {info.leader for info in results.values()} == {10}


def test_linear_round_bound():
    graph = path_graph(40)
    _, metrics = run_leader_election(graph)
    assert metrics.rounds <= 40 + 3


def test_requires_connected():
    with pytest.raises(GraphError):
        run_leader_election(Graph([1, 2, 3], [(1, 2)]))


def test_relabel_pipeline_enables_apsp():
    """Arbitrary ids -> elect -> relabel -> run Algorithm 1."""
    from repro.core.apsp import run_apsp

    graph = Graph([100, 205, 307, 411],
                  [(100, 205), (205, 307), (307, 411), (100, 411)])
    relabeled, mapping = relabel_for_apsp(graph)
    assert relabeled.nodes == (1, 2, 3, 4)
    summary = run_apsp(relabeled)
    oracle = all_pairs_distances(relabeled)
    for uid in relabeled.nodes:
        assert dict(summary.results[uid].distances) == oracle[uid]
    # The elected leader (smallest original id) became node 1.
    assert mapping[100] == 1


@pytest.mark.parametrize("seed", range(4))
def test_on_random_graphs(seed):
    graph = random_connected_graph(15, seed)
    results, _ = run_leader_election(graph, seed=seed)
    assert {info.leader for info in results.values()} == \
        {min(graph.nodes)}
