"""The object path must never touch numpy, even with the extra installed.

CI's main test job runs on a numpy-free install; these tests prove in
a subprocess — with a meta-path blocker that turns any ``import
numpy`` into an ImportError — that:

* importing ``repro.vector`` (the probing facade) succeeds and reports
  ``HAS_NUMPY = False``;
* the object backend runs protocols end to end;
* asking for the vector backend fails with the message that names the
  ``vector`` install extra;
* nothing on the object path imports numpy as a side effect.
"""

import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

BLOCKER = """
import importlib.abc
import sys

class _Block(importlib.abc.MetaPathFinder):
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy is blocked for this test")
        return None

sys.meta_path.insert(0, _Block())
"""

SCRIPT = BLOCKER + """
from repro import protocols, vector
from repro.graphs.specs import parse_graph

assert vector.HAS_NUMPY is False

# The object path runs fine...
outcome = protocols.run("apsp", parse_graph("path:6"), {})
assert outcome.metrics.rounds > 0

# ...the vector backend is reported unavailable...
assert protocols.get("apsp").available_backends() == ("object",)

# ...and asking for it names the install extra.
try:
    protocols.run("apsp", parse_graph("path:6"), {"backend": "vector"})
except protocols.TaskError as exc:
    assert "repro[vector]" in str(exc), str(exc)
else:
    raise AssertionError("vector backend ran without numpy")

# Calling a facade entry point directly raises the typed error.
try:
    vector.run_bfs(parse_graph("path:4"))
except vector.VectorBackendUnavailable as exc:
    assert "repro[vector]" in str(exc), str(exc)
else:
    raise AssertionError("vector.run_bfs ran without numpy")

assert not any(m == "numpy" or m.startswith("numpy.")
               for m in sys.modules), "numpy leaked into the object path"
print("OK")
"""


def test_object_path_is_numpy_free():
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "OK"
