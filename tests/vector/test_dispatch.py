"""Backend dispatch: registry, harness, serve, and bench integration.

The vector engine itself is gated by the golden fixtures
(``tests/congest/test_golden_equivalence.py``) and the cross-backend
property test (``test_cross_backend.py``); this module covers the
*plumbing* — how ``backend`` threads through every consumer and how
each layer rejects what the vector engine cannot do.

Everything here that needs numpy says so via ``importorskip``; the
error-path tests run numpy-free (some *require* simulating its
absence).
"""

import pytest

from repro import protocols
from repro.bench.workloads import ALL_WORKLOADS, LARGE_WORKLOADS, WORKLOADS, select
from repro.graphs.specs import parse_graph
from repro.harness.spec import CampaignSpec, SpecError
from repro.protocols import ParamError
from repro.serve.matrix import QueryFamily


GRAPH = "er:16:p=0.2:seed=3"


class TestRegistryDispatch:
    def test_vector_capable_protocols(self):
        capable = {
            p.name for p in protocols.protocols()
            if "vector" in p.capabilities
        }
        assert capable == {"bfs", "apsp", "ssp", "properties", "girth"}

    def test_available_backends_reports_numpy(self):
        pytest.importorskip("numpy")
        assert protocols.get("apsp").available_backends() == (
            "object", "vector",
        )
        # Not vector-capable: object only, regardless of numpy.
        assert protocols.get("leader").available_backends() == ("object",)

    def test_vector_run_matches_object_run(self):
        pytest.importorskip("numpy")
        graph = parse_graph(GRAPH)
        obj = protocols.run("apsp", graph, {"backend": "object"})
        vec = protocols.run("apsp", graph, {"backend": "vector"})
        assert vec.metrics.to_dict() == obj.metrics.to_dict()
        assert vec.result == obj.result

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParamError, match="must be one of"):
            protocols.run("apsp", parse_graph("path:4"),
                          {"backend": "gpu"})

    def test_non_capable_protocol_rejected(self):
        with pytest.raises(ParamError,
                           match="vector-capable protocols"):
            protocols.get("leader").check_params({"backend": "vector"})

    def test_faults_rejected_on_vector(self):
        with pytest.raises(ParamError, match="fault injection"):
            protocols.get("apsp").check_params({
                "backend": "vector",
                "faults": {"drop_rate": 0.1, "seed": 1},
            })

    def test_serialize_policy_rejected_on_vector(self):
        with pytest.raises(ParamError, match="'strict' bandwidth policy"):
            protocols.get("apsp").check_params({
                "backend": "vector", "policy": "serialize",
            })

    def test_missing_numpy_names_the_install_extra(self, monkeypatch):
        monkeypatch.setattr("repro.vector.HAS_NUMPY", False)
        with pytest.raises(ParamError, match=r"repro\[vector\]"):
            protocols.get("apsp").check_params({"backend": "vector"})
        assert protocols.get("apsp").available_backends() == ("object",)

    def test_engine_rejects_non_default_ssp_priority(self):
        pytest.importorskip("numpy")
        from repro.vector import VectorBackendError, run_ssp

        with pytest.raises(VectorBackendError, match="priority"):
            run_ssp(parse_graph(GRAPH), [1, 3], priority="id")


class TestCampaignSpec:
    def base(self, **extra):
        data = {
            "name": "t",
            "graphs": ["path:{n}"],
            "sizes": [6],
            "algorithms": ["apsp"],
            **extra,
        }
        return CampaignSpec.from_dict(data)

    def test_object_tasks_omit_backend_param(self):
        # Pre-backend cache keys must not shift: the default backend
        # adds nothing to the task params.
        tasks = self.base().expand()
        assert all("backend" not in dict(t.params) for t in tasks)

    def test_vector_tasks_carry_backend_param(self):
        pytest.importorskip("numpy")
        tasks = self.base(backend="vector").expand()
        assert all(dict(t.params).get("backend") == "vector"
                   for t in tasks)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="unknown backend"):
            self.base(backend="gpu")

    def test_backend_in_shared_params_rejected(self):
        with pytest.raises(SpecError, match="top-level spec field"):
            self.base(params={"backend": "vector"})

    def test_vector_with_faults_rejected(self):
        pytest.importorskip("numpy")
        with pytest.raises(SpecError, match="fault"):
            self.base(backend="vector",
                      faults={"drop_rate": 0.1, "seed": 1})

    def test_vector_with_trace_rejected(self):
        pytest.importorskip("numpy")
        with pytest.raises(SpecError, match="trace"):
            self.base(backend="vector").with_trace()

    def test_vector_without_numpy_names_extra(self, monkeypatch):
        monkeypatch.setattr("repro.vector.HAS_NUMPY", False)
        with pytest.raises(SpecError, match=r"repro\[vector\]"):
            self.base(backend="vector")


class TestServeKeys:
    def test_object_payload_has_no_backend_key(self):
        # Records written before the backend field existed must keep
        # addressing the same object-backend cache entries.
        family = QueryFamily.make(GRAPH)
        assert "backend" not in family.payload()

    def test_vector_payload_is_disjoint(self):
        obj = QueryFamily.make(GRAPH)
        vec = QueryFamily.make(GRAPH, backend="vector")
        assert vec.payload()["backend"] == "vector"
        assert vec.matrix_key() != obj.matrix_key()
        assert vec.row_key(1) != obj.row_key(1)

    def test_service_rejects_vector_without_numpy(self, monkeypatch):
        monkeypatch.setattr("repro.vector.HAS_NUMPY", False)
        from repro.serve.service import DistanceService, QueryError

        with pytest.raises(QueryError, match=r"repro\[vector\]"):
            DistanceService(backend="vector")

    def test_service_serves_identical_distances_on_vector(self):
        pytest.importorskip("numpy")
        from repro.serve.service import DistanceService

        obj = DistanceService()
        vec = DistanceService(backend="vector")
        for service in (obj, vec):
            service.load_graph(GRAPH)
        fam_obj = obj.family_for(GRAPH)
        fam_vec = vec.family_for(GRAPH)
        assert fam_vec.backend == "vector"
        m_obj = obj.compute_full(fam_obj)
        m_vec = vec.compute_full(fam_vec)
        assert m_vec.rows == m_obj.rows


class TestBenchWorkloads:
    def test_default_suite_stays_object_only(self):
        # ``select(None)`` must run on a numpy-free install: no large-n
        # vector workload may leak into the default suite.
        assert [w.name for w in select()] == list(WORKLOADS)
        assert all(w.backend == "object" for w in select())

    def test_large_workloads_are_vector_and_opt_in(self):
        assert set(LARGE_WORKLOADS) == {
            "bench_apsp_n512", "bench_apsp_n1024", "bench_apsp_n2048",
            "bench_ssp_n512", "bench_ssp_n1024", "bench_ssp_n2048",
        }
        assert all(w.backend == "vector"
                   for w in LARGE_WORKLOADS.values())
        chosen = select(["bench_apsp_n512"])
        assert [w.name for w in chosen] == ["bench_apsp_n512"]
        assert set(ALL_WORKLOADS) == set(WORKLOADS) | set(LARGE_WORKLOADS)

    def test_unknown_name_lists_all_workloads(self):
        with pytest.raises(ValueError, match="bench_apsp_n512"):
            select(["bench_nope"])

    def test_large_workload_runs_at_quick_scale(self):
        pytest.importorskip("numpy")
        metrics = LARGE_WORKLOADS["bench_apsp_n512"].run(quick=True)
        assert metrics.rounds > 0
        assert metrics.messages_total > 0
