"""Property test: object and vector backends agree on random graphs.

The golden fixtures pin a handful of workloads byte-for-byte; this
module widens the net with hypothesis-generated topologies.  For every
sampled graph the two engines must produce *identical* result payloads
and *identical* full metrics dictionaries — not just the same
distances, but the same rounds, per-round message/bit series, and
per-edge congestion audits.  Any schedule drift in the vector engine
(an off-by-one in a closed-form send round, a missed coincidence)
shows up here as a counter diff long before it would corrupt a
distance.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro import protocols  # noqa: E402
from repro.graphs.specs import parse_graph  # noqa: E402


def _canonical(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, frozenset):
        return sorted(_canonical(v) for v in value)
    if isinstance(value, float) and value == float("inf"):
        return "inf"
    return value


def _both(algorithm, graph, params=None):
    params = dict(params or {})
    obj = protocols.run(algorithm, graph,
                        {**params, "backend": "object"})
    vec = protocols.run(algorithm, graph,
                        {**params, "backend": "vector"})
    assert vec.metrics.to_dict() == obj.metrics.to_dict(), (
        f"{algorithm}: metrics diverged between backends"
    )
    assert _canonical(vec.result) == _canonical(obj.result), (
        f"{algorithm}: results diverged between backends"
    )
    return obj


graph_specs = st.one_of(
    st.builds(
        "er:{}:p={}:seed={}".format,
        st.integers(min_value=5, max_value=24),
        st.sampled_from([0.15, 0.2, 0.3, 0.5]),
        st.integers(min_value=0, max_value=9),
    ),
    st.builds(
        "diameter2:{}:seed={}".format,
        st.integers(min_value=6, max_value=20),
        st.integers(min_value=0, max_value=5),
    ),
    st.builds(
        "diameter4:{}:seed={}".format,
        st.integers(min_value=9, max_value=20),
        st.integers(min_value=0, max_value=5),
    ),
)


@settings(max_examples=30, deadline=None)
@given(spec=graph_specs, girth=st.booleans())
def test_apsp_backends_agree(spec, girth):
    graph = parse_graph(spec)
    _both("apsp", graph, {"collect_girth": girth})


@settings(max_examples=15, deadline=None)
@given(spec=graph_specs)
def test_apsp_edge_tracking_agrees(spec):
    # ``track_edges`` is an entry-point flag (not a registry param):
    # the per-edge bit audit must match down to every (u, v) count.
    from repro import core, vector

    graph = parse_graph(spec)
    obj = core.run_apsp(graph, track_edges=True)
    vec = vector.run_apsp(graph, track_edges=True)
    assert vec.metrics.to_dict() == obj.metrics.to_dict()
    assert _canonical(vec.results) == _canonical(obj.results)


@settings(max_examples=20, deadline=None)
@given(spec=graph_specs, data=st.data())
def test_ssp_backends_agree(spec, data):
    graph = parse_graph(spec)
    nodes = sorted(graph.nodes)
    sources = data.draw(
        st.lists(st.sampled_from(nodes), min_size=1,
                 max_size=min(4, len(nodes)), unique=True)
    )
    _both("ssp", graph, {"sources": sources})


@settings(max_examples=15, deadline=None)
@given(spec=graph_specs, girth=st.booleans())
def test_properties_backends_agree(spec, girth):
    graph = parse_graph(spec)
    _both("properties", graph, {"include_girth": girth})
