"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_graph
from repro.graphs import (
    Graph,
    cycle_graph,
    dumbbell_with_path,
    grid_graph,
    path_graph,
    star_graph,
    torus_graph,
)


class TestGraphSpecs:
    @pytest.mark.parametrize("spec,expected", [
        ("path:7", path_graph(7)),
        ("cycle:9", cycle_graph(9)),
        ("star:5", star_graph(5)),
        ("grid:3x4", grid_graph(3, 4)),
        ("torus:4x5", torus_graph(4, 5)),
        ("dumbbell:6:3", dumbbell_with_path(6, 3)),
    ])
    def test_deterministic_specs(self, spec, expected):
        assert parse_graph(spec) == expected

    def test_er_spec_connected(self):
        graph = parse_graph("er:30:p=0.1:seed=5")
        assert graph.n == 30
        assert graph.is_connected()

    def test_tree_spec(self):
        graph = parse_graph("tree:12:seed=2")
        assert graph.n == 12 and graph.m == 11

    def test_file_spec(self, tmp_path):
        from repro.graphs.io import save

        target = tmp_path / "g.txt"
        save(path_graph(5), target)
        assert parse_graph(f"file:{target}") == path_graph(5)

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            parse_graph("hypercube:8")


class TestCommands:
    def run(self, argv, capsys):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_apsp(self, capsys):
        out = self.run(["apsp", "torus:4x4", "--show-row", "1"], capsys)
        assert "diameter: 4" in out
        assert "distances from node 1" in out

    def test_ssp(self, capsys):
        out = self.run(["ssp", "path:6", "--sources", "1,6"], capsys)
        assert "S = [1, 6]" in out
        assert "node 1:" in out

    def test_properties(self, capsys):
        out = self.run(["properties", "cycle:8"], capsys)
        assert "girth:      8" in out
        assert "diameter:   4" in out

    def test_approx(self, capsys):
        out = self.run(["approx", "dumbbell:10:8", "--epsilon", "1.0"],
                       capsys)
        assert "diameter estimate" in out

    def test_girth_exact_and_approx(self, capsys):
        exact = self.run(["girth", "cycle:12"], capsys)
        assert "girth: 12" in exact
        approx = self.run(["girth", "cycle:12", "--epsilon", "0.5"],
                          capsys)
        assert "girth: 12" in approx

    def test_two_vs_four(self, capsys):
        out = self.run(
            ["two-vs-four", "--family", "diameter4", "--n", "30"], capsys
        )
        assert "diameter 4" in out

    def test_baseline(self, capsys):
        out = self.run(
            ["baseline", "path:12", "--algorithm", "sequential-bfs"],
            capsys,
        )
        assert "Algorithm 1 on the same graph" in out

    def test_leader(self, capsys):
        out = self.run(["leader", "er:15:p=0.3:seed=1"], capsys)
        assert "leader: 1" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCampaignCommand:
    def run(self, argv, capsys):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_flag_mode_runs_and_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "sweep.jsonl"
        text = self.run([
            "campaign", "--name", "cli-sweep",
            "--graphs", "path:{n}", "--sizes", "8,10",
            "--algorithms", "apsp,properties",
            "--jobs", "2", "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out),
        ], capsys)
        assert "campaign 'cli-sweep': 4 tasks" in text
        assert out.exists()
        assert len(out.read_text().splitlines()) == 4

    def test_second_invocation_serves_from_cache(self, tmp_path, capsys):
        argv = [
            "campaign", "--graphs", "path:8", "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out.jsonl"),
        ]
        self.run(argv, capsys)
        text = self.run(argv, capsys)
        assert "1 from cache (100%)" in text

    def test_spec_file_mode(self, tmp_path, capsys):
        import json as _json

        spec = tmp_path / "spec.json"
        spec.write_text(_json.dumps({
            "name": "from-file", "graphs": ["cycle:9"],
        }), encoding="utf-8")
        text = self.run([
            "campaign", str(spec), "--quiet",
            "--out", str(tmp_path / "out.jsonl"),
        ], capsys)
        assert "campaign 'from-file': 1 tasks" in text

    def test_spec_file_and_flags_conflict(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text('{"graphs": ["path:8"]}', encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["campaign", str(spec), "--graphs", "path:8"])

    def test_no_input_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign"])

    def test_missing_spec_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", str(tmp_path / "absent.json")])

    def test_unknown_algorithm_rejected_before_workers(self, tmp_path):
        # Spec-time validation: no worker spawns, no result store is
        # written — the campaign is refused outright.
        out = tmp_path / "out.jsonl"
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main([
                "campaign", "--graphs", "path:8",
                "--algorithms", "no-such-algorithm", "--quiet",
                "--out", str(out),
            ])
        assert not out.exists()

    def test_malformed_params_rejected_before_workers(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "bad-k",
            "graphs": ["path:8"],
            "algorithms": ["dominating-set"],
            "params": {"k": -2},
        }))
        out = tmp_path / "out.jsonl"
        with pytest.raises(SystemExit, match="must be >= 1"):
            main(["campaign", str(spec), "--quiet", "--out", str(out)])
        assert not out.exists()

    def test_failed_tasks_record_tracebacks(self, tmp_path):
        out = tmp_path / "out.jsonl"
        assert main([
            "campaign", "--graphs", "path:8",
            "--algorithms", "chaos", "--quiet",
            "--out", str(out),
        ]) == 1
        record = json.loads(out.read_text().strip())
        assert record["error"]["type"] == "TaskError"
        assert "Traceback" in record["error"]["traceback"]

    def test_faults_flag_reaches_every_task(self, tmp_path):
        out = tmp_path / "out.jsonl"
        assert main([
            "campaign", "--graphs", "cycle:12",
            "--algorithms", "apsp", "--quiet",
            "--faults", '{"drop_rate": 0.02, "seed": 7}',
            "--out", str(out),
        ]) == 0
        record = json.loads(out.read_text().strip())
        assert record["task"]["params"]["faults"] == {
            "drop_rate": 0.02, "seed": 7,
        }

    def test_bad_faults_json_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="faults"):
            main([
                "campaign", "--graphs", "path:8", "--quiet",
                "--faults", "{not json",
                "--out", str(tmp_path / "out.jsonl"),
            ])

    def test_timeout_flag_kills_a_hanging_task(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "hang",
            "graphs": ["path:4"],
            "algorithms": ["chaos"],
            "params": {"mode": "hang", "seconds": 60},
        }))
        out = tmp_path / "out.jsonl"
        assert main([
            "campaign", str(spec), "--quiet",
            "--timeout", "1.0",
            "--out", str(out),
        ]) == 1
        record = json.loads(out.read_text().strip())
        assert record["error"]["type"] == "Timeout"


class TestTraceCommand:
    def run(self, argv, capsys):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_summary_export_prints_invariants_and_heatmap(self, capsys):
        out = self.run(
            ["trace", "run", "apsp", "er:32:p=0.15:seed=1"], capsys
        )
        assert "lemma1_no_wave_collisions" in out
        assert "[ok ]" in out and "FAIL" not in out
        assert "round x edge heatmap" in out

    def test_chrome_export_is_loadable_trace_event_json(
        self, tmp_path, capsys
    ):
        target = tmp_path / "trace.json"
        out = self.run([
            "trace", "run", "apsp", "torus:3x4",
            "--export", "chrome", "--out", str(target),
        ], capsys)
        assert "chrome trace ->" in out
        data = json.loads(target.read_text(encoding="utf-8"))
        assert isinstance(data["traceEvents"], list)
        assert data["traceEvents"]
        assert data["otherData"]["schema"] == "repro-trace/1"

    def test_jsonl_export_writes_schema_stream(self, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        self.run([
            "trace", "run", "ssp", "path:8", "--sources", "1,8",
            "--export", "jsonl", "--out", str(target),
        ], capsys)
        lines = [
            json.loads(line)
            for line in target.read_text(encoding="utf-8").splitlines()
        ]
        assert lines[0]["type"] == "header"
        assert lines[0]["schema"] == "repro-trace/1"
        assert any(line["type"] == "event" for line in lines)

    def test_ssp_summary_checks_theorem3(self, capsys):
        out = self.run([
            "trace", "run", "ssp", "er:24:p=0.2:seed=3",
            "--sources", "1,5,9",
        ], capsys)
        assert "theorem3_wave_delay_bound" in out
        assert "FAIL" not in out

    def test_tracing_leaves_globals_clean(self, capsys):
        from repro.congest import network as network_mod
        from repro.obs import is_enabled

        self.run(["trace", "run", "apsp", "path:6"], capsys)
        assert not is_enabled()
        assert network_mod._network_observer is None

    def test_faults_flag_accepted(self, capsys):
        out = self.run([
            "trace", "run", "apsp", "er:20:p=0.25:seed=4",
            "--faults", '{"drop_rate": 0.01, "seed": 3}',
        ], capsys)
        assert "trace [apsp" in out

    def test_campaign_trace_flag_stores_summaries(self, tmp_path, capsys):
        out = tmp_path / "traced.jsonl"
        assert main([
            "campaign", "--graphs", "path:8", "--trace", "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out),
        ]) == 0
        capsys.readouterr()
        record = json.loads(out.read_text(encoding="utf-8").splitlines()[0])
        assert record["trace"]["schema"] == "repro-trace/1"
        assert record["trace"]["lemma1_collisions"] == 0


class TestExperimentJobsFlag:
    def test_experiment_with_jobs_and_cache(self, tmp_path, capsys):
        assert main([
            "experiment", "e16", "--scale", "quick",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "E16" in out and "checks: PASS" in out

    def test_execution_config_restored_after_run(self, tmp_path, capsys):
        from repro import experiments

        before = experiments.execution_config()
        assert main([
            "experiment", "e16", "--scale", "quick",
            "--jobs", "3", "--cache-dir", str(tmp_path / "cache"),
            "--no-cache",
        ]) == 0
        capsys.readouterr()
        assert experiments.execution_config() == before
