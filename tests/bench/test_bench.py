"""Tests for the ``repro.bench`` microbenchmark subsystem.

The benchmarks themselves are pytest-independent by design (see
``repro/bench/runner.py``); these tests exercise the machinery — report
schema, determinism enforcement, the regression gate, and the CLI — on
deliberately tiny workloads so the suite stays fast.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.bench.compare import DEFAULT_THRESHOLD, compare_reports
from repro.bench.runner import (
    SCHEMA,
    load_report,
    run_suite,
    run_workload,
    write_report,
)
from repro.bench.workloads import WORKLOADS, Workload, select
from repro.cli import main


TINY = Workload(
    name="tiny_apsp",
    algorithm="apsp",
    graph="path:6",
    quick_graph="path:4",
    seed=0,
)


def tiny_report(**overrides):
    report = run_suite(workloads=[TINY], repeats=2, **overrides)
    return report


class TestWorkloads:
    def test_suite_is_pinned(self):
        assert set(WORKLOADS) == {
            "bench_apsp", "bench_ssp", "bench_two_vs_four", "bench_girth",
            "bench_weighted",
        }
        # The perf gate is defined on bench_apsp at n >= 128.
        assert WORKLOADS["bench_apsp"].graph.startswith("er:128:")

    def test_select_preserves_order_and_rejects_unknown(self):
        assert [w.name for w in select()] == list(WORKLOADS)
        assert [w.name for w in select(["bench_girth", "bench_apsp"])] == [
            "bench_girth", "bench_apsp",
        ]
        with pytest.raises(ValueError, match="unknown workload"):
            select(["bench_apsp", "bench_nope"])

    def test_every_workload_runs_at_quick_scale(self):
        for workload in WORKLOADS.values():
            metrics = workload.run(quick=True)
            assert metrics.rounds > 0
            assert metrics.messages_total > 0

    def test_unknown_algorithm_rejected(self):
        bogus = Workload(name="x", algorithm="sorting",
                         graph="path:4", quick_graph="path:4")
        with pytest.raises(ValueError, match="unknown algorithm"):
            bogus.run(quick=True)

    def test_workloads_dispatch_through_the_registry(self):
        from repro import protocols

        for workload in WORKLOADS.values():
            assert workload.algorithm in protocols.names()


class TestRunner:
    def test_entry_shape_and_counters(self):
        entry = run_workload(TINY, repeats=2)
        assert entry["graph"] == "path:6"
        assert entry["repeats"] == 2
        assert set(entry["wall_s"]) == {"median", "p90", "min", "max", "mean"}
        assert entry["wall_s"]["min"] <= entry["wall_s"]["median"]
        assert entry["wall_s"]["median"] <= entry["wall_s"]["max"]
        assert entry["rounds"] > 0 and entry["messages"] > 0
        assert entry["bits"] > 0
        # peak_rss_kb is None only on platforms without `resource`.
        assert entry["peak_rss_kb"] is None or entry["peak_rss_kb"] > 0

    def test_quick_uses_quick_graph(self):
        entry = run_workload(TINY, quick=True, repeats=1)
        assert entry["graph"] == "path:4"

    def test_report_schema_and_roundtrip(self, tmp_path):
        report = tiny_report()
        assert report["schema"] == SCHEMA
        assert report["mode"] == "full"
        assert list(report["workloads"]) == ["tiny_apsp"]
        path = tmp_path / "report.json"
        write_report(report, str(path))
        assert load_report(str(path)) == json.loads(path.read_text())

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something-else/9"}))
        with pytest.raises(ValueError, match="unsupported benchmark schema"):
            load_report(str(path))

    def test_progress_callback(self):
        lines = []
        tiny_report(progress=lines.append)
        assert any("tiny_apsp" in line for line in lines)
        assert any("median" in line for line in lines)


class TestCompare:
    def setup_method(self):
        self.baseline = tiny_report()

    def test_identical_reports_pass_gate(self):
        comparison = compare_reports(self.baseline, self.baseline)
        assert comparison.ok
        assert not comparison.regressions and not comparison.divergent
        assert "gate: OK" in comparison.render()

    def test_slowdown_beyond_threshold_regresses(self):
        current = copy.deepcopy(self.baseline)
        entry = current["workloads"]["tiny_apsp"]
        entry["wall_s"]["median"] *= 1.0 + DEFAULT_THRESHOLD + 0.05
        comparison = compare_reports(self.baseline, current)
        assert not comparison.ok
        assert [d.name for d in comparison.regressions] == ["tiny_apsp"]
        assert "REGRESSED" in comparison.render()
        assert "gate: FAIL" in comparison.render()

    def test_slowdown_within_threshold_passes(self):
        current = copy.deepcopy(self.baseline)
        current["workloads"]["tiny_apsp"]["wall_s"]["median"] *= 1.10
        assert compare_reports(self.baseline, current).ok

    def test_custom_threshold(self):
        current = copy.deepcopy(self.baseline)
        current["workloads"]["tiny_apsp"]["wall_s"]["median"] *= 1.10
        assert not compare_reports(
            self.baseline, current, threshold=0.05
        ).ok

    def test_counter_divergence_fails_gate_even_when_faster(self):
        current = copy.deepcopy(self.baseline)
        entry = current["workloads"]["tiny_apsp"]
        entry["wall_s"]["median"] *= 0.5
        entry["rounds"] += 1
        comparison = compare_reports(self.baseline, current)
        assert not comparison.ok
        assert [d.name for d in comparison.divergent] == ["tiny_apsp"]
        assert "DIVERGED" in comparison.render()

    def test_workload_set_mismatch_is_reported(self):
        current = copy.deepcopy(self.baseline)
        current["workloads"]["tiny_new"] = copy.deepcopy(
            current["workloads"]["tiny_apsp"]
        )
        del current["workloads"]["tiny_apsp"]
        comparison = compare_reports(self.baseline, current)
        assert comparison.only_in_baseline == ("tiny_apsp",)
        assert comparison.only_in_current == ("tiny_new",)
        # Disjoint sets regress nothing — the gate only judges shared
        # workloads — but the rendering must surface the mismatch.
        assert "missing from current" in comparison.render()

    def test_mode_mismatch_rejected(self):
        quick = tiny_report(quick=True)
        with pytest.raises(ValueError, match="matching scale"):
            compare_reports(self.baseline, quick)


class TestCli:
    def run_bench(self, argv, capsys):
        code = main(["bench", "--quick", "--repeats", "1",
                     "--workloads", "bench_ssp", *argv])
        out, err = capsys.readouterr()
        return code, out, err

    def test_bench_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        code, out, _ = self.run_bench(["--out", str(out_path)], capsys)
        assert code == 0
        report = json.loads(out_path.read_text())
        assert report["schema"] == SCHEMA
        assert report["mode"] == "quick"
        assert list(report["workloads"]) == ["bench_ssp"]
        assert "bench_ssp" in out

    def test_bench_compare_gate(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        code, _, _ = self.run_bench(["--out", str(baseline_path)], capsys)
        assert code == 0
        # A single repeat of a millisecond workload is too noisy for a
        # meaningful self-comparison, so slacken the baseline's median;
        # the counters stay byte-identical, which is the real check.
        baseline = json.loads(baseline_path.read_text())
        baseline["workloads"]["bench_ssp"]["wall_s"]["median"] *= 10
        baseline_path.write_text(json.dumps(baseline))
        code, out, _ = self.run_bench(
            ["--out", str(tmp_path / "again.json"),
             "--compare", str(baseline_path)], capsys)
        assert code == 0
        assert "gate: OK" in out

    def test_bench_compare_failure_and_warn_only(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        self.run_bench(["--out", str(baseline_path)], capsys)
        baseline = json.loads(baseline_path.read_text())
        baseline["workloads"]["bench_ssp"]["wall_s"]["median"] = 1e-9
        baseline_path.write_text(json.dumps(baseline))
        code, out, _ = self.run_bench(
            ["--out", str(tmp_path / "slow.json"),
             "--compare", str(baseline_path)], capsys)
        assert code == 1
        assert "gate: FAIL" in out
        code, out, err = self.run_bench(
            ["--out", str(tmp_path / "slow2.json"),
             "--compare", str(baseline_path), "--warn-only"], capsys)
        assert code == 0
        assert "gate: FAIL" in out
        assert "warn-only" in err

    def test_bench_unknown_workload_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--workloads", "bench_nope"])

    def test_bench_missing_baseline_exits(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="--compare"):
            main(["bench", "--quick", "--repeats", "1",
                  "--workloads", "bench_ssp",
                  "--out", str(tmp_path / "r.json"),
                  "--compare", str(tmp_path / "absent.json")])


class TestCommittedBaseline:
    """The repo ships two baselines; keep them loadable and consistent."""

    RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"

    # ``bench_weighted`` postdates both committed baselines; the compare
    # gate tolerates workloads that exist only in the current report, so
    # the baselines stay byte-identical until the next full refresh.
    PRE_WEIGHTED = {"bench_weighted"}

    def test_ci_baseline_is_quick_mode(self):
        report = load_report(str(self.RESULTS / "baseline.json"))
        assert report["mode"] == "quick"
        assert set(report["workloads"]) == set(WORKLOADS) - self.PRE_WEIGHTED

    def test_dated_baseline_is_full_mode(self):
        report = load_report(str(self.RESULTS / "BENCH_2026-08-06.json"))
        assert report["mode"] == "full"
        assert set(report["workloads"]) == set(WORKLOADS) - self.PRE_WEIGHTED
