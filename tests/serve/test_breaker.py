"""Unit tests for the circuit-breaker state machine (injected clock)."""

from __future__ import annotations

import pytest

from repro.serve.breaker import BreakerBoard, BreakerOpen, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make(clock, threshold=3, reset_s=5.0):
    return CircuitBreaker(
        threshold=threshold, reset_s=reset_s, clock=clock
    )


def test_stays_closed_below_threshold(clock):
    breaker = make(clock)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"
    assert breaker.allow()
    assert breaker.retry_after_s() == 0.0


def test_success_resets_the_failure_streak(clock):
    breaker = make(clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"  # streak broken, never reached 3


def test_opens_at_threshold_and_rejects(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.opened_count == 1
    assert not breaker.allow()
    clock.advance(2.0)
    assert breaker.retry_after_s() == pytest.approx(3.0)
    assert not breaker.allow()


def test_half_open_admits_exactly_one_probe(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.state == "half-open"
    assert breaker.allow()        # the probe
    assert not breaker.allow()    # concurrent caller rejected
    assert breaker.state == "half-open"


def test_probe_success_closes(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()
    assert breaker.snapshot()["consecutive_failures"] == 0


def test_probe_failure_reopens_a_full_window(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.opened_count == 2
    assert breaker.retry_after_s() == pytest.approx(5.0)
    # ... and the *next* window's probe can still recover.
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed"


def test_board_isolates_keys_and_raises(clock):
    board = BreakerBoard(threshold=2, reset_s=5.0, clock=clock)
    board.record_failure("bad")
    board.record_failure("bad")
    with pytest.raises(BreakerOpen) as excinfo:
        board.check("bad")
    assert excinfo.value.key == "bad"
    assert excinfo.value.retry_after_s == pytest.approx(5.0)
    board.check("good")  # other families unaffected
    snap = board.snapshot()
    assert snap["bad"]["state"] == "open"
    assert snap["good"]["state"] == "closed"


def test_board_recovery_roundtrip(clock):
    board = BreakerBoard(threshold=1, reset_s=2.0, clock=clock)
    board.record_failure("k")
    with pytest.raises(BreakerOpen):
        board.check("k")
    clock.advance(2.0)
    board.check("k")  # half-open probe admitted
    board.record_success("k")
    board.check("k")  # closed again
    assert board.snapshot()["k"]["state"] == "closed"
