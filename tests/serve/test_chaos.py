"""Smoke tests for the serve-chaos harness (short, CI-friendly runs)."""

from __future__ import annotations

import json

import pytest

from repro.serve.chaos import ChaosOptions, run_chaos, write_artifact


def test_chaos_run_kill_one_worker(tmp_path):
    report = run_chaos(ChaosOptions(
        graph_n=16,
        clients=2,
        duration_s=3.0,
        workers=2,
        kills=1,
        kill_after_s=0.5,
        deadline_s=20.0,
        seed=7,
    ))
    assert report["schema"] == "repro-serve-chaos/1"
    assert report["dropped"] == 0
    assert report["requests"] > 0
    assert report["statuses"].get(200, 0) > 0
    checks = {check["name"]: check["ok"] for check in report["checks"]}
    assert checks["zero_dropped_queries"]
    assert checks["no_internal_errors"]
    assert checks["kills_performed"]
    assert checks["workers_respawned"]
    assert checks["readyz_flipped"]
    assert checks["full_recovery"]
    assert report["ok"], report["checks"]
    # The artifact round-trips as JSON.
    out = tmp_path / "chaos.json"
    write_artifact(report, str(out))
    assert json.loads(out.read_text())["ok"] is True


def test_chaos_run_with_crash_injection():
    report = run_chaos(ChaosOptions(
        graph_n=16,
        clients=2,
        duration_s=2.5,
        workers=2,
        kills=0,
        inject="crash",
        inject_jobs=2,
        inject_attempts=1,
        retries=2,
        deadline_s=20.0,
        seed=11,
    ))
    supervisor = report["server_stats"]["supervisor"]
    # The injected crashes were retried into successes: no 500s.
    assert report["ok"], report["checks"]
    assert supervisor["crashes"] >= 2
    assert supervisor["requeues"] >= 2
    assert report["statuses"].get(500, 0) == 0


@pytest.mark.slow
def test_chaos_run_long_with_kills_and_hangs():
    report = run_chaos(ChaosOptions(
        clients=4,
        duration_s=8.0,
        workers=2,
        kills=2,
        kill_after_s=1.0,
        kill_every_s=2.5,
        inject="crash",
        inject_jobs=3,
        retries=2,
        seed=3,
    ))
    assert report["ok"], report["checks"]
