"""DistanceService: correctness, tiers, persistence, validation."""

from __future__ import annotations

import pytest

from repro import protocols
from repro.graphs import analysis
from repro.graphs.specs import parse_graph
from repro.serve import DistanceService, QueryError


def test_distance_matches_bfs_and_warms_to_memory():
    service = DistanceService()
    graph = parse_graph("cycle:10")
    first = service.distance("cycle:10", 1, 6)
    assert first.value == analysis.bfs_distances(graph, 1)[6]
    assert first.tier == "computed"
    # Same row: memory.  Symmetric query: also memory (either row).
    assert service.distance("cycle:10", 1, 4).tier == "memory"
    assert service.distance("cycle:10", 4, 1).tier == "memory"
    snap = service.stats.snapshot()
    assert snap["cache"]["computed"] == 1
    assert snap["cache"]["memory"] == 2
    assert snap["protocol_runs"] == 1


def test_eccentricity_and_diameter_match_oracle():
    service = DistanceService()
    graph = parse_graph("grid:3x4")
    ecc = service.eccentricity("grid:3x4", 1)
    assert ecc.value == analysis.eccentricity(graph, 1)
    diam = service.diameter("grid:3x4")
    assert diam.value == analysis.diameter(graph)
    # The full matrix now answers everything from memory.
    assert service.diameter("grid:3x4").tier == "memory"
    assert service.distance("grid:3x4", 5, 9).tier == "memory"


def test_weighted_backend_matches_direct_run():
    params = {"max_weight": 3, "weight_seed": 1}
    service = DistanceService()
    graph = parse_graph("path:6")
    expected = protocols.run("weighted-apsp", graph, dict(params))
    got = service.distance("path:6", 1, 6,
                           protocol="weighted-apsp", params=params)
    assert got.value == expected.summary.distances[1][6]
    assert got.tier == "computed"
    # Different weight params are a different family (fresh run).
    other = service.distance("path:6", 1, 6, protocol="weighted-apsp",
                             params={"max_weight": 5, "weight_seed": 2})
    assert service.stats.snapshot()["protocol_runs"] == 2
    assert other.tier == "computed"


def test_run_cache_survives_service_restart(tmp_path):
    first = DistanceService(cache_dir=str(tmp_path))
    first.diameter("path:9")
    assert first.stats.snapshot()["protocol_runs"] == 1
    # A fresh service over the same cache dir answers from disk
    # without re-running any simulation.
    second = DistanceService(cache_dir=str(tmp_path))
    answer = second.diameter("path:9")
    assert answer.tier == "disk"
    assert answer.value == first.diameter("path:9").value
    assert second.stats.snapshot()["protocol_runs"] == 0


def test_point_rows_persist_per_source(tmp_path):
    first = DistanceService(cache_dir=str(tmp_path))
    first.distance("cycle:12", 3, 9)
    second = DistanceService(cache_dir=str(tmp_path))
    assert second.distance("cycle:12", 3, 9).tier == "disk"
    # A row never computed is still a cold miss.
    assert second.distance("cycle:12", 5, 6).tier == "computed"


@pytest.mark.parametrize("call", [
    lambda s: s.distance("cycle:10", 0, 3),
    lambda s: s.distance("cycle:10", 1, 99),
    lambda s: s.eccentricity("cycle:10", -1),
    lambda s: s.distance("nope:10", 1, 2),
    lambda s: s.distance("file:/does/not/exist.txt", 1, 2),
    lambda s: s.distance("cycle:10", 1, 2, protocol="girth"),
    lambda s: s.distance("cycle:10", 1, 2, params={"max_weight": 3}),
])
def test_bad_queries_raise_query_error(call):
    service = DistanceService()
    with pytest.raises(QueryError):
        call(service)


def test_obs_span_wraps_protocol_runs():
    from repro.obs import tracing

    service = DistanceService()
    with tracing() as tracer:
        service.distance("path:7", 1, 7)
    spans = [record for record in tracer.records
             if record.name == "serve_run"]
    assert spans, "expected a serve_run span around the simulation"
    assert spans[0].attrs["protocol"] == "ssp"
    # Repeats are cache hits: no new span.
    count = len(spans)
    with tracing() as tracer2:
        service.distance("path:7", 1, 7)
    assert not [r for r in tracer2.records if r.name == "serve_run"]
    assert count == 1
