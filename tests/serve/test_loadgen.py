"""Loadgen harness: artifact shape, determinism knobs, CLI gate."""

from __future__ import annotations

import json

from repro.serve import (
    LOADGEN_SCHEMA,
    DistanceService,
    LoadgenOptions,
    ServerThread,
    render_summary,
    run_loadgen,
    write_artifact,
)


def test_loadgen_artifact_against_live_server(tmp_path):
    service = DistanceService()
    with ServerThread(service) as handle:
        report = run_loadgen(LoadgenOptions(
            url=handle.url, graph="er:24:p=0.2:seed=1",
            clients=4, duration_s=0.8, warm=True, mode="mixed",
        ))
    assert report["schema"] == LOADGEN_SCHEMA
    assert report["requests"] > 0
    assert report["errors"] == 0
    assert report["qps"] > 0
    assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
    # Warmed run: the server answered (mostly) from cache.
    cache = report["server_stats"]["cache"]
    assert cache["hits"] > 0
    assert cache["hit_rate"] > 0.5
    # Artifact round-trips through disk.
    target = tmp_path / "sub" / "serve-bench.json"
    write_artifact(report, str(target))
    assert json.loads(target.read_text())["schema"] == LOADGEN_SCHEMA
    summary = render_summary(report)
    assert "qps:" in summary
    assert "server cache:" in summary


def test_cli_serve_bench_self_hosts_and_gates(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "artifact.json"
    code = main([
        "serve-bench", "path:12", "--clients", "2",
        "--duration", "0.5", "--out", str(out), "--min-qps", "10",
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == LOADGEN_SCHEMA
    assert report["qps"] >= 10
    assert "qps:" in capsys.readouterr().out


def test_cli_serve_bench_min_qps_failure(tmp_path, capsys):
    from repro.cli import main

    code = main([
        "serve-bench", "path:8", "--clients", "1",
        "--duration", "0.3", "--min-qps", "1000000",
    ])
    assert code == 1
    assert "below the" in capsys.readouterr().err
