"""MatrixCache: LRU eviction and RunCache rehydration."""

from __future__ import annotations

from repro.graphs import bfs_distances, path_graph
from repro.harness.cache import RunCache
from repro.serve.cache import MatrixCache
from repro.serve.matrix import QueryFamily


def _rows(n):
    graph = path_graph(n)
    return {u: bfs_distances(graph, u) for u in graph.nodes}


def test_store_rows_then_memory_hit():
    cache = MatrixCache()
    family = QueryFamily.make("path:6")
    cache.store_rows(family, 6, {2: _rows(6)[2]}, rounds=9)
    assert cache.load_row(family, 6, 2) == "memory"
    assert cache.load_row(family, 6, 3) is None
    assert cache.matrix(family, 6).rounds_spent == 9


def test_disk_rehydration_of_persisted_rows(tmp_path):
    run_cache = RunCache(tmp_path)
    family = QueryFamily.make("path:6")
    warm = MatrixCache(run_cache=run_cache)
    warm.store_rows(family, 6, {2: _rows(6)[2]}, rounds=9)
    # A fresh cache (fresh process) finds the row on disk.
    cold = MatrixCache(run_cache=run_cache)
    assert cold.load_row(family, 6, 2) == "disk"
    assert cold.load_row(family, 6, 2) == "memory"
    assert cold.matrix(family, 6).rows[2] == _rows(6)[2]
    assert cold.load_row(family, 6, 3) is None


def test_disk_rehydration_of_full_matrix(tmp_path):
    run_cache = RunCache(tmp_path)
    family = QueryFamily.make("path:5")
    warm = MatrixCache(run_cache=run_cache)
    warm.store_full(family, 5, _rows(5), rounds=12)
    cold = MatrixCache(run_cache=run_cache)
    # A row lookup is satisfied by the persisted full matrix...
    assert cold.load_row(family, 5, 4) == "disk"
    matrix = cold.matrix(family, 5)
    assert matrix.complete and matrix.rounds_spent == 12
    # ...and a second cache rehydrates it via the full-matrix path.
    colder = MatrixCache(run_cache=run_cache)
    assert colder.load_full(family, 5) == "disk"
    assert colder.load_full(family, 5) == "memory"


def test_lru_eviction_respects_byte_budget(tmp_path):
    run_cache = RunCache(tmp_path)
    probe = MatrixCache()
    probe.store_full(QueryFamily.make("probe"), 8, _rows(8), rounds=1)
    budget = probe.size_bytes + 1   # room for ~one matrix
    cache = MatrixCache(max_bytes=budget, run_cache=run_cache)
    families = [QueryFamily.make(f"path:8:seed={i}") for i in range(4)]
    for family in families:
        cache.store_full(family, 8, _rows(8), rounds=1)
    assert cache.evictions >= 3
    assert cache.size_bytes <= budget
    # The most recent family survived; an evicted one rehydrates
    # from disk instead of reporting a cold miss.
    assert cache.peek(families[-1]) is not None
    assert cache.load_full(families[0], 8) == "disk"


def test_touched_family_never_evicted():
    cache = MatrixCache(max_bytes=1)   # nothing fits
    family = QueryFamily.make("path:8")
    matrix = cache.store_full(family, 8, _rows(8), rounds=1)
    # Over budget, but the only (and just-touched) matrix stays.
    assert cache.peek(family) is matrix
    assert len(cache) == 1
