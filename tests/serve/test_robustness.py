"""HTTP-level robustness tests: the ISSUE 7 failure-mode contract.

Covers the hardened request parser (malformed Content-Length, body
caps, stalled bodies), the 400-never-500 guarantee for bad ``/graphs``
payloads, admission shedding, readiness, breaker trips with half-open
recovery, and the degraded 2-vs-4 ``/diameter`` answer.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import ServerThread


def get_status(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=60) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def raw_roundtrip(port, data, timeout=30.0):
    """Send raw bytes; return everything the server sends back."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    try:
        sock.sendall(data)
        out = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return out
            out += chunk
    finally:
        sock.close()


@pytest.fixture(scope="module")
def server():
    with ServerThread(
        graphs=("cycle:12",),
        max_body_bytes=2048,
        read_timeout_s=0.5,
    ) as handle:
        yield handle


# -- satellite 1: malformed Content-Length must be a 400, not a crash --


def test_malformed_content_length_is_400(server):
    response = raw_roundtrip(
        server.port,
        b"POST /graphs HTTP/1.1\r\nHost: t\r\n"
        b"Content-Length: banana\r\n\r\n",
    )
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"invalid Content-Length" in response
    # The server is still healthy afterwards.
    assert get_status(server.url, "/healthz") == (200, {"ok": True})


def test_negative_content_length_is_400(server):
    response = raw_roundtrip(
        server.port,
        b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
        b"Content-Length: -5\r\n\r\n",
    )
    assert response.startswith(b"HTTP/1.1 400 ")


# -- satellite 2: request bodies are capped (413) ----------------------


def test_oversize_body_is_413_without_buffering(server):
    response = raw_roundtrip(
        server.port,
        b"POST /graphs HTTP/1.1\r\nHost: t\r\n"
        b"Content-Length: 99999999\r\n\r\n",
    )
    assert response.startswith(b"HTTP/1.1 413 ")
    assert b"exceeds" in response


def test_body_at_the_cap_is_accepted(server):
    body = json.dumps({"spec": "path:5"}).encode()
    response = raw_roundtrip(
        server.port,
        b"POST /graphs HTTP/1.1\r\nHost: t\r\n"
        b"Content-Length: %d\r\nConnection: close\r\n\r\n" % len(body)
        + body,
    )
    assert response.startswith(b"HTTP/1.1 200 ")


# -- stalled body: dropped on timeout, no in-flight leak ---------------


def test_stalled_body_times_out_without_leaking_inflight(server):
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=30)
    try:
        sock.sendall(
            b"POST /graphs HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 10\r\n\r\n"
        )  # ... and never send the body
        started = time.monotonic()
        assert sock.recv(65536) == b""  # closed, no response
        assert time.monotonic() - started < 5.0
    finally:
        sock.close()
    # The aborted request did not leak the in-flight counter: the
    # admission section sees only the /stats request itself.
    _status, stats = get_status(server.url, "/stats")
    assert stats["admission"]["in_flight"] == 1
    assert server.server._active_requests <= 1
    assert stats["admission"]["protocol_errors"] >= 1


# -- satellite 3: bad /graphs payloads are 400, never 500 --------------


def post_graphs(url, payload):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url + "/graphs", data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def test_graphs_post_missing_file_is_400(server):
    status, payload = post_graphs(
        server.url, {"spec": "file:/no/such/edgelist.txt"}
    )
    assert status == 400
    assert "no/such/edgelist.txt" in payload["error"]


def test_graphs_post_unreadable_file_is_400(server, tmp_path):
    bad = tmp_path / "bad.txt"
    bad.write_text("1 2\nthis is not an edge list\n")
    status, payload = post_graphs(server.url, {"spec": f"file:{bad}"})
    assert status == 400
    assert payload["error"]


def test_graphs_post_bad_spec_token_is_400(server):
    status, payload = post_graphs(server.url, {"spec": "er:banana"})
    assert status == 400
    assert "malformed graph spec" in payload["error"]
    status, payload = post_graphs(server.url, {"spec": 7})
    assert status == 400
    status, _payload = post_graphs(server.url, {"wrong": "shape"})
    assert status == 400


def test_graphs_post_invalid_json_is_400(server):
    body = b"{not json"
    response = raw_roundtrip(
        server.port,
        b"POST /graphs HTTP/1.1\r\nHost: t\r\n"
        b"Content-Length: %d\r\nConnection: close\r\n\r\n" % len(body)
        + body,
    )
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"invalid JSON" in response


# -- admission control: in-flight cap sheds with 429 -------------------


def test_inflight_cap_sheds_with_retry_after():
    with ServerThread(
        workers=1,
        max_inflight=1,
        tick_s=0.001,
        chaos={"mode": "hang", "seconds": 1.0,
               "kinds": ["rows"], "jobs": 1},
    ) as handle:
        results = {}

        def slow_query():
            results["slow"] = get_status(
                handle.url,
                "/distance?graph=er:12:p=0.3:seed=1&source=1&target=2",
            )

        thread = threading.Thread(target=slow_query)
        thread.start()
        time.sleep(0.3)  # the hanging compute now holds the only slot
        # Health endpoints are exempt from admission control.
        assert get_status(handle.url, "/healthz")[0] == 200
        assert get_status(handle.url, "/readyz")[0] == 200
        # A query is shed with 429 + Retry-After.
        request = urllib.request.Request(
            handle.url
            + "/distance?graph=er:12:p=0.3:seed=1&source=1&target=3"
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                status, headers = response.status, response.headers
        except urllib.error.HTTPError as exc:
            status, headers = exc.code, exc.headers
            exc.read()
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        thread.join(timeout=60)
        assert results["slow"][0] == 200  # the slow query still answered
        _s, stats = get_status(handle.url, "/stats")
        assert stats["admission"]["shed"] >= 1


# -- degraded /diameter: deadline miss falls back to 2-vs-4 ------------


def test_diameter_deadline_degrades_to_two_vs_four():
    with ServerThread(
        workers=1,
        deadline_s=0.4,
        retries=0,
        tick_s=0.001,
        chaos={"mode": "hang", "seconds": 30.0,
               "kinds": ["full"], "jobs": 1},
    ) as handle:
        started = time.monotonic()
        status, payload = get_status(
            handle.url, "/diameter?graph=diameter4:24:seed=1"
        )
        elapsed = time.monotonic() - started
        assert status == 200
        assert payload["degraded"] is True
        assert payload["tier"] == "degraded"
        assert payload["approximation"] == "two-vs-four"
        assert payload["approximation_factor"] == 2
        assert payload["diameter"] == 4  # exact on the promise family
        assert elapsed < 30.0  # answered within a sane budget
        _s, stats = get_status(handle.url, "/stats")
        assert stats["admission"]["degraded_answers"] == 1
        assert stats["supervisor"]["deadline_misses"] == 1
        # The exact answer is still obtainable once the hostility is
        # spent (the chaos budget was one job).
        status, payload = get_status(
            handle.url, "/diameter?graph=diameter4:24:seed=1"
        )
        assert status == 200
        assert payload["degraded"] is False
        assert payload["diameter"] == 4


def test_eccentricity_deadline_is_503_with_retry_after():
    with ServerThread(
        workers=1,
        deadline_s=0.3,
        retries=0,
        tick_s=0.001,
        chaos={"mode": "hang", "seconds": 30.0,
               "kinds": ["rows"], "jobs": 1},
    ) as handle:
        request = urllib.request.Request(
            handle.url + "/eccentricity?graph=cycle:12&node=1"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=60)
        assert excinfo.value.code == 503
        assert "Retry-After" in excinfo.value.headers
        excinfo.value.read()


# -- circuit breaker: trip on repeated failures, recover half-open -----


def test_breaker_trips_and_recovers_over_http():
    with ServerThread(
        workers=1,
        retries=0,
        tick_s=0.001,
        breaker_threshold=2,
        breaker_reset_s=0.3,
        chaos={"mode": "error", "kinds": ["rows"], "jobs": 2},
    ) as handle:
        path = "/distance?graph=cycle:12&source=1&target={}"
        # Two poisoned computes → two 500s → the breaker opens.
        assert get_status(handle.url, path.format(2))[0] == 500
        assert get_status(handle.url, path.format(3))[0] == 500
        status, payload = get_status(handle.url, path.format(4))
        assert status == 503
        assert "circuit breaker" in payload["error"]
        _s, stats = get_status(handle.url, "/stats")
        key = "cycle:12|apsp"
        assert stats["breakers"][key]["state"] == "open"
        assert stats["breakers"][key]["opened_count"] == 1
        # Liveness and readiness are unaffected by a tripped family.
        assert get_status(handle.url, "/readyz")[0] == 200
        # After the reset window the half-open probe runs for real
        # (the chaos budget is spent) and closes the breaker.
        time.sleep(0.4)
        status, payload = get_status(handle.url, path.format(5))
        assert status == 200
        assert payload["distance"] == 4
        _s, stats = get_status(handle.url, "/stats")
        assert stats["breakers"][key]["state"] == "closed"


def test_readyz_reflects_killed_worker():
    import os
    import signal as _signal

    with ServerThread(workers=2, tick_s=0.001) as handle:
        status, payload = get_status(handle.url, "/readyz")
        assert status == 200
        assert payload["workers"] == {"alive": 2, "configured": 2}
        victim = handle.server.supervisor.worker_pids()[0]
        os.kill(victim, _signal.SIGKILL)
        # Not-ready while the complement is short or settling ...
        saw_not_ready = False
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            status, payload = get_status(handle.url, "/readyz")
            if status == 503:
                saw_not_ready = True
                assert payload["ready"] is False
            elif saw_not_ready:
                break
            time.sleep(0.01)
        assert saw_not_ready
        # ... and ready again once the heartbeat respawned it.
        status, payload = get_status(handle.url, "/readyz")
        assert status == 200
        assert payload["workers"]["alive"] == 2
        _s, stats = get_status(handle.url, "/stats")
        assert stats["supervisor"]["respawns"] >= 1
