"""Graceful-shutdown regression tests (real subprocess, real signals)."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import urllib.request

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO, "src")


def start_server(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--graph", "cycle:16",
         "--stats-out", str(tmp_path / "stats.json"), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, text=True,
    )
    ready = proc.stdout.readline()
    assert "repro-serve: ready on http://" in ready, ready
    port = int(ready.split(":")[-1].split(" ")[0].split("(")[0])
    return proc, port


@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
def test_signal_drains_and_flushes_stats(tmp_path, signum):
    proc, port = start_server(tmp_path)
    try:
        url = f"http://127.0.0.1:{port}"
        with urllib.request.urlopen(
            url + "/distance?graph=cycle:16&source=1&target=9",
            timeout=30,
        ) as response:
            first = json.loads(response.read().decode())
        assert first["distance"] == 8
        with urllib.request.urlopen(
            url + "/distance?graph=cycle:16&source=1&target=5",
            timeout=30,
        ) as response:
            assert json.loads(response.read().decode())["tier"] == "memory"
        proc.send_signal(signum)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, stderr
    assert "repro-serve: drained" in stdout
    assert "stats flushed" in stdout
    # The stats snapshot was written on the way out.
    stats = json.loads((tmp_path / "stats.json").read_text())
    assert stats["cache"]["lookups"] >= 2
    assert stats["cache"]["memory"] >= 1
    assert stats["endpoints"]["/distance"]["count"] == 2


def test_ready_line_parses_ephemeral_port(tmp_path):
    proc, port = start_server(tmp_path)
    try:
        assert port > 0
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=30
        ) as response:
            assert json.loads(response.read().decode()) == {"ok": True}
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0
