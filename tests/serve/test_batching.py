"""Batching correctness: coalesced S-SP vs. per-query runs.

The satellite contract: concurrent queries with distinct sources must
return **byte-identical** distances to per-query runs, and the batch
must record **strictly fewer** total rounds than the per-query sum for
``|S| >= 2`` — that is the ``|S| + D`` versus ``|S| * (D + O(1))``
economics of Theorem 3, measured on real runs rather than estimated.
"""

from __future__ import annotations

import asyncio

from repro.graphs import bfs_distances
from repro.graphs.specs import parse_graph
from repro.harness.hashing import canonical_json
from repro.serve import DistanceService, SourceBatcher

GRAPH = "er:24:p=0.15:seed=3"


def batch_service(sources, *, tick_s=0.05, max_batch=64):
    """One service where ``sources`` arrived concurrently."""
    service = DistanceService()
    batcher = SourceBatcher(service, tick_s=tick_s, max_batch=max_batch)
    family = service.family_for(GRAPH)

    async def go():
        await asyncio.gather(
            *(batcher.row(family, source) for source in sources)
        )
        await batcher.drain()

    asyncio.run(go())
    batcher.close()
    return service, family


def singleton_services(sources):
    """One fresh service per source, each running its own S-SP."""
    out = []
    for source in sources:
        service = DistanceService()
        family = service.family_for(GRAPH)
        service.compute_rows(family, [source])
        out.append((service, family))
    return out


def test_concurrent_queries_byte_identical_to_per_query_runs():
    sources = [1, 4, 7, 13]
    batched, family = batch_service(sources)
    matrix = batched.cache.peek(family)
    graph = parse_graph(GRAPH)
    for (single, single_family), source in zip(
        singleton_services(sources), sources
    ):
        single_matrix = single.cache.peek(single_family)
        assert canonical_json(matrix.row_record(source)) == \
            canonical_json(single_matrix.row_record(source))
        # And both match the sequential BFS oracle.
        assert matrix.rows[source] == bfs_distances(graph, source)


def test_batch_spends_strictly_fewer_rounds_than_per_query_sum():
    sources = [2, 5, 9, 14, 20]
    batched, family = batch_service(sources)
    snap = batched.stats.snapshot()["batches"]
    assert snap["count"] == 1, "expected one coalesced run"
    assert snap["max_size"] == len(sources)
    per_query_rounds = sum(
        single.stats.snapshot()["batches"]["rounds"]
        for single, _ in singleton_services(sources)
    )
    assert snap["rounds"] < per_query_rounds
    # The /stats estimate is a lower bound on the measured saving's
    # direction: it must claim a saving too.
    assert snap["rounds_saved_estimate"] > 0


def test_eight_or_more_concurrent_sources_share_one_run():
    sources = list(range(1, 11))        # 10 distinct sources
    batched, family = batch_service(sources)
    snap = batched.stats.snapshot()
    assert snap["batches"]["count"] == 1
    assert snap["batches"]["max_size"] >= 8
    assert snap["protocol_runs"] == 1
    graph = parse_graph(GRAPH)
    matrix = batched.cache.peek(family)
    for source in sources:
        assert matrix.rows[source] == bfs_distances(graph, source)


def test_duplicate_sources_share_one_future():
    sources = [3, 3, 3, 8]
    batched, _family = batch_service(sources)
    snap = batched.stats.snapshot()["batches"]
    assert snap["count"] == 1
    assert snap["sources"] == 2          # deduplicated source set


def test_max_batch_splits_oversize_windows():
    sources = list(range(1, 9))
    batched, _family = batch_service(sources, max_batch=3)
    snap = batched.stats.snapshot()["batches"]
    assert snap["count"] == 3            # ceil(8 / 3)
    assert snap["max_size"] <= 3
    assert snap["sources"] == 8


def test_batch_failure_propagates_to_every_waiter():
    service = DistanceService()
    batcher = SourceBatcher(service, tick_s=0.02)
    family = service.family_for("file:/missing/graph.txt")

    async def go():
        results = await asyncio.gather(
            batcher.row(family, 1), batcher.row(family, 2),
            return_exceptions=True,
        )
        await batcher.drain()
        return results

    results = asyncio.run(go())
    batcher.close()
    assert len(results) == 2
    assert all(isinstance(r, Exception) for r in results)
