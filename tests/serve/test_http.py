"""End-to-end HTTP tests against a live server thread."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import protocols
from repro.graphs import analysis
from repro.graphs.specs import parse_graph
from repro.serve import DistanceService, ServerThread


def get(url, path):
    with urllib.request.urlopen(url + path, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def get_status(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


@pytest.fixture(scope="module")
def server():
    with ServerThread(graphs=("cycle:12",)) as handle:
        yield handle


def test_healthz_and_graphs(server):
    assert get(server.url, "/healthz") == {"ok": True}
    graphs = get(server.url, "/graphs")["graphs"]
    assert {"spec": "cycle:12", "n": 12, "m": 12} in graphs


def test_post_graphs_preloads(server):
    body = json.dumps({"spec": "path:7"}).encode()
    request = urllib.request.Request(
        server.url + "/graphs", data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        payload = json.loads(response.read().decode())
    assert payload == {"spec": "path:7", "n": 7, "m": 6}


def test_distance_e2e_apsp_with_cache_hit(server):
    graph = parse_graph("cycle:12")
    expected = analysis.bfs_distances(graph, 2)[9]
    first = get(server.url, "/distance?graph=cycle:12&source=2&target=9")
    assert first["distance"] == expected
    assert first["tier"] == "computed"
    again = get(server.url, "/distance?graph=cycle:12&source=2&target=9")
    assert again["distance"] == expected
    assert again["tier"] == "memory"
    # The repeat shows up as a cache hit in /stats.
    stats = get(server.url, "/stats")
    assert stats["cache"]["memory"] >= 1
    assert stats["cache"]["hits"] >= 1
    assert stats["endpoints"]["/distance"]["count"] >= 2
    assert stats["endpoints"]["/distance"]["errors"] == 0


def test_distance_e2e_weighted_apsp(server):
    graph = parse_graph("cycle:12")
    expected = protocols.run(
        "weighted-apsp", graph, {"max_weight": 3, "weight_seed": 1}
    ).summary.distances[1][7]
    path = ("/distance?graph=cycle:12&source=1&target=7"
            "&protocol=weighted-apsp&max_weight=3&weight_seed=1")
    first = get(server.url, path)
    assert first["distance"] == expected
    assert first["tier"] == "computed"
    assert get(server.url, path)["tier"] == "memory"


def test_eccentricity_and_diameter_e2e(server):
    graph = parse_graph("cycle:12")
    ecc = get(server.url, "/eccentricity?graph=cycle:12&node=5")
    assert ecc["eccentricity"] == analysis.eccentricity(graph, 5)
    diam = get(server.url, "/diameter?graph=cycle:12")
    assert diam["diameter"] == analysis.diameter(graph)
    assert get(server.url, "/diameter?graph=cycle:12")["tier"] == "memory"


def test_error_statuses(server):
    for path, want in [
        ("/distance?graph=cycle:12&source=1", 400),     # missing target
        ("/distance?graph=cycle:12&source=1&target=99", 400),
        ("/distance?graph=cycle:12&source=x&target=2", 400),
        ("/distance?graph=bogus:3&source=1&target=2", 400),
        ("/distance?graph=cycle:12&source=1&target=2&protocol=nope", 400),
        ("/nope", 404),
    ]:
        status, payload = get_status(server.url, path)
        assert status == want, path
        assert "error" in payload


def test_batched_server_side_coalescing():
    """Concurrent cold HTTP queries coalesce into few S-SP runs."""
    import concurrent.futures

    service = DistanceService()
    with ServerThread(service, graphs=("er:32:p=0.12:seed=5",),
                      tick_s=0.05) as handle:
        paths = [
            f"/distance?graph=er:32:p=0.12:seed=5&source={s}&target=1"
            for s in range(2, 12)
        ]
        with concurrent.futures.ThreadPoolExecutor(10) as pool:
            results = list(pool.map(
                lambda p: get(handle.url, p), paths
            ))
        graph = parse_graph("er:32:p=0.12:seed=5")
        for path, result in zip(paths, results):
            source = int(path.split("source=")[1].split("&")[0])
            assert result["distance"] == \
                analysis.bfs_distances(graph, source)[1]
        snap = service.stats.snapshot()["batches"]
        assert snap["sources"] == 10
        # Coalescing happened: far fewer runs than queries.
        assert snap["count"] < 10
        assert snap["max_size"] >= 2
