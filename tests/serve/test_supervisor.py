"""Unit tests for the supervised worker pool (repro.serve.supervisor).

These drive the Supervisor directly on a private event loop — no HTTP
— so each failure mode (crash, hang, deterministic error, queue
saturation, mid-batch kill) is pinned at the layer that owns it.
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.graphs import analysis
from repro.graphs.specs import parse_graph
from repro.serve import DistanceService
from repro.serve.supervisor import (
    ComputeFailed,
    DeadlineExceeded,
    PoolSaturated,
    Supervisor,
    SupervisorError,
)

SPEC = "er:14:p=0.3:seed=3"


def run(coro):
    return asyncio.run(coro)


async def _with_pool(body, **kwargs):
    service = DistanceService()
    kwargs.setdefault("workers", 1)
    pool = Supervisor(service, **kwargs)
    await pool.start()
    try:
        return await body(service, pool)
    finally:
        await pool.close()


def expected_row(spec, source):
    return analysis.bfs_distances(parse_graph(spec), source)


def test_rows_compute_and_merge_into_cache():
    async def body(service, pool):
        family = service.family_for(SPEC)
        await pool.rows(family, [2, 5])
        matrix = service.matrix(family)
        want = expected_row(SPEC, 2)
        assert matrix.distance(2, 7) == want[7]
        assert matrix.has_row(5)
        snap = pool.snapshot()
        assert snap["completed"] == 1
        assert snap["failed"] == 0
        # The batch economics were recorded as one 2-source run.
        assert service.stats.snapshot()["batches"]["max_size"] == 2

    run(_with_pool(body))


def test_full_and_approx_diameter():
    async def body(service, pool):
        family = service.family_for("diameter4:24:seed=1")
        await pool.full(family)
        exact = service.matrix(family).diameter()
        assert exact == 4
        verdict = await pool.approx_diameter(family)
        assert verdict == 4

    run(_with_pool(body))


def test_crash_is_retried_and_succeeds():
    async def body(service, pool):
        family = service.family_for(SPEC)
        await pool.rows(family, [1])
        assert (
            service.matrix(family).distance(1, 4)
            == expected_row(SPEC, 1)[4]
        )
        snap = pool.snapshot()
        assert snap["crashes"] == 1
        assert snap["requeues"] == 1
        assert snap["respawns"] == 1
        assert snap["completed"] == 1
        assert snap["failed"] == 0

    run(_with_pool(
        body,
        retries=1,
        chaos={"mode": "crash", "kinds": ["rows"],
               "jobs": 1, "attempts": 1},
    ))


def test_crash_budget_spent_fails_the_job():
    async def body(service, pool):
        family = service.family_for(SPEC)
        with pytest.raises(ComputeFailed):
            await pool.rows(family, [1])
        snap = pool.snapshot()
        assert snap["failed"] == 1
        assert snap["requeues"] == 1  # retried once, then gave up

    run(_with_pool(
        body,
        retries=1,
        chaos={"mode": "crash", "kinds": ["rows"], "jobs": 2},
    ))


def test_deterministic_error_is_not_retried():
    async def body(service, pool):
        family = service.family_for(SPEC)
        with pytest.raises(ComputeFailed) as excinfo:
            await pool.rows(family, [1])
        assert "chaos" in str(excinfo.value)
        snap = pool.snapshot()
        assert snap["requeues"] == 0
        assert snap["respawns"] == 0
        assert snap["failed"] == 1
        # The worker survived the exception and still answers.
        await pool.rows(family, [2])
        assert snap["crashes"] == 0

    run(_with_pool(
        body,
        retries=3,
        chaos={"mode": "error", "kinds": ["rows"], "jobs": 1},
    ))


def test_hang_hits_deadline_and_respawns_worker():
    async def body(service, pool):
        family = service.family_for(SPEC)
        with pytest.raises(DeadlineExceeded):
            await pool.rows(family, [1])
        snap = pool.snapshot()
        assert snap["deadline_misses"] == 1
        assert snap["respawns"] == 1  # the wedged worker was killed
        assert snap["requeues"] == 0  # deadlines are not retried
        # The respawned worker serves the next job.
        await pool.rows(family, [2])
        assert pool.snapshot()["completed"] == 1

    run(_with_pool(
        body,
        deadline_s=0.3,
        retries=1,
        chaos={"mode": "hang", "seconds": 30.0,
               "kinds": ["rows"], "jobs": 1},
    ))


def test_worker_killed_mid_batch_requeues_exactly_once():
    async def body(service, pool):
        family = service.family_for(SPEC)
        task = asyncio.ensure_future(pool.rows(family, [3, 6]))
        # Wait until the worker is busy carrying the batch, then
        # SIGKILL it from outside — the supervisor must requeue the
        # whole batch exactly once and answer from the retry.
        for _ in range(200):
            await asyncio.sleep(0.01)
            pids = pool.worker_pids()
            if pids and any(
                handle.busy for handle in pool._handles.values()
            ):
                break
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
        await task
        want = expected_row(SPEC, 3)
        assert service.matrix(family).distance(3, 9) == want[9]
        assert service.matrix(family).has_row(6)
        snap = pool.snapshot()
        assert snap["requeues"] == 1
        assert snap["crashes"] == 1
        assert snap["completed"] == 1

    run(_with_pool(
        body,
        retries=2,
        # First attempt hangs (short of the deadline) so the external
        # SIGKILL reliably lands mid-job; the retry runs clean.
        chaos={"mode": "hang", "seconds": 30.0, "kinds": ["rows"],
               "jobs": 1, "attempts": 1},
        deadline_s=60.0,
    ))


def test_queue_saturation_sheds_at_submit():
    async def body(service, pool):
        family = service.family_for(SPEC)
        first = asyncio.ensure_future(pool.rows(family, [1]))
        await asyncio.sleep(0.05)  # first job occupies the queue slot
        with pytest.raises(PoolSaturated) as excinfo:
            await pool.rows(family, [2])
        assert excinfo.value.retry_after_s > 0
        assert pool.snapshot()["shed"] == 1
        first.cancel()
        await asyncio.gather(first, return_exceptions=True)

    run(_with_pool(
        body,
        queue_depth=1,
        deadline_s=30.0,
        chaos={"mode": "hang", "seconds": 30.0,
               "kinds": ["rows"], "jobs": 1},
    ))


def test_deadline_spent_waiting_in_queue():
    async def body(service, pool):
        family = service.family_for(SPEC)
        blocker = asyncio.ensure_future(pool.rows(family, [1]))
        await asyncio.sleep(0.05)
        with pytest.raises(DeadlineExceeded) as excinfo:
            await pool.submit(
                {"kind": "rows", "family": family.payload(),
                 "sources": [2]},
                deadline_s=0.1,
            )
        assert "waiting in the queue" in str(excinfo.value)
        blocker.cancel()
        await asyncio.gather(blocker, return_exceptions=True)

    run(_with_pool(
        body,
        deadline_s=2.0,
        chaos={"mode": "hang", "seconds": 1.0,
               "kinds": ["rows"], "jobs": 1},
    ))


def test_idle_worker_respawned_by_heartbeat():
    async def body(service, pool):
        pid = pool.worker_pids()[0]
        os.kill(pid, signal.SIGKILL)
        for _ in range(100):
            await asyncio.sleep(0.02)
            if pool.live_workers() == 1 and pool.worker_pids() != [pid]:
                break
        assert pool.live_workers() == 1
        snap = pool.snapshot()
        assert snap["respawns"] == 1
        assert snap["crashes"] == 1
        assert pool.respawn_age_s() is not None
        # The replacement actually works.
        family = service.family_for(SPEC)
        await pool.rows(family, [1])

    run(_with_pool(body, heartbeat_s=0.05))


def test_submit_after_close_raises():
    async def main():
        service = DistanceService()
        pool = Supervisor(service, workers=1)
        await pool.start()
        await pool.close()
        with pytest.raises(SupervisorError):
            await pool.submit({
                "kind": "rows",
                "family": service.family_for(SPEC).payload(),
                "sources": [1],
            })

    run(main())
