"""DistanceMatrix and QueryFamily unit tests."""

from __future__ import annotations

import pytest

from repro import protocols
from repro.graphs import bfs_distances, cycle_graph, path_graph
from repro.harness.hashing import canonical_json
from repro.serve.matrix import (
    DistanceMatrix,
    QueryFamily,
    row_from_record,
    rows_from_matrix_record,
    rows_from_ssp_summary,
)


def test_family_make_normalizes_params():
    a = QueryFamily.make("path:8", "weighted-apsp",
                         {"max_weight": 3, "weight_seed": 1})
    b = QueryFamily.make("path:8", "weighted-apsp",
                         {"weight_seed": 1, "max_weight": 3})
    assert a == b
    assert a.row_key(2) == b.row_key(2)
    assert a.matrix_key() == b.matrix_key()


def test_family_keys_distinguish_every_axis():
    base = QueryFamily.make("path:8")
    variants = [
        QueryFamily.make("path:9"),
        QueryFamily.make("path:8", "weighted-apsp"),
        QueryFamily.make("path:8", seed=1),
        QueryFamily.make("path:8", policy="lenient"),
    ]
    keys = {base.matrix_key()}
    for other in variants:
        keys.add(other.matrix_key())
    assert len(keys) == 1 + len(variants)
    # Row keys separate per source too.
    assert base.row_key(1) != base.row_key(2)
    assert base.row_key(1) != base.matrix_key()


def test_matrix_symmetric_point_lookup():
    family = QueryFamily.make("path:5")
    matrix = DistanceMatrix(family=family, n=5)
    matrix.add_row(2, bfs_distances(path_graph(5), 2))
    # Either endpoint's row answers the query.
    assert matrix.distance(2, 5) == 3
    assert matrix.distance(5, 2) == 3
    assert matrix.distance(1, 4) is None
    assert matrix.has_row(2) and not matrix.has_row(5)


def test_matrix_eccentricity_and_diameter():
    graph = cycle_graph(8)
    family = QueryFamily.make("cycle:8")
    matrix = DistanceMatrix(family=family, n=8)
    matrix.add_row(1, bfs_distances(graph, 1))
    assert matrix.eccentricity(1) == 4
    assert matrix.eccentricity(2) is None
    assert matrix.diameter() is None          # incomplete
    for node in range(2, 9):
        matrix.add_row(node, bfs_distances(graph, node))
    assert matrix.complete
    assert matrix.diameter() == 4


def test_add_row_is_idempotent_and_tracks_bytes():
    family = QueryFamily.make("path:4")
    matrix = DistanceMatrix(family=family, n=4)
    row = bfs_distances(path_graph(4), 1)
    matrix.add_row(1, row)
    size = matrix.size_bytes
    assert size > 0
    matrix.add_row(1, {})                      # duplicate: ignored
    assert matrix.rows[1] == row
    assert matrix.size_bytes == size


def test_records_round_trip_byte_identically():
    graph = path_graph(6)
    family = QueryFamily.make("path:6")
    matrix = DistanceMatrix(family=family, n=6)
    for node in graph.nodes:
        matrix.add_row(node, bfs_distances(graph, node))
    record = matrix.row_record(3)
    assert row_from_record(record) == matrix.rows[3]
    full = matrix.full_record()
    assert rows_from_matrix_record(full) == matrix.rows
    # Canonical JSON of the same content is stable (cacheable bytes).
    again = DistanceMatrix(family=family, n=6)
    again.adopt_full(rows_from_matrix_record(full), full["rounds"])
    assert canonical_json(again.full_record()) == canonical_json(full)


@pytest.mark.parametrize("sources", [[1], [2, 5], [1, 3, 4, 7]])
def test_ssp_pivot_matches_bfs(sources):
    graph = cycle_graph(9)
    outcome = protocols.run("ssp", graph, {"sources": sources})
    rows = rows_from_ssp_summary(outcome.summary, sources)
    assert sorted(rows) == sorted(sources)
    for source in sources:
        assert rows[source] == bfs_distances(graph, source)
