"""Tests for the experiments package: every Table 1 experiment passes
its own checks at quick scale and produces well-formed output."""

import pytest

from repro import experiments

ALL_IDS = experiments.available()


def test_registry_covers_experiments_md():
    expected = {
        "e1", "e2", "e3", "e4", "e5", "e6", "e6b", "e7", "e8",
        "e9a", "e9b", "e10", "e11a", "e11b", "e12", "e13", "e14",
        "e15", "e16", "e17",
    }
    assert set(ALL_IDS) == expected


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_experiment_passes_quick_scale(exp_id):
    result = experiments.run(exp_id, scale="quick")
    assert result.passed, (exp_id, result.failed_checks())
    assert result.rows, exp_id
    assert result.notes, exp_id
    assert result.checks, exp_id


def test_render_contains_table_and_status():
    result = experiments.run("e13", scale="quick")
    text = result.render()
    assert text.startswith("== E13")
    assert "checks: PASS" in text
    assert "note:" in text


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        experiments.run("e99")


def test_unknown_scale_rejected():
    with pytest.raises(ValueError):
        experiments.run("e1", scale="huge")


def test_failed_check_reported():
    result = experiments.ExperimentResult(
        exp_id="demo", title="t", headers=["a"]
    )
    result.require("good", True)
    result.require("bad", False)
    result.require("good", True)  # sticky semantics
    assert not result.passed
    assert result.failed_checks() == ["bad"]
    assert "FAIL (bad)" in result.render()


def test_write_report(tmp_path):
    results = [experiments.run("e13", scale="quick")]
    target = tmp_path / "report.md"
    experiments.write_report(results, target)
    text = target.read_text(encoding="utf-8")
    assert text.startswith("# Table 1 regeneration report")
    assert "## E13" in text
    assert "1/1 experiments passed" in text
    assert "**PASS**" in text


def test_cli_experiment_output_flag(tmp_path, capsys):
    from repro.cli import main

    target = tmp_path / "out.md"
    assert main(["experiment", "e13", "--output", str(target)]) == 0
    capsys.readouterr()
    assert target.exists()


def test_cli_experiment_command(capsys):
    from repro.cli import main

    assert main(["experiment", "e13", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "E13" in out and "checks: PASS" in out

    assert main(["experiment", "list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out.split()
