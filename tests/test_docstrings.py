"""Documentation quality gate: every module, public class and public
function in the package carries a docstring.  (Deliverable (e): doc
comments on every public item.)"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their source
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__ for module in iter_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not undocumented, undocumented


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_public_methods_documented():
    """Public methods of public classes need docstrings too.

    ``inspect.getdoc`` follows the MRO, so overrides of documented base
    methods (every ``program()``, policy ``admit()``, …) inherit their
    contract documentation — which is the convention this codebase
    uses: behaviour-defining docs live on the base, specifics on the
    class docstring.
    """
    undocumented = []
    for module in iter_modules():
        for cls_name, cls in public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                func = member
                if isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                elif isinstance(member, property):
                    func = member.fget
                if not inspect.isfunction(func):
                    continue
                if not (inspect.getdoc(getattr(cls, name)) or "").strip():
                    undocumented.append(
                        f"{module.__name__}.{cls_name}.{name}"
                    )
    assert not undocumented, undocumented
