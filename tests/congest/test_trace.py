"""Tests for the trace recorder (and white-box protocol checks)."""

from repro.congest import Network
from repro.congest.trace import TraceRecorder
from repro.core.apsp import ApspNode
from repro.core.traversal import PebbleTraversalNode
from repro.graphs import path_graph, star_graph


def traced_run(graph, factory, **kwargs):
    network = Network(graph, factory, **kwargs)
    recorder = TraceRecorder.attach(network)
    result = network.run()
    return recorder, result


class TestRecorder:
    def test_counts_match_metrics(self):
        recorder, result = traced_run(path_graph(8), ApspNode)
        assert len(recorder.events) == result.metrics.messages_total
        assert recorder.rounds() <= result.rounds

    def test_counts_by_kind(self):
        recorder, _ = traced_run(path_graph(6), ApspNode)
        counts = recorder.counts_by_kind()
        assert counts["BfsToken"] > 0
        assert counts["PebbleMsg"] > 0
        assert counts["JoinMsg"] == 5   # one per non-root node

    def test_filtering(self):
        recorder, _ = traced_run(star_graph(5), ApspNode)
        from_center = recorder.filter(sender=1)
        assert from_center
        assert all(e.sender == 1 for e in from_center)
        pebbles = recorder.filter(kinds={"PebbleMsg"})
        assert all(e.kind == "PebbleMsg" for e in pebbles)

    def test_timeline_renders(self):
        recorder, _ = traced_run(path_graph(4), ApspNode)
        text = recorder.timeline(kinds={"PebbleMsg"})
        assert "PebbleMsg" in text
        assert text.startswith("r")

    def test_timeline_truncation(self):
        recorder, _ = traced_run(path_graph(6), ApspNode)
        text = recorder.timeline(max_rounds=3)
        assert "more rounds" in text


class TestProtocolWhiteBox:
    def test_pebble_moves_one_edge_per_round(self):
        """Remark 3: at most one pebble hop happens per round."""
        recorder, _ = traced_run(path_graph(10), PebbleTraversalNode)
        pebbles = recorder.filter(kinds={"PebbleMsg"})
        rounds = [e.round_no for e in pebbles]
        assert len(rounds) == len(set(rounds))  # one move per round
        # A DFS of a tree crosses each edge exactly twice.
        assert len(pebbles) == 2 * (10 - 1)

    def test_apsp_pebble_also_one_per_round(self):
        recorder, _ = traced_run(path_graph(8), ApspNode)
        pebbles = recorder.filter(kinds={"PebbleMsg"})
        rounds = [e.round_no for e in pebbles]
        assert len(rounds) == len(set(rounds))
        assert len(pebbles) == 2 * (8 - 1)

    def test_at_most_one_bfs_token_per_edge_round(self):
        """Lemma 1, observed on the wire: no directed edge ever carries
        two BFS tokens in the same round."""
        recorder, _ = traced_run(star_graph(9), ApspNode)
        seen = set()
        for event in recorder.filter(kinds={"BfsToken"}):
            key = (event.round_no, event.sender, event.receiver)
            assert key not in seen
            seen.add(key)
