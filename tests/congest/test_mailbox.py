"""Unit tests for Inbox/Outbox containers."""

from repro.congest.mailbox import Inbox, Outbox
from repro.congest.message import IdMessage, Token, ValueMessage


class TestOutbox:
    def test_add_and_iterate_sorted_by_receiver(self):
        outbox = Outbox()
        outbox.add(5, Token())
        outbox.add(2, IdMessage(uid=1))
        outbox.add(5, ValueMessage(3))
        items = list(outbox.items())
        assert [receiver for receiver, _ in items] == [2, 5]
        assert len(items[1][1]) == 2

    def test_len_counts_messages(self):
        outbox = Outbox()
        assert len(outbox) == 0
        outbox.add(1, Token())
        outbox.add(1, Token())
        assert len(outbox) == 2

    def test_bool_and_clear(self):
        outbox = Outbox()
        assert not outbox
        outbox.add(1, Token())
        assert outbox
        outbox.clear()
        assert not outbox


class TestInbox:
    def test_empty_inbox(self):
        assert not Inbox.EMPTY
        assert len(Inbox.EMPTY) == 0
        assert Inbox.EMPTY.senders() == ()
        assert Inbox.EMPTY.from_neighbor(3) == ()

    def test_items_deterministic_order(self):
        inbox = Inbox({
            7: (Token(), ValueMessage(1)),
            2: (IdMessage(uid=9),),
        })
        senders = [sender for sender, _ in inbox.items()]
        assert senders == [2, 7, 7]

    def test_from_neighbor(self):
        inbox = Inbox({4: (Token(),)})
        assert inbox.from_neighbor(4) == (Token(),)
        assert inbox.from_neighbor(5) == ()

    def test_messages_flattened(self):
        inbox = Inbox({1: (Token(),), 2: (ValueMessage(5),)})
        assert inbox.messages() == [Token(), ValueMessage(5)]

    def test_len(self):
        inbox = Inbox({1: (Token(), Token()), 3: (Token(),)})
        assert len(inbox) == 3
