"""Integration tests for the synchronous scheduler."""

import pytest

from repro.congest import (
    BandwidthExceededError,
    GraphError,
    Network,
    NodeAlgorithm,
    ProtocolError,
    RoundLimitExceededError,
    Token,
    ValueMessage,
    run_algorithm,
)
from repro.graphs import Graph, path_graph, star_graph


class Idle(NodeAlgorithm):
    """Returns immediately without communicating."""

    def program(self):
        return self.uid
        yield  # noqa: unreachable


class Flood(NodeAlgorithm):
    """Min-distance-from-node-1 flood; each node returns its distance."""

    def program(self):
        dist = None
        if self.uid == 1:
            dist = 0
            self.send_all(ValueMessage(0))
        while dist is None:
            inbox = yield
            values = [
                msg.value for _, msg in inbox.items()
                if isinstance(msg, ValueMessage)
            ]
            if values:
                dist = min(values) + 1
                self.send_all(ValueMessage(dist))
        return dist


class TestLifecycle:
    def test_idle_program_ends_in_zero_rounds(self):
        result = run_algorithm(path_graph(4), Idle)
        assert result.rounds == 0
        assert result.results == {1: 1, 2: 2, 3: 3, 4: 4}

    def test_flood_distances_and_round_count(self):
        result = run_algorithm(path_graph(6), Flood)
        assert result.results == {1: 0, 2: 1, 3: 2, 4: 3, 5: 4, 6: 5}
        # Last node learns in round 5; its final send drains in round 6.
        assert result.rounds in (5, 6)

    def test_message_staged_in_round_r_arrives_in_round_r_plus_1(self):
        arrivals = {}

        class Probe(NodeAlgorithm):
            def program(self):
                if self.uid == 1:
                    self.send(2, Token())     # staged at wake-up
                inbox = yield                 # round 1
                if self.uid == 2 and inbox:
                    arrivals[self.uid] = self.round
                    self.send(1, Token())     # staged during round 1
                inbox = yield                 # round 2
                if self.uid == 1 and inbox:
                    arrivals[self.uid] = self.round
                return None

        run_algorithm(path_graph(2), Probe)
        assert arrivals == {2: 1, 1: 2}

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            Network(Graph([], []), Idle)

    def test_single_node_network(self):
        result = run_algorithm(Graph([1], []), Idle)
        assert result.results == {1: 1}


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        class Coin(NodeAlgorithm):
            def program(self):
                yield
                return self.ctx.rng.random()

        a = run_algorithm(path_graph(5), Coin, seed=42)
        b = run_algorithm(path_graph(5), Coin, seed=42)
        assert a.results == b.results

    def test_different_seeds_differ(self):
        class Coin(NodeAlgorithm):
            def program(self):
                yield
                return self.ctx.rng.random()

        a = run_algorithm(path_graph(5), Coin, seed=1)
        b = run_algorithm(path_graph(5), Coin, seed=2)
        assert a.results != b.results

    def test_public_randomness_identical_across_nodes(self):
        class Shared(NodeAlgorithm):
            def program(self):
                yield
                return tuple(self.ctx.public_rng.random() for _ in range(3))

        result = run_algorithm(path_graph(6), Shared, seed=9)
        assert len(set(result.results.values())) == 1

    def test_private_randomness_differs_across_nodes(self):
        class Private(NodeAlgorithm):
            def program(self):
                yield
                return self.ctx.rng.random()

        result = run_algorithm(path_graph(6), Private, seed=9)
        assert len(set(result.results.values())) == 6


class TestProtocolEnforcement:
    def test_send_to_non_neighbor_rejected(self):
        class Bad(NodeAlgorithm):
            def program(self):
                if self.uid == 1:
                    self.send(3, Token())  # 1-2-3 path: 3 not adjacent
                yield
                return None

        with pytest.raises(ProtocolError):
            run_algorithm(path_graph(3), Bad)

    def test_send_non_message_rejected(self):
        class Bad(NodeAlgorithm):
            def program(self):
                self.send(2, "hello")
                yield
                return None

        with pytest.raises(ProtocolError):
            run_algorithm(path_graph(2), Bad)

    def test_non_generator_program_rejected(self):
        class Bad(NodeAlgorithm):
            def program(self):
                return 42

        with pytest.raises(ProtocolError):
            run_algorithm(path_graph(2), Bad)

    def test_bandwidth_overflow_raises_under_strict(self):
        class Chatty(NodeAlgorithm):
            def program(self):
                if self.uid == 1:
                    for _ in range(100):
                        self.send(2, ValueMessage(1))
                yield
                return None

        with pytest.raises(BandwidthExceededError):
            run_algorithm(path_graph(2), Chatty)

    def test_same_traffic_passes_under_serialize(self):
        class Chatty(NodeAlgorithm):
            def program(self):
                if self.uid == 1:
                    for i in range(20):
                        self.send(2, ValueMessage(i))
                    yield
                    return None
                got = []
                while len(got) < 20:
                    inbox = yield
                    got.extend(m.value for _, m in inbox.items())
                return got

        result = run_algorithm(path_graph(2), Chatty, policy="serialize")
        assert result.results[2] == list(range(20))
        assert result.rounds > 1  # forced to spread over rounds

    def test_round_limit_enforced(self):
        class Forever(NodeAlgorithm):
            def program(self):
                while True:
                    yield

        with pytest.raises(RoundLimitExceededError):
            run_algorithm(path_graph(2), Forever, max_rounds=10)


class TestMetrics:
    def test_counts_messages_and_bits(self):
        result = run_algorithm(path_graph(4), Flood)
        assert result.metrics.messages_total > 0
        assert result.metrics.bits_total > 0
        assert len(result.metrics.messages_per_round) == result.rounds
        assert sum(result.metrics.messages_per_round) == \
            result.metrics.messages_total

    def test_max_edge_bits_within_budget_under_strict(self):
        network = Network(star_graph(8), Flood)
        network.run()
        assert network.metrics.max_edge_bits_in_round <= \
            network.bandwidth_bits

    def test_edge_tracking_and_cut_audit(self):
        result = run_algorithm(path_graph(4), Flood, track_edges=True)
        cut = result.metrics.bits_across_cut(frozenset({1, 2}))
        assert cut > 0
        total = sum(result.metrics.edge_bits.values())
        assert total == result.metrics.bits_total

    def test_cut_audit_requires_tracking(self):
        result = run_algorithm(path_graph(4), Flood)
        with pytest.raises(ValueError):
            result.metrics.bits_across_cut(frozenset({1}))

    def test_inputs_reach_nodes(self):
        class Echo(NodeAlgorithm):
            def program(self):
                yield
                return self.ctx.input_value

        inputs = {1: "a", 2: "b", 3: "c"}
        result = run_algorithm(path_graph(3), Echo, inputs=inputs)
        assert result.results == inputs
