"""Unit tests for the bandwidth policies."""

import pytest

from repro.congest.bandwidth import (
    SerializingPolicy,
    StrictPolicy,
    UnlimitedPolicy,
    make_policy,
)
from repro.congest.errors import BandwidthExceededError
from repro.congest.message import IdMessage, SizeModel, Token

MODEL = SizeModel(100)
EDGE = (1, 2)


def msg_bits(message):
    return message.size_bits(MODEL)


class TestStrict:
    def test_within_budget_delivers_all(self):
        policy = StrictPolicy(100, MODEL)
        staged = [Token(), IdMessage(uid=3)]
        assert policy.admit(EDGE, staged, 1) == staged

    def test_overflow_raises_with_details(self):
        budget = msg_bits(IdMessage(uid=1)) + 1
        policy = StrictPolicy(budget, MODEL)
        staged = [IdMessage(uid=1), IdMessage(uid=2)]
        with pytest.raises(BandwidthExceededError) as exc:
            policy.admit(EDGE, staged, 7)
        assert exc.value.sender == 1
        assert exc.value.receiver == 2
        assert exc.value.round_no == 7
        assert exc.value.used_bits > exc.value.budget_bits

    def test_no_backlog(self):
        policy = StrictPolicy(100, MODEL)
        policy.admit(EDGE, [Token()], 1)
        assert not policy.has_backlog


class TestUnlimited:
    def test_everything_goes(self):
        policy = UnlimitedPolicy(1, MODEL)
        staged = [IdMessage(uid=i) for i in range(1, 50)]
        assert policy.admit(EDGE, staged, 1) == staged


class TestSerializing:
    def test_fifo_order_preserved(self):
        one = msg_bits(IdMessage(uid=1))
        policy = SerializingPolicy(one, MODEL)  # one message per round
        staged = [IdMessage(uid=i) for i in (1, 2, 3)]
        assert policy.admit(EDGE, staged, 1) == [IdMessage(uid=1)]
        assert policy.has_backlog
        assert policy.drain(2) == {EDGE: [IdMessage(uid=2)]}
        assert policy.drain(3) == {EDGE: [IdMessage(uid=3)]}
        assert not policy.has_backlog

    def test_batching_fills_budget(self):
        one = msg_bits(IdMessage(uid=1))
        policy = SerializingPolicy(2 * one, MODEL)
        staged = [IdMessage(uid=i) for i in (1, 2, 3)]
        assert policy.admit(EDGE, staged, 1) == [IdMessage(uid=1),
                                                 IdMessage(uid=2)]
        assert policy.drain(2) == {EDGE: [IdMessage(uid=3)]}

    def test_oversized_message_streams_over_rounds(self):
        # Budget of 3 bits; Token costs tag_bits (= 5) > 3.
        bits = msg_bits(Token())
        policy = SerializingPolicy(3, MODEL)
        assert policy.admit(EDGE, [Token()], 1) == []
        rounds_needed = -(-bits // 3)
        delivered = []
        for r in range(2, 2 + rounds_needed):
            delivered.extend(policy.drain(r).get(EDGE, []))
        assert delivered == [Token()]
        assert not policy.has_backlog

    def test_drain_excludes_just_serviced_edges(self):
        one = msg_bits(IdMessage(uid=1))
        policy = SerializingPolicy(one, MODEL)
        policy.admit(EDGE, [IdMessage(uid=1), IdMessage(uid=2)], 1)
        # The same round must not also drain EDGE.
        assert policy.drain(1, exclude=frozenset({EDGE})) == {}
        assert policy.drain(2) == {EDGE: [IdMessage(uid=2)]}

    def test_independent_edges(self):
        one = msg_bits(IdMessage(uid=1))
        policy = SerializingPolicy(one, MODEL)
        other = (3, 4)
        policy.admit(EDGE, [IdMessage(uid=1), IdMessage(uid=2)], 1)
        assert policy.admit(other, [IdMessage(uid=9)], 1) == [IdMessage(uid=9)]
        assert policy.drain(2) == {EDGE: [IdMessage(uid=2)]}


class TestFactory:
    def test_make_policy_names(self):
        assert isinstance(make_policy("strict", 10, MODEL), StrictPolicy)
        assert isinstance(make_policy("serialize", 10, MODEL),
                          SerializingPolicy)
        assert isinstance(make_policy("unlimited", 10, MODEL),
                          UnlimitedPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("best-effort", 10, MODEL)
