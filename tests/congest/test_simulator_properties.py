"""Property-based tests of the simulator itself.

The algorithms' correctness proofs assume the executor is faithful:
messages arrive exactly one round after staging, FIFO links never
reorder, policing never duplicates or drops under `strict`, and the
whole run is a pure function of (graph, algorithm, seed).  These tests
pin those guarantees with randomized workloads.
"""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.congest import (
    Network,
    NodeAlgorithm,
    SerializingPolicy,
    ValueMessage,
    run_algorithm,
)
from repro.congest.message import SizeModel
from repro.graphs import path_graph
from tests.conftest import random_connected_graph


class RandomChatter(NodeAlgorithm):
    """Sends a random-but-seeded trickle of values; records receipts."""

    def program(self):
        rng = self.ctx.rng
        received = []
        for _ in range(12):
            for neighbor in self.neighbors:
                if rng.random() < 0.35:
                    self.send(neighbor, ValueMessage(rng.randrange(50)))
            inbox = yield
            received.extend(
                (sender, msg.value) for sender, msg in inbox.items()
            )
        return tuple(received)


@given(st.integers(min_value=2, max_value=15),
       st.integers(min_value=0, max_value=10**6))
def test_runs_are_pure_functions_of_seed(n, seed):
    graph = random_connected_graph(n, seed)
    a = run_algorithm(graph, RandomChatter, seed=seed)
    b = run_algorithm(graph, RandomChatter, seed=seed)
    assert a.results == b.results
    assert a.metrics.bits_per_round == b.metrics.bits_per_round


@given(st.integers(min_value=0, max_value=10**6))
def test_no_loss_no_duplication_under_strict(seed):
    """Everything sent is delivered exactly once, one round later."""
    sent_log = []
    received_log = []

    class Logger(NodeAlgorithm):
        def program(self):
            rng = self.ctx.rng
            for _ in range(8):
                for neighbor in self.neighbors:
                    if rng.random() < 0.4:
                        value = rng.randrange(100)
                        sent_log.append((self.uid, neighbor, value,
                                         self.round))
                        self.send(neighbor, ValueMessage(value))
                inbox = yield
                for sender, msg in inbox.items():
                    received_log.append((sender, self.uid, msg.value,
                                         self.round - 1))
            # Drain the final round's deliveries.
            inbox = yield
            for sender, msg in inbox.items():
                received_log.append((sender, self.uid, msg.value,
                                     self.round - 1))
            return None

    run_algorithm(path_graph(6), Logger, seed=seed)
    assert sorted(sent_log) == sorted(received_log)


@given(st.lists(st.integers(min_value=0, max_value=99), min_size=1,
                max_size=40),
       st.integers(min_value=1, max_value=4))
def test_serializing_policy_is_fifo(values, per_round):
    """Under serialization, each link delivers in exact send order."""
    model = SizeModel(100)
    entry = ValueMessage(0).size_bits(model)
    policy = SerializingPolicy(per_round * entry, model)
    staged = [ValueMessage(v) for v in values]
    delivered = list(policy.admit((1, 2), staged, 1))
    round_no = 2
    while policy.has_backlog:
        delivered.extend(policy.drain(round_no).get((1, 2), []))
        round_no += 1
    assert delivered == staged
    # And the drain pace never exceeded the budget.
    assert round_no - 1 >= len(values) / per_round


class EarlyHalter(NodeAlgorithm):
    """Half the nodes halt immediately; the rest message for a while.

    Exercises the scheduler's handling of halted recipients: messages
    to them are dropped without wedging the run.
    """

    def program(self):
        if self.uid % 2 == 0:
            return "halted-early"
        for _ in range(5):
            for neighbor in self.neighbors:
                self.send(neighbor, ValueMessage(1))
            yield
        return "finished"


def test_halted_nodes_do_not_wedge_the_run():
    result = run_algorithm(path_graph(7), EarlyHalter)
    assert result.results[2] == "halted-early"
    assert result.results[3] == "finished"


def test_step_api_allows_manual_driving():
    """`Network.step()` exposes round-by-round control."""
    network = Network(path_graph(4), EarlyHalter)
    steps = 0
    while network.step():
        steps += 1
        assert network.round_no <= steps
    assert not network.running
    # Further steps are no-ops.
    assert network.step() is False
