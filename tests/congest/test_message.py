"""Unit tests for the message/field-width layer."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest.errors import EncodingError
from repro.congest.message import (
    INFINITY,
    MESSAGE_REGISTRY,
    IdMessage,
    Message,
    SizeModel,
    Token,
    ValueMessage,
    message_tag,
    tag_bits,
)
from repro.core.messages import BfsToken, OfferMsg, SyncMsg


class TestSizeModel:
    @given(st.integers(min_value=1, max_value=10**6))
    def test_id_bits_cover_all_ids(self, n):
        model = SizeModel(n)
        assert (1 << model.id_bits) >= n + 1

    @given(st.integers(min_value=1, max_value=10**6))
    def test_dist_bits_cover_all_distances_plus_infinity(self, n):
        model = SizeModel(n)
        # n distances (0..n) plus the all-ones infinity code point.
        assert (1 << model.dist_bits) >= n + 2

    def test_widths_are_logarithmic(self):
        assert SizeModel(1000).id_bits == 10
        assert SizeModel(1024).id_bits == 11
        assert SizeModel(2).id_bits == 2

    def test_round_kind_is_wider_than_dist(self):
        model = SizeModel(100)
        assert model.width_of("round") == model.dist_bits + 4

    def test_flag_kind_is_one_bit(self):
        assert SizeModel(100).width_of("flag") == 1

    def test_unknown_kind_raises(self):
        with pytest.raises(EncodingError):
            SizeModel(10).width_of("banana")


class TestRegistry:
    def test_all_registered_types_have_unique_tags(self):
        tags = [message_tag(cls) for cls in MESSAGE_REGISTRY]
        assert sorted(tags) == list(range(len(MESSAGE_REGISTRY)))

    def test_tag_bits_cover_registry(self):
        assert (1 << tag_bits()) >= len(MESSAGE_REGISTRY)

    def test_unregistered_type_rejected(self):
        class Rogue(Message):
            pass

        with pytest.raises(EncodingError):
            message_tag(Rogue)

    def test_field_specs_match_dataclass_fields(self):
        for cls in MESSAGE_REGISTRY:
            names = tuple(name for name, _ in cls.FIELDS)
            import dataclasses

            declared = tuple(f.name for f in dataclasses.fields(cls))
            assert names == declared, cls.__name__


class TestSizes:
    def test_token_is_tag_only(self):
        model = SizeModel(50)
        assert Token().size_bits(model) == tag_bits()

    def test_bfs_token_size(self):
        model = SizeModel(1000)
        expected = tag_bits() + model.id_bits + model.dist_bits
        assert BfsToken(root=5, dist=3).size_bits(model) == expected

    def test_offer_size_fits_default_bandwidth(self):
        from repro.congest.network import default_bandwidth

        for n in (4, 16, 100, 1000, 10000):
            model = SizeModel(n)
            assert OfferMsg(source=1, dist=0).size_bits(model) <= \
                default_bandwidth(n)

    def test_sizes_grow_logarithmically(self):
        small = SizeModel(10)
        big = SizeModel(10**6)
        msg = SyncMsg(root=1, ecc_root=2, marked=3, start_round=4)
        assert msg.size_bits(big) <= msg.size_bits(small) + 5 * (
            big.id_bits - small.id_bits + 4
        )

    def test_field_values_in_spec_order(self):
        assert BfsToken(root=7, dist=2).field_values() == (7, 2)
        assert ValueMessage(INFINITY).field_values() == (INFINITY,)
        assert IdMessage(uid=3).field_values() == (3,)
