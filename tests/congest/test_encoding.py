"""Round-trip tests for the binary wire format.

These guarantee that the bit widths charged against the bandwidth
budget correspond to an actually implementable encoding.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest.encoding import decode, encode
from repro.congest.errors import EncodingError
from repro.congest.message import (
    INFINITY,
    IdMessage,
    SizeModel,
    Token,
    ValueMessage,
)
from repro.core.messages import (
    BfsToken,
    CensusMsg,
    DomAnnounceMsg,
    DominatorMsg,
    DownMsg,
    DvMsg,
    EchoMsg,
    EdgeMsg,
    JoinMsg,
    OfferMsg,
    PebbleMsg,
    SyncMsg,
    UpMsg,
)

N = 200
MODEL = SizeModel(N)

ids = st.integers(min_value=1, max_value=N)
dists = st.one_of(st.just(INFINITY), st.integers(min_value=0, max_value=N))
counts = st.one_of(st.just(INFINITY), st.integers(min_value=0, max_value=N))
rounds_ = st.one_of(st.just(INFINITY),
                    st.integers(min_value=0, max_value=16 * N))


def roundtrip(message):
    word, width = encode(message, MODEL)
    assert width == message.size_bits(MODEL)
    back = decode(word, width, MODEL)
    assert back == message
    assert type(back) is type(message)


@given(ids, dists)
def test_bfs_token_roundtrip(root, dist):
    roundtrip(BfsToken(root=root, dist=dist))


@given(ids)
def test_join_roundtrip(root):
    roundtrip(JoinMsg(root=root))


@given(ids, counts, counts)
def test_echo_roundtrip(root, a, b):
    roundtrip(EchoMsg(root=root, primary=a, secondary=b))


@given(ids, counts, counts, rounds_)
def test_sync_roundtrip(root, ecc, marked, start):
    roundtrip(SyncMsg(root=root, ecc_root=ecc, marked=marked,
                      start_round=start))


@given(ids, rounds_)
def test_up_down_roundtrip(root, value):
    roundtrip(UpMsg(root=root, value=value))
    roundtrip(DownMsg(root=root, value=value))


@given(ids, dists)
def test_offer_roundtrip(source, dist):
    roundtrip(OfferMsg(source=source, dist=dist))


@given(ids, dists)
def test_dv_roundtrip(target, dist):
    roundtrip(DvMsg(target=target, dist=dist))


@given(ids, ids)
def test_edge_roundtrip(u, v):
    roundtrip(EdgeMsg(u=u, v=v))


@given(ids, counts, counts)
def test_census_roundtrip(root, wave, value):
    roundtrip(CensusMsg(root=root, wave=wave, value=value))


@given(ids, counts, counts)
def test_dom_announce_roundtrip(root, residue, size):
    roundtrip(DomAnnounceMsg(root=root, residue=residue, size=size))


@given(ids)
def test_dominator_roundtrip(dominator):
    roundtrip(DominatorMsg(dominator=dominator))


def test_token_like_roundtrips():
    roundtrip(Token())
    roundtrip(PebbleMsg())


@given(ids)
def test_id_value_roundtrips(uid):
    roundtrip(IdMessage(uid=uid))
    roundtrip(ValueMessage(uid))
    roundtrip(ValueMessage(INFINITY))


class TestMalformed:
    def test_out_of_range_id_rejected(self):
        # Beyond the field's bit capacity (ids are 8 bits for N = 200).
        with pytest.raises(EncodingError):
            encode(IdMessage(uid=2 * N), MODEL)

    def test_negative_dist_rejected(self):
        with pytest.raises(EncodingError):
            encode(BfsToken(root=1, dist=-7), MODEL)

    def test_unknown_tag_rejected(self):
        word, width = encode(Token(), MODEL)
        bogus_tag = (1 << (width)) - 1
        with pytest.raises(EncodingError):
            decode(bogus_tag, width, MODEL)

    def test_truncated_word_rejected(self):
        word, width = encode(BfsToken(root=3, dist=2), MODEL)
        with pytest.raises(EncodingError):
            decode(word >> 3, width - 3, MODEL)

    def test_negative_word_rejected(self):
        with pytest.raises(EncodingError):
            decode(-1, 8, MODEL)
