"""Golden equivalence tests: the engine's observable behaviour is pinned.

The round-engine hot path is heavily optimized (cached wire sizes, a
strict fault-free fast path, batched metrics accounting — see the
"Performance" section of ``docs/simulator.md``).  Every one of those
optimizations must be *observationally invisible*: identical
:class:`~repro.congest.metrics.RunMetrics` (rounds, messages, bits,
per-edge audits) and identical per-node results on every seed.

This module enforces that by replaying a fixed set of workloads — APSP,
S-SP, exact and approximate girth, 2-vs-4, a serializing baseline, and
two fault-injected runs (the slow path) — and comparing a canonical
digest of their results and full metrics against goldens recorded from
the pre-optimization engine (commit ``e7c8943`` and earlier), stored in
``golden_equivalence.json``.

The same goldens also gate the numpy vector backend
(:mod:`repro.vector`): every fault-free case it can run must reproduce
the object engine's record *byte-identically* — same results digest,
same rounds/messages/bits, same per-edge audits.  Those tests skip
cleanly when numpy is not installed.

Regenerating (only legitimate when the *model* changes, e.g. a new
message type shifts wire sizes — never to paper over an engine change)::

    PYTHONPATH=src python tests/congest/test_golden_equivalence.py \
        > tests/congest/golden_equivalence.json
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import pytest

from repro import core
from repro.congest.faults import FaultSpec, LinkOutage
from repro.congest.network import Network
from repro.core.apsp import ApspNode
from repro.graphs.specs import parse_graph

GOLDEN_PATH = Path(__file__).with_name("golden_equivalence.json")


def _canonical(value):
    """JSON-pure rendering of result objects (dataclasses, dicts, ...)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, frozenset):
        return sorted(_canonical(item) for item in value)
    if isinstance(value, float) and value == float("inf"):
        return "inf"
    return value


def _digest(results) -> str:
    """Stable digest of a per-node result mapping."""
    text = json.dumps(_canonical(results), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _record(results, metrics, fault_report=None):
    data = {
        "results_sha256": _digest(results),
        "halted_nodes": sorted(int(uid) for uid in results),
        "metrics": _canonical(metrics.to_dict()),
    }
    if fault_report is not None:
        data["fault_report"] = _canonical(fault_report.to_dict())
    return data


# ---------------------------------------------------------------------------
# The pinned workloads.  Keep them small (the whole set must stay cheap)
# but diverse: strict fast path, serialize backlog path, edge tracking,
# girth bookkeeping, and the fault-injected slow path.
# ---------------------------------------------------------------------------


def _case_apsp_strict():
    summary = core.run_apsp(
        parse_graph("er:20:p=0.2:seed=5"), seed=0, track_edges=True
    )
    return _record(summary.results, summary.metrics)


def _case_apsp_girth_seed1():
    summary = core.run_apsp(
        parse_graph("er:20:p=0.2:seed=5"), seed=1, collect_girth=True
    )
    return _record(summary.results, summary.metrics)


def _case_apsp_grid():
    summary = core.run_apsp(parse_graph("grid:4x5"), seed=3)
    return _record(summary.results, summary.metrics)


def _case_baseline_serialize():
    summary = core.run_baseline_apsp(
        parse_graph("path:10"), "distance-vector", seed=0, policy="serialize"
    )
    return _record(summary.results, summary.metrics)


def _case_ssp():
    summary = core.run_ssp(
        parse_graph("er:24:p=0.15:seed=2"), [1, 4, 9], seed=0
    )
    return _record(summary.results, summary.metrics)


def _case_girth_exact():
    summary = core.run_exact_girth(parse_graph("torus:4x6"), seed=0)
    return _record(summary.results, summary.metrics)


def _case_girth_approx():
    summary = core.run_approx_girth(parse_graph("cycle:30"), 0.5, seed=0)
    return _record(summary.results, summary.metrics)


def _case_two_vs_four_d2():
    summary = core.run_two_vs_four(parse_graph("diameter2:40:seed=3"), seed=0)
    return _record(summary.results, summary.metrics)


def _case_two_vs_four_d4():
    summary = core.run_two_vs_four(parse_graph("diameter4:40:seed=1"), seed=0)
    return _record(summary.results, summary.metrics)


def _case_bfs_grid():
    results, metrics = core.run_bfs(parse_graph("grid:4x5"), seed=0)
    return _record(results, metrics)


def _case_properties_er20():
    summary = core.run_graph_properties(
        parse_graph("er:20:p=0.2:seed=5"), seed=0
    )
    return _record(summary.results, summary.metrics)


def _case_faults_drops():
    outcome = Network(
        parse_graph("er:20:p=0.2:seed=5"),
        ApspNode,
        seed=0,
        max_rounds=200,
        faults=FaultSpec(drop_rate=0.03, seed=7),
    ).run()
    return _record(outcome.results, outcome.metrics, outcome.fault_report)


def _case_faults_crash_outage():
    outcome = Network(
        parse_graph("er:20:p=0.2:seed=5"),
        ApspNode,
        seed=0,
        max_rounds=150,
        faults=FaultSpec(
            seed=1,
            links=(LinkOutage(2, 3, 2, 8),),
            crashes=((6, 4),),
        ),
    ).run()
    return _record(outcome.results, outcome.metrics, outcome.fault_report)


CASES = {
    "apsp_strict_tracked": _case_apsp_strict,
    "apsp_girth_seed1": _case_apsp_girth_seed1,
    "apsp_grid_seed3": _case_apsp_grid,
    "baseline_dv_serialize": _case_baseline_serialize,
    "bfs_grid4x5": _case_bfs_grid,
    "properties_er20": _case_properties_er20,
    "ssp_er24": _case_ssp,
    "girth_exact_torus4x6": _case_girth_exact,
    "girth_approx_cycle30": _case_girth_approx,
    "two_vs_four_diam2": _case_two_vs_four_d2,
    "two_vs_four_diam4": _case_two_vs_four_d4,
    "faults_drops_roundlimit": _case_faults_drops,
    "faults_crash_outage": _case_faults_crash_outage,
}


# ---------------------------------------------------------------------------
# Vector-backend fixtures: the numpy round engine replays every
# fault-free case it is capable of and must land on the *same* golden
# record — that is the byte-identity contract the backend ships under.
# ---------------------------------------------------------------------------


def _vector_case_apsp_strict():
    from repro import vector

    summary = vector.run_apsp(
        parse_graph("er:20:p=0.2:seed=5"), seed=0, track_edges=True
    )
    return _record(summary.results, summary.metrics)


def _vector_case_apsp_girth_seed1():
    from repro import vector

    summary = vector.run_apsp(
        parse_graph("er:20:p=0.2:seed=5"), seed=1, collect_girth=True
    )
    return _record(summary.results, summary.metrics)


def _vector_case_apsp_grid():
    from repro import vector

    summary = vector.run_apsp(parse_graph("grid:4x5"), seed=3)
    return _record(summary.results, summary.metrics)


def _vector_case_bfs_grid():
    from repro import vector

    results, metrics = vector.run_bfs(parse_graph("grid:4x5"), seed=0)
    return _record(results, metrics)


def _vector_case_properties_er20():
    from repro import vector

    summary = vector.run_graph_properties(
        parse_graph("er:20:p=0.2:seed=5"), seed=0
    )
    return _record(summary.results, summary.metrics)


def _vector_case_ssp():
    from repro import vector

    summary = vector.run_ssp(
        parse_graph("er:24:p=0.15:seed=2"), [1, 4, 9], seed=0
    )
    return _record(summary.results, summary.metrics)


def _vector_case_girth_exact():
    from repro import vector

    summary = vector.run_exact_girth(parse_graph("torus:4x6"), seed=0)
    return _record(summary.results, summary.metrics)


VECTOR_CASES = {
    "apsp_strict_tracked": _vector_case_apsp_strict,
    "apsp_girth_seed1": _vector_case_apsp_girth_seed1,
    "apsp_grid_seed3": _vector_case_apsp_grid,
    "bfs_grid4x5": _vector_case_bfs_grid,
    "properties_er20": _vector_case_properties_er20,
    "ssp_er24": _vector_case_ssp,
    "girth_exact_torus4x6": _vector_case_girth_exact,
}


def _goldens():
    with GOLDEN_PATH.open(encoding="utf-8") as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(CASES))
def test_engine_matches_pre_optimization_golden(name):
    golden = _goldens()[name]
    fresh = CASES[name]()
    assert fresh["metrics"] == golden["metrics"], (
        f"{name}: RunMetrics diverged from the pre-optimization engine"
    )
    assert fresh["halted_nodes"] == golden["halted_nodes"], (
        f"{name}: a different set of nodes produced results"
    )
    assert fresh["results_sha256"] == golden["results_sha256"], (
        f"{name}: per-node results diverged from the pre-optimization engine"
    )
    assert fresh.get("fault_report") == golden.get("fault_report"), (
        f"{name}: fault report diverged"
    )


@pytest.mark.parametrize("name", sorted(VECTOR_CASES))
def test_vector_backend_matches_golden(name):
    pytest.importorskip("numpy")
    golden = _goldens()[name]
    fresh = VECTOR_CASES[name]()
    assert fresh["metrics"] == golden["metrics"], (
        f"{name}: vector-backend RunMetrics diverged from the golden"
    )
    assert fresh["halted_nodes"] == golden["halted_nodes"], (
        f"{name}: vector backend produced results for different nodes"
    )
    assert fresh["results_sha256"] == golden["results_sha256"], (
        f"{name}: vector-backend per-node results diverged from the golden"
    )


def test_golden_file_covers_every_case():
    assert sorted(_goldens()) == sorted(CASES)


def test_vector_cases_are_a_fault_free_subset():
    # Every vector fixture replays an existing golden; the fault and
    # serialize cases stay object-only by design.
    assert set(VECTOR_CASES) <= set(CASES)
    assert not any(name.startswith("faults_") for name in VECTOR_CASES)


if __name__ == "__main__":
    print(json.dumps({name: fn() for name, fn in sorted(CASES.items())},
                     indent=2, sort_keys=True))
