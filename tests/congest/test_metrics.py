"""Unit tests for RunMetrics."""

import pytest

from repro.congest.metrics import RunMetrics


def test_record_round_accumulates():
    metrics = RunMetrics()
    metrics.record_round([((1, 2), 2, 30), ((2, 1), 1, 10)])
    metrics.record_round([((1, 2), 1, 50)])
    assert metrics.rounds == 2
    assert metrics.messages_total == 4
    assert metrics.bits_total == 90
    assert metrics.messages_per_round == [3, 1]
    assert metrics.bits_per_round == [40, 50]
    assert metrics.max_edge_bits_in_round == 50
    assert metrics.max_edge_messages_in_round == 2


def test_edge_bits_tracking_optional():
    metrics = RunMetrics(edge_bits={})
    metrics.record_round([((1, 2), 1, 7), ((3, 4), 1, 5)])
    metrics.record_round([((1, 2), 1, 3)])
    assert metrics.edge_bits == {(1, 2): 10, (3, 4): 5}


def test_cut_counts_both_directions():
    metrics = RunMetrics(edge_bits={})
    metrics.record_round([((1, 2), 1, 7), ((2, 1), 1, 5), ((2, 3), 1, 100)])
    side_a = frozenset({1})
    assert metrics.bits_across_cut(side_a) == 12


def test_cut_requires_tracking():
    metrics = RunMetrics()
    with pytest.raises(ValueError):
        metrics.bits_across_cut(frozenset({1}))


def test_empty_round_recorded():
    metrics = RunMetrics()
    metrics.record_round([])
    assert metrics.rounds == 1
    assert metrics.messages_per_round == [0]


def test_to_dict_round_trip():
    metrics = RunMetrics()
    metrics.record_round([((1, 2), 2, 30), ((2, 1), 1, 10)])
    metrics.record_round([((1, 2), 1, 50)])
    data = metrics.to_dict()
    assert data["rounds"] == 2
    assert data["bits_total"] == 90
    assert "edge_bits" not in data  # tracking was off
    rebuilt = RunMetrics.from_dict(data)
    assert rebuilt == metrics
    assert rebuilt.to_dict() == data


def test_to_dict_round_trip_with_edge_bits():
    metrics = RunMetrics(edge_bits={})
    metrics.record_round([((3, 4), 1, 5), ((1, 2), 1, 7)])
    metrics.record_round([((1, 2), 1, 3)])
    data = metrics.to_dict()
    assert data["edge_bits"] == [[1, 2, 10], [3, 4, 5]]  # sorted
    rebuilt = RunMetrics.from_dict(data)
    assert rebuilt.edge_bits == {(1, 2): 10, (3, 4): 5}
    assert rebuilt == metrics


def test_to_dict_is_json_pure():
    import json

    metrics = RunMetrics(edge_bits={})
    metrics.record_round([((1, 2), 1, 7)])
    round_tripped = json.loads(json.dumps(metrics.to_dict()))
    assert RunMetrics.from_dict(round_tripped) == metrics


def test_from_dict_tolerates_missing_fields():
    metrics = RunMetrics.from_dict({"rounds": 3})
    assert metrics.rounds == 3
    assert metrics.messages_total == 0
    assert metrics.edge_bits is None


def test_fault_counters_round_trip():
    metrics = RunMetrics()
    metrics.record_round([((1, 2), 2, 30)])
    metrics.record_dropped(3, 21)
    metrics.record_suppressed(2, 14)
    metrics.nodes_crashed = 1
    metrics.nodes_stalled = 4
    data = metrics.to_dict()
    assert data["messages_dropped"] == 3
    assert data["bits_dropped"] == 21
    assert data["messages_suppressed"] == 2
    assert data["bits_suppressed"] == 14
    assert data["nodes_crashed"] == 1
    assert data["nodes_stalled"] == 4
    rebuilt = RunMetrics.from_dict(data)
    assert rebuilt == metrics
    assert rebuilt.to_dict() == data


def test_fault_counters_omitted_when_zero():
    # Fault-free runs must keep their historical record shape so
    # existing cached records stay byte-identical.
    metrics = RunMetrics()
    metrics.record_round([((1, 2), 2, 30)])
    data = metrics.to_dict()
    assert "messages_dropped" not in data
    assert "nodes_crashed" not in data
    assert not metrics.fault_counters_active


def test_old_records_without_fault_counters_still_load():
    # A record written before fault injection existed: no drop/crash
    # keys at all.  It must load with default-zero counters.
    metrics = RunMetrics.from_dict(
        {"rounds": 2, "messages_total": 3, "bits_total": 90}
    )
    assert metrics.messages_dropped == 0
    assert metrics.nodes_crashed == 0
    assert not metrics.fault_counters_active
