"""Unit tests for RunMetrics."""

import pytest

from repro.congest.metrics import RunMetrics


def test_record_round_accumulates():
    metrics = RunMetrics()
    metrics.record_round([((1, 2), 2, 30), ((2, 1), 1, 10)])
    metrics.record_round([((1, 2), 1, 50)])
    assert metrics.rounds == 2
    assert metrics.messages_total == 4
    assert metrics.bits_total == 90
    assert metrics.messages_per_round == [3, 1]
    assert metrics.bits_per_round == [40, 50]
    assert metrics.max_edge_bits_in_round == 50
    assert metrics.max_edge_messages_in_round == 2


def test_edge_bits_tracking_optional():
    metrics = RunMetrics(edge_bits={})
    metrics.record_round([((1, 2), 1, 7), ((3, 4), 1, 5)])
    metrics.record_round([((1, 2), 1, 3)])
    assert metrics.edge_bits == {(1, 2): 10, (3, 4): 5}


def test_cut_counts_both_directions():
    metrics = RunMetrics(edge_bits={})
    metrics.record_round([((1, 2), 1, 7), ((2, 1), 1, 5), ((2, 3), 1, 100)])
    side_a = frozenset({1})
    assert metrics.bits_across_cut(side_a) == 12


def test_cut_requires_tracking():
    metrics = RunMetrics()
    with pytest.raises(ValueError):
        metrics.bits_across_cut(frozenset({1}))


def test_empty_round_recorded():
    metrics = RunMetrics()
    metrics.record_round([])
    assert metrics.rounds == 1
    assert metrics.messages_per_round == [0]
