"""Unit tests for RunMetrics."""

import pytest

from repro.congest.metrics import RunMetrics


def test_record_round_accumulates():
    metrics = RunMetrics()
    metrics.record_round([((1, 2), 2, 30), ((2, 1), 1, 10)])
    metrics.record_round([((1, 2), 1, 50)])
    assert metrics.rounds == 2
    assert metrics.messages_total == 4
    assert metrics.bits_total == 90
    assert metrics.messages_per_round == [3, 1]
    assert metrics.bits_per_round == [40, 50]
    assert metrics.max_edge_bits_in_round == 50
    assert metrics.max_edge_messages_in_round == 2


def test_edge_bits_tracking_optional():
    metrics = RunMetrics(edge_bits={})
    metrics.record_round([((1, 2), 1, 7), ((3, 4), 1, 5)])
    metrics.record_round([((1, 2), 1, 3)])
    assert metrics.edge_bits == {(1, 2): 10, (3, 4): 5}


def test_cut_counts_both_directions():
    metrics = RunMetrics(edge_bits={})
    metrics.record_round([((1, 2), 1, 7), ((2, 1), 1, 5), ((2, 3), 1, 100)])
    side_a = frozenset({1})
    assert metrics.bits_across_cut(side_a) == 12


def test_cut_requires_tracking():
    metrics = RunMetrics()
    with pytest.raises(ValueError):
        metrics.bits_across_cut(frozenset({1}))


def test_empty_round_recorded():
    metrics = RunMetrics()
    metrics.record_round([])
    assert metrics.rounds == 1
    assert metrics.messages_per_round == [0]


def test_to_dict_round_trip():
    metrics = RunMetrics()
    metrics.record_round([((1, 2), 2, 30), ((2, 1), 1, 10)])
    metrics.record_round([((1, 2), 1, 50)])
    data = metrics.to_dict()
    assert data["rounds"] == 2
    assert data["bits_total"] == 90
    assert "edge_bits" not in data  # tracking was off
    rebuilt = RunMetrics.from_dict(data)
    assert rebuilt == metrics
    assert rebuilt.to_dict() == data


def test_to_dict_round_trip_with_edge_bits():
    metrics = RunMetrics(edge_bits={})
    metrics.record_round([((3, 4), 1, 5), ((1, 2), 1, 7)])
    metrics.record_round([((1, 2), 1, 3)])
    data = metrics.to_dict()
    assert data["edge_bits"] == [[1, 2, 10], [3, 4, 5]]  # sorted
    rebuilt = RunMetrics.from_dict(data)
    assert rebuilt.edge_bits == {(1, 2): 10, (3, 4): 5}
    assert rebuilt == metrics


def test_to_dict_is_json_pure():
    import json

    metrics = RunMetrics(edge_bits={})
    metrics.record_round([((1, 2), 1, 7)])
    round_tripped = json.loads(json.dumps(metrics.to_dict()))
    assert RunMetrics.from_dict(round_tripped) == metrics


def test_from_dict_tolerates_missing_fields():
    metrics = RunMetrics.from_dict({"rounds": 3})
    assert metrics.rounds == 3
    assert metrics.messages_total == 0
    assert metrics.edge_bits is None
