"""Error-path coverage for the simulator's failure modes: strict
bandwidth violations, serialize-mode backlog draining, and the
round-limit guard tripping on a deadlocked program."""

import pytest

from repro.congest import (
    BandwidthExceededError,
    NodeAlgorithm,
    RoundLimitExceededError,
    ValueMessage,
    run_algorithm,
)
from repro.graphs import generators


class Flood(NodeAlgorithm):
    """Node 1 pushes ``count`` messages over one edge in one round."""

    count = 8

    def program(self):
        if self.uid == 1:
            for value in range(self.count):
                self.send(self.neighbors[0], ValueMessage(value))
        received = []
        while self.round < 4 * self.count:
            inbox = yield
            for _, msg in inbox.items():
                received.append(msg.value)
        return received


class Deadlock(NodeAlgorithm):
    """Every node waits forever for a message nobody ever sends."""

    def program(self):
        while True:
            inbox = yield
            if list(inbox.items()):  # pragma: no cover — never true
                return "woke"


class TestStrictPolicy:
    def test_overflow_raises_with_actionable_attributes(self):
        graph = generators.path_graph(2)
        with pytest.raises(BandwidthExceededError) as info:
            run_algorithm(graph, Flood, bandwidth_bits=16, policy="strict")
        err = info.value
        assert (err.sender, err.receiver) == (1, 2)
        assert err.round_no == 1
        assert err.used_bits > err.budget_bits == 16
        # The message itself names edge, round and totals.
        text = str(err)
        assert "1->2" in text and "16" in text

    def test_within_budget_does_not_raise(self):
        graph = generators.path_graph(2)
        result = run_algorithm(
            graph, Flood, bandwidth_bits=10 ** 6, policy="strict"
        )
        assert sorted(result.results[2]) == list(range(Flood.count))


class TestSerializePolicy:
    def test_backlog_drains_completely(self):
        # The same overflow that kills strict mode is legal under
        # serialize: the excess queues and trickles out over later
        # rounds, and *every* message eventually arrives exactly once.
        graph = generators.path_graph(2)
        strict_budget = 16
        result = run_algorithm(
            graph, Flood, bandwidth_bits=strict_budget, policy="serialize"
        )
        assert sorted(result.results[2]) == list(range(Flood.count))

    def test_serialization_costs_extra_rounds(self):
        graph = generators.path_graph(2)
        fast = run_algorithm(
            graph, Flood, bandwidth_bits=10 ** 6, policy="serialize"
        )
        slow = run_algorithm(
            graph, Flood, bandwidth_bits=16, policy="serialize"
        )
        # Delivery of the flood takes strictly longer when squeezed.
        fast_done = max(
            i for i, m in enumerate(fast.metrics.messages_per_round) if m
        )
        slow_done = max(
            i for i, m in enumerate(slow.metrics.messages_per_round) if m
        )
        assert slow_done > fast_done


class TestRoundLimit:
    def test_deadlock_trips_the_guard(self):
        with pytest.raises(RoundLimitExceededError) as info:
            run_algorithm(
                generators.path_graph(3), Deadlock, max_rounds=25
            )
        err = info.value
        assert err.max_rounds == 25
        assert err.unfinished == 3
        assert "25" in str(err)
