"""Deterministic fault injection: spec round-trips, drop determinism,
link outages, crash-stops with graceful degradation, and the
``resilient()`` retransmit wrapper keeping BFS exact under loss."""

import json

import pytest

from repro.congest import (
    FaultPlan,
    FaultReport,
    FaultSpec,
    LinkOutage,
    Network,
    NodeAlgorithm,
    ValueMessage,
    resilient,
    run_algorithm,
)
from repro.congest.faults import ensure_plan
from repro.graphs import generators


class BfsNode(NodeAlgorithm):
    """Minimal BFS wave from node 1; each node returns its depth.

    Runs exactly ``n`` logical rounds so every node halts in the same
    round regardless of faults (no completion signalling — losses show
    up as wrong/missing depths, which is what the tests assert on).
    """

    def program(self):
        depth = 0 if self.uid == 1 else None
        if depth == 0:
            self.send_all(ValueMessage(0))
        for _ in range(self.n):
            inbox = yield
            best = min(
                (msg.value for _, msg in inbox.items()
                 if isinstance(msg, ValueMessage)),
                default=None,
            )
            if best is not None and (depth is None or best + 1 < depth):
                depth = best + 1
                self.send_all(ValueMessage(depth))
        return depth


def bfs_depths(graph):
    """Reference BFS depths from node 1, computed centrally."""
    depths = {1: 0}
    frontier = [1]
    while frontier:
        nxt = []
        for node in frontier:
            for nb in graph.neighbors(node):
                if nb not in depths:
                    depths[nb] = depths[node] + 1
                    nxt.append(nb)
        frontier = nxt
    return depths


class TestFaultSpec:
    def test_round_trip(self):
        spec = FaultSpec(
            drop_rate=0.25, seed=9,
            links=(LinkOutage(1, 2, 3, 7),),
            crashes=((4, 5),),
        )
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec
        # ... and the dict form is JSON-pure.
        json.dumps(spec.to_dict())

    def test_noop_detection(self):
        assert FaultSpec().is_noop
        assert not FaultSpec(drop_rate=0.1).is_noop
        assert not FaultSpec(crashes=((1, 2),)).is_noop

    def test_bad_drop_rate_rejected(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultSpec(drop_rate=1.5)

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ValueError, match="at most once"):
            FaultSpec(crashes=((1, 2), (1, 3)))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec"):
            FaultSpec.from_dict({"drop_rat": 0.1})

    def test_crashes_accepts_mapping_and_pairs(self):
        by_map = FaultSpec.from_dict({"crashes": {"3": 4}})
        by_list = FaultSpec.from_dict({"crashes": [[3, 4]]})
        assert by_map == by_list == FaultSpec(crashes=((3, 4),))

    def test_ensure_plan_forms(self):
        spec = FaultSpec(drop_rate=0.5)
        assert ensure_plan(None) is None
        plan = ensure_plan(spec)
        assert isinstance(plan, FaultPlan)
        assert ensure_plan(plan) is plan
        assert ensure_plan(spec.to_dict()).spec == spec
        with pytest.raises(TypeError):
            ensure_plan(42)


class TestFaultPlan:
    def test_drop_decisions_are_deterministic_and_order_free(self):
        plan_a = FaultPlan(FaultSpec(drop_rate=0.3, seed=5))
        plan_b = FaultPlan(FaultSpec(drop_rate=0.3, seed=5))
        queries = [
            (s, r, rnd, i)
            for s in (1, 2) for r in (2, 3)
            for rnd in (1, 4) for i in (0, 1)
        ]
        forward = [plan_a.drops(*q) for q in queries]
        backward = [plan_b.drops(*q) for q in reversed(queries)]
        assert forward == list(reversed(backward))

    def test_drop_rate_extremes(self):
        never = FaultPlan(FaultSpec(drop_rate=0.0))
        always = FaultPlan(FaultSpec(drop_rate=1.0))
        assert not never.drops(1, 2, 1, 0)
        assert always.drops(1, 2, 1, 0)

    def test_seed_changes_decisions(self):
        queries = [(1, 2, r, 0) for r in range(200)]
        one = [FaultPlan(FaultSpec(drop_rate=0.5, seed=1)).drops(*q)
               for q in queries]
        two = [FaultPlan(FaultSpec(drop_rate=0.5, seed=2)).drops(*q)
               for q in queries]
        assert one != two

    def test_link_outage_is_undirected_and_half_open(self):
        plan = FaultPlan(FaultSpec(links=(LinkOutage(2, 1, 3, 5),)))
        assert not plan.link_down(1, 2, 2)
        assert plan.link_down(1, 2, 3)
        assert plan.link_down(2, 1, 4)
        assert not plan.link_down(1, 2, 5)
        assert not plan.link_down(1, 3, 4)


class TestNetworkUnderFaults:
    def test_fault_free_run_has_no_report(self):
        result = run_algorithm(generators.path_graph(6), BfsNode)
        assert result.fault_report is None
        assert result.results == bfs_depths(generators.path_graph(6))

    def test_noop_faults_change_nothing_but_attach_a_report(self):
        graph = generators.path_graph(6)
        plain = run_algorithm(graph, BfsNode)
        faulty = run_algorithm(graph, BfsNode, faults=FaultSpec())
        assert faulty.results == plain.results
        assert faulty.metrics.rounds == plain.metrics.rounds
        assert isinstance(faulty.fault_report, FaultReport)
        assert faulty.fault_report.completed

    def test_same_spec_same_seed_byte_identical(self):
        graph = generators.torus_graph(3, 4)
        spec = FaultSpec(drop_rate=0.3, seed=11)
        runs = [
            run_algorithm(graph, BfsNode, faults=spec) for _ in range(2)
        ]
        dumps = [
            json.dumps(
                {
                    "results": {str(k): v for k, v in r.results.items()},
                    "metrics": r.metrics.to_dict(),
                    "report": r.fault_report.to_dict(),
                },
                sort_keys=True,
            )
            for r in runs
        ]
        assert dumps[0] == dumps[1]

    def test_link_outage_suppresses_and_counts(self):
        # Path 1-2-3-...; cutting {1,2} for the whole run stops the
        # wave at node 1, so depths beyond stay None.
        graph = generators.path_graph(4)
        spec = FaultSpec(links=(LinkOutage(1, 2, 0, 10 ** 6),))
        result = run_algorithm(graph, BfsNode, faults=spec)
        assert result.results[1] == 0
        assert result.results[2] is None
        assert result.results[3] is None
        assert result.fault_report.messages_suppressed > 0
        assert result.metrics.messages_suppressed == \
            result.fault_report.messages_suppressed
        assert result.metrics.fault_counters_active

    def test_crash_stop_yields_partial_results_not_a_hang(self):
        # Crashing the middle of a path makes the far side unreachable;
        # BfsNode still halts (fixed-length loop), but a *waiting*
        # algorithm would stall — covered by the max_rounds guard test
        # below.  Here: the crashed node has no result entry.
        graph = generators.path_graph(5)
        spec = FaultSpec(crashes=((3, 2),))
        result = run_algorithm(graph, BfsNode, faults=spec)
        assert 3 not in result.results
        assert result.fault_report.crashed == {3: 2}
        assert result.metrics.nodes_crashed == 1
        # nodes past the crash never learned their depth
        assert result.results[4] is None
        assert result.results[5] is None

    def test_round_limit_degrades_gracefully_under_faults(self):
        class WaitForever(NodeAlgorithm):
            """Waits for a message that a crashed neighbor never sends."""

            def program(self):
                while True:
                    inbox = yield
                    if list(inbox.items()):
                        return "woke"

        graph = generators.path_graph(3)
        spec = FaultSpec(crashes=((1, 0),))
        result = run_algorithm(
            graph, WaitForever, faults=spec, max_rounds=30
        )
        assert result.fault_report.round_limit == 30
        assert result.fault_report.stalled == (2, 3)
        assert not result.fault_report.completed
        assert result.metrics.nodes_stalled == 2
        assert result.results == {}

    def test_round_limit_still_raises_without_faults(self):
        from repro.congest import RoundLimitExceededError

        class WaitForever(NodeAlgorithm):
            """Deadlocks: waits for a message nobody sends."""

            def program(self):
                while True:
                    yield

        with pytest.raises(RoundLimitExceededError):
            run_algorithm(
                generators.path_graph(2), WaitForever, max_rounds=10
            )


class TestResilient:
    def test_wrapper_is_transparent_without_faults(self):
        graph = generators.torus_graph(4, 4)
        plain = run_algorithm(graph, BfsNode)
        wrapped = run_algorithm(graph, resilient(BfsNode, replicas=3))
        assert wrapped.results == plain.results
        # Exactly a factor-replicas slowdown (plus the flush frame).
        assert wrapped.metrics.rounds <= 3 * (plain.metrics.rounds + 1)

    @pytest.mark.parametrize("seed", range(8))
    def test_bfs_stays_exact_under_message_loss(self, seed):
        graph = generators.torus_graph(4, 4)
        expected = bfs_depths(graph)
        plain_rounds = run_algorithm(graph, BfsNode).metrics.rounds
        spec = FaultSpec(drop_rate=0.15, seed=seed)
        result = run_algorithm(
            graph, resilient(BfsNode, replicas=4), faults=spec
        )
        assert result.fault_report.completed
        assert result.results == expected
        assert result.fault_report.messages_dropped > 0
        # Bounded overhead: replicas frames per logical round.
        assert result.metrics.rounds <= 4 * (plain_rounds + 1)

    def test_plain_bfs_breaks_where_resilient_does_not(self):
        # Sanity that the fault rate is actually hostile: without the
        # wrapper at least one seed must corrupt the depths.
        graph = generators.torus_graph(4, 4)
        expected = bfs_depths(graph)
        broken = sum(
            run_algorithm(
                graph, BfsNode, faults=FaultSpec(drop_rate=0.15, seed=s)
            ).results != expected
            for s in range(8)
        )
        assert broken > 0

    def test_replicas_validated(self):
        graph = generators.path_graph(2)
        with pytest.raises(ValueError, match="replicas"):
            run_algorithm(graph, resilient(BfsNode, replicas=0))
