"""Cache-key stability: canonical hashing of task payloads."""

from repro.harness import Task, canonical_json, task_key
from repro.harness.hashing import content_hash


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": [1, 2]}) == \
        canonical_json({"a": [1, 2], "b": 1})


def test_canonical_json_is_tight():
    assert canonical_json({"a": 1}) == '{"a":1}'


def test_content_hash_stable_across_dict_construction():
    one = {"graph": "path:10", "params": {"seed": 0, "policy": "strict"}}
    other = {"params": {"policy": "strict", "seed": 0}, "graph": "path:10"}
    assert content_hash(one) == content_hash(other)


def test_task_key_differs_by_every_axis():
    base = Task.make("path:10", "apsp", {"seed": 0})
    keys = {
        base.key(),
        Task.make("path:11", "apsp", {"seed": 0}).key(),
        Task.make("path:10", "properties", {"seed": 0}).key(),
        Task.make("path:10", "apsp", {"seed": 1}).key(),
        base.key(salt="other"),
    }
    assert len(keys) == 5


def test_task_key_is_hex_sha256():
    key = Task.make("path:10", "apsp", {"seed": 0}).key()
    assert len(key) == 64
    int(key, 16)  # parses as hex


def test_task_key_reproducible_across_calls():
    task = Task.make("torus:4x4", "apsp", {"seed": 2, "policy": "strict"})
    assert task.key() == task.key()
    assert task.key() == task_key(task.payload())
