"""Campaign orchestration: determinism, parallel parity, cache reuse."""

import io
import json

import pytest

from repro.harness import (
    CampaignSpec,
    ProgressReporter,
    ResultStore,
    RunCache,
    Task,
    run_campaign,
    run_tasks,
    strip_timing,
)

SPEC = {
    "name": "test-sweep",
    "graphs": ["path:{n}", "torus:4x4"],
    "sizes": [10, 14],
    "seeds": [0, 1],
    "algorithms": ["apsp"],
}


def _tasks():
    return CampaignSpec.from_dict(SPEC).expand()


def _stripped(records):
    return [strip_timing(record) for record in records]


class TestDeterminism:
    def test_parallel_records_match_serial_modulo_timing(self, tmp_path):
        serial = run_tasks(_tasks(), jobs=1,
                           cache_dir=str(tmp_path / "c1"))
        parallel = run_tasks(_tasks(), jobs=4,
                             cache_dir=str(tmp_path / "c2"))
        assert _stripped(serial.records) == _stripped(parallel.records)

    def test_jsonl_stores_byte_identical_modulo_timing(self, tmp_path):
        spec = CampaignSpec.from_dict(SPEC)
        out1, out2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_campaign(spec, jobs=1, cache_dir=str(tmp_path / "c1"),
                     store_path=out1)
        run_campaign(spec, jobs=4, cache_dir=str(tmp_path / "c2"),
                     store_path=out2)

        def normalized(path):
            return [
                json.dumps(strip_timing(json.loads(line)), sort_keys=True)
                for line in path.read_text().splitlines()
            ]

        assert normalized(out1) == normalized(out2)

    def test_cache_hit_equals_fresh_computation(self, tmp_path):
        task = Task.make("torus:4x4", "apsp",
                         {"seed": 3, "policy": "strict"})
        fresh = run_tasks([task], cache_dir=str(tmp_path)).records[0]
        hit = run_tasks([task], cache_dir=str(tmp_path)).records[0]
        assert not fresh["timing"]["cache_hit"]
        assert hit["timing"]["cache_hit"]
        assert strip_timing(hit) == strip_timing(fresh)
        assert hit["metrics"]["rounds"] == fresh["metrics"]["rounds"]
        assert hit["metrics"]["bits_total"] == fresh["metrics"]["bits_total"]

    def test_same_task_same_result_across_worker_processes(self, tmp_path):
        # Two copies of an identical sweep, sharded differently, must
        # agree on every deterministic field.
        tasks = [
            Task.make("er:16:p=0.25:seed=5", "apsp",
                      {"seed": 7, "policy": "strict"})
        ] * 3
        summary = run_tasks(list(tasks), jobs=3)
        rounds = {
            record["metrics"]["rounds"] for record in summary.records
        }
        assert len(rounds) == 1


class TestCacheReuse:
    def test_second_invocation_hits_at_least_90_percent(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_tasks(_tasks(), jobs=2, cache_dir=cache_dir)
        assert first.cache_hits == 0
        second = run_tasks(_tasks(), jobs=2, cache_dir=cache_dir)
        assert second.hit_rate >= 0.9
        assert second.executed == 0

    def test_no_cache_recomputes_but_repopulates(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        task = Task.make("path:10", "apsp", {"seed": 0, "policy": "strict"})
        run_tasks([task], cache=cache)
        summary = run_tasks([task], cache=cache, use_cache=False)
        assert summary.cache_hits == 0
        assert summary.executed == 1
        assert len(cache) == 1

    def test_salt_segregates_cache_entries(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        task = Task.make("path:10", "apsp", {"seed": 0, "policy": "strict"})
        run_tasks([task], cache=cache, salt="a")
        summary = run_tasks([task], cache=cache, salt="b")
        assert summary.cache_hits == 0
        assert len(cache) == 2

    def test_without_cache_everything_executes(self):
        summary = run_tasks(_tasks()[:2])
        assert summary.cache_hits == 0
        assert summary.executed == 2


class TestFailures:
    def test_bad_task_fails_without_poisoning_the_campaign(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        tasks = [
            Task.make("path:10", "apsp", {"seed": 0, "policy": "strict"}),
            Task.make("path:10", "no-such-algorithm", {"seed": 0}),
            Task.make("path:12", "apsp", {"seed": 0, "policy": "strict"}),
        ]
        summary = run_tasks(tasks, cache=cache, jobs=2)
        assert summary.failures == 1
        assert summary.executed == 3
        good, bad, also_good = summary.records
        assert "error" not in good and "error" not in also_good
        assert bad["error"]["type"] == "TaskError"
        # Failures are never cached.
        assert len(cache) == 2

    def test_failed_records_keep_task_order(self):
        tasks = [
            Task.make("path:10", "no-such-algorithm", {"seed": 0}),
            Task.make("path:10", "apsp", {"seed": 0, "policy": "strict"}),
        ]
        summary = run_tasks(tasks)
        assert "error" in summary.records[0]
        assert "error" not in summary.records[1]


class TestRunCampaign:
    def test_store_written_in_task_order(self, tmp_path):
        out = tmp_path / "out.jsonl"
        spec = CampaignSpec.from_dict(SPEC)
        summary = run_campaign(spec, store_path=out)
        stored = list(ResultStore(out))
        assert _stripped(stored) == _stripped(summary.records)
        assert [r["task"] for r in stored] == \
            [t.payload() for t in spec.expand()]

    def test_store_truncated_unless_append(self, tmp_path):
        out = tmp_path / "out.jsonl"
        spec = CampaignSpec.from_dict({"graphs": ["path:10"]})
        run_campaign(spec, store_path=out)
        run_campaign(spec, store_path=out)
        assert len(ResultStore(out)) == 1
        run_campaign(spec, store_path=out, append=True)
        assert len(ResultStore(out)) == 2

    def test_summary_describe_mentions_cache(self, tmp_path):
        spec = CampaignSpec.from_dict({"graphs": ["path:10"]})
        cache_dir = str(tmp_path / "cache")
        run_campaign(spec, cache_dir=cache_dir)
        summary = run_campaign(spec, cache_dir=cache_dir)
        text = summary.describe()
        assert "1 from cache (100%)" in text
        assert "test" not in text  # uses the spec's own name
        assert summary.hit_rate == 1.0

    def test_progress_stream_receives_updates(self, tmp_path):
        stream = io.StringIO()
        spec = CampaignSpec.from_dict(SPEC)
        run_campaign(spec, show_progress=True, progress_stream=stream)
        text = stream.getvalue()
        assert "test-sweep" in text
        assert f"{len(spec.expand())}/{len(spec.expand())} tasks" in text


class TestProgressReporter:
    def test_counts_and_status(self):
        stream = io.StringIO()
        reporter = ProgressReporter(3, label="lbl", stream=stream,
                                    min_interval_s=0.0)
        reporter.task_done(cache_hit=True)
        reporter.task_done()
        reporter.task_done(failed=True)
        reporter.close()
        assert reporter.done == 3
        assert reporter.cache_hits == 1
        assert reporter.failures == 1
        status = reporter.status()
        assert "lbl: 3/3 tasks" in status
        assert "1 cached" in status
        assert "1 failed" in status

    def test_disabled_reporter_stays_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(1, stream=stream, enabled=False)
        reporter.task_done()
        reporter.close()
        assert stream.getvalue() == ""
