"""Tests for the campaign harness subsystem."""
