"""Per-task execution: every algorithm adapter produces a faithful record."""

import pytest

from repro import core, graphs
from repro.congest.metrics import RunMetrics
from repro.harness import Task, available_algorithms, execute_task
from repro.harness.runner import TaskError


def _task(graph, algorithm, **params):
    return Task.make(graph, algorithm, {"seed": 0, "policy": "strict",
                                        **params})


def test_apsp_record_matches_direct_run():
    record = execute_task(_task("torus:4x4", "apsp"))
    direct = core.run_apsp(graphs.torus_graph(4, 4))
    assert record["result"]["diameter"] == direct.diameter()
    assert record["result"]["radius"] == direct.radius()
    assert record["metrics"]["rounds"] == direct.rounds
    assert record["metrics"]["bits_total"] == direct.metrics.bits_total
    assert record["graph"] == {"n": 16, "m": 32}
    assert record["task"]["algorithm"] == "apsp"


def test_metrics_round_trip_through_run_metrics():
    record = execute_task(_task("path:8", "apsp"))
    metrics = RunMetrics.from_dict(record["metrics"])
    assert metrics.to_dict() == record["metrics"]
    assert metrics.rounds == record["metrics"]["rounds"]


def test_ssp_with_num_sources():
    record = execute_task(_task("path:8", "ssp", num_sources=2))
    assert record["result"]["sources"] == [1, 2]
    assert record["result"]["max_distance"] == 7


def test_ssp_with_explicit_sources():
    record = execute_task(_task("path:8", "ssp", sources=[1, 8]))
    assert record["result"]["sources"] == [1, 8]


def test_ssp_without_sources_rejected():
    with pytest.raises(TaskError):
        execute_task(_task("path:8", "ssp"))


def test_properties_record():
    record = execute_task(_task("cycle:9", "properties"))
    assert record["result"]["diameter"] == 4
    assert record["result"]["radius"] == 4
    assert record["result"]["girth"] == 9
    assert record["result"]["center"] == list(range(1, 10))


def test_approx_record():
    record = execute_task(_task("grid:4x4", "approx", epsilon=0.5))
    exact = graphs.diameter(graphs.grid_graph(4, 4))
    assert exact <= record["result"]["diameter_estimate"] <= \
        (1 + 0.5) * exact + 2


def test_girth_exact_and_approx():
    exact = execute_task(_task("cycle:10", "girth"))
    assert exact["result"]["girth"] == 10
    approx = execute_task(_task("cycle:10", "girth-approx", epsilon=1.0))
    assert 10 <= approx["result"]["girth"] <= 20 + 2


def test_two_vs_four_record():
    record = execute_task(_task("diameter2:24:seed=1", "two-vs-four"))
    assert record["result"]["diameter"] == 2


def test_baseline_record():
    record = execute_task(
        _task("path:8", "baseline", variant="distance-vector")
    )
    assert record["result"]["variant"] == "distance-vector"
    assert record["result"]["diameter"] == 7


def test_baseline_without_variant_rejected():
    with pytest.raises(TaskError):
        execute_task(_task("path:8", "baseline"))


def test_leader_record():
    record = execute_task(_task("er:12:p=0.3:seed=2", "leader"))
    assert record["result"]["leader"] == 1


def test_unknown_algorithm_rejected():
    with pytest.raises(TaskError, match="unknown algorithm"):
        execute_task(_task("path:8", "dijkstra"))


def test_unknown_param_rejected():
    with pytest.raises(TaskError, match="unknown params"):
        execute_task(_task("path:8", "apsp", wat=1))


def test_policy_axis_reaches_the_network():
    strict = execute_task(_task("path:8", "apsp"))
    local = execute_task(
        Task.make("path:8", "apsp", {"seed": 0, "policy": "unlimited"})
    )
    # Same algorithm, same rounds — the policy only changes enforcement.
    assert strict["metrics"]["rounds"] == local["metrics"]["rounds"]
    assert strict["task"]["params"]["policy"] == "strict"
    assert local["task"]["params"]["policy"] == "unlimited"


def test_available_algorithms_inventory():
    assert available_algorithms() == sorted([
        "apsp", "ssp", "properties", "approx", "girth", "girth-approx",
        "two-vs-four", "baseline", "leader", "chaos",
        "remark1", "bfs", "tree-check", "k-bfs", "all-two-bfs",
        "dominating-set", "prt-diameter", "pebble", "weighted-apsp",
    ])


def test_available_algorithms_is_the_registry():
    from repro import protocols

    assert available_algorithms() == protocols.names()
