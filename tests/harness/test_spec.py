"""Sweep-spec parsing and expansion."""

import json

import pytest

from repro.harness import CampaignSpec, SpecError, Task, expand_spec, load_spec


class TestTask:
    def test_payload_round_trip(self):
        task = Task.make("path:10", "apsp", {"seed": 3, "policy": "strict"})
        payload = task.payload()
        assert payload == {
            "graph": "path:10",
            "algorithm": "apsp",
            "params": {"seed": 3, "policy": "strict"},
        }
        assert Task.from_dict(payload) == task

    def test_tasks_are_hashable_and_order_insensitive(self):
        a = Task.make("path:10", "apsp", {"seed": 0, "policy": "strict"})
        b = Task.make("path:10", "apsp", {"policy": "strict", "seed": 0})
        assert a == b
        assert len({a, b}) == 1

    def test_nested_params_freeze_and_thaw(self):
        task = Task.make("path:10", "ssp",
                         {"sources": [1, 2], "opts": {"x": 1}})
        params = task.param_dict()
        assert params["sources"] == [1, 2]
        assert params["opts"] == {"x": 1}
        assert hash(task)  # frozen representation stays hashable

    def test_from_dict_requires_fields(self):
        with pytest.raises(SpecError):
            Task.from_dict({"graph": "path:10"})


class TestCampaignSpec:
    def test_expansion_order_and_count(self):
        spec = CampaignSpec.from_dict({
            "graphs": ["path:{n}"],
            "sizes": [10, 20],
            "seeds": [0, 1],
            "algorithms": ["apsp", "properties"],
        })
        tasks = spec.expand()
        assert len(tasks) == 8
        # algorithms × graphs(sizes) × seeds, in declared order
        assert tasks[0].payload() == {
            "graph": "path:10", "algorithm": "apsp",
            "params": {"policy": "strict", "seed": 0},
        }
        assert [t.algorithm for t in tasks[:4]] == ["apsp"] * 4
        assert [t.graph for t in tasks[:4]] == [
            "path:10", "path:10", "path:20", "path:20",
        ]

    def test_fixed_graphs_not_duplicated_per_size(self):
        tasks = expand_spec({
            "graphs": ["torus:4x4"],
            "sizes": [10, 20, 30],
        })
        assert len(tasks) == 1

    def test_policy_axis(self):
        tasks = expand_spec({
            "graphs": ["path:8"],
            "policies": ["strict", "unlimited"],
        })
        assert [t.param_dict()["policy"] for t in tasks] == [
            "strict", "unlimited",
        ]

    def test_shared_params_reach_every_task(self):
        tasks = expand_spec({
            "graphs": ["cycle:9"],
            "algorithms": ["approx"],
            "params": {"epsilon": 0.25},
        })
        assert tasks[0].param_dict()["epsilon"] == 0.25

    def test_placeholder_without_sizes_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"graphs": ["path:{n}"]})

    def test_empty_graphs_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"graphs": []})

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"graphs": ["path:8"], "sizs": [1]})

    def test_reserved_param_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({
                "graphs": ["path:8"], "params": {"seed": 1},
            })

    def test_empty_seeds_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"graphs": ["path:8"], "seeds": []})


class TestSpecTimeValidation:
    """Malformed campaigns die at expansion, before any worker spawns."""

    def test_unknown_algorithm_rejected_at_parse(self):
        with pytest.raises(SpecError, match="unknown algorithm"):
            CampaignSpec.from_dict({
                "graphs": ["path:8"], "algorithms": ["dijkstra"],
            })

    def test_empty_algorithms_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({
                "graphs": ["path:8"], "algorithms": [],
            })

    def test_bad_sources_rejected_at_expansion(self):
        spec = CampaignSpec.from_dict({
            "graphs": ["path:8"],
            "algorithms": ["ssp"],
            "params": {"sources": "nope"},
        })
        with pytest.raises(SpecError, match="list of integers"):
            spec.expand()

    def test_negative_k_rejected_at_expansion(self):
        spec = CampaignSpec.from_dict({
            "graphs": ["path:8"],
            "algorithms": ["dominating-set"],
            "params": {"k": -2},
        })
        with pytest.raises(SpecError, match="must be >= 1"):
            spec.expand()

    def test_unknown_param_names_the_offending_task(self):
        spec = CampaignSpec.from_dict({
            "graphs": ["cycle:9"],
            "algorithms": ["apsp"],
            "params": {"epsilom": 0.5},
        })
        with pytest.raises(SpecError) as excinfo:
            spec.expand()
        message = str(excinfo.value)
        assert "'apsp'" in message and "'cycle:9'" in message
        assert "epsilom" in message

    def test_missing_either_or_params_rejected_at_expansion(self):
        spec = CampaignSpec.from_dict({
            "graphs": ["path:8"], "algorithms": ["ssp"],
        })
        with pytest.raises(SpecError,
                           match="'sources' or 'num_sources'"):
            spec.expand()

    def test_validation_does_not_mutate_tasks(self):
        # Coercion/defaults must not leak into the expanded payloads,
        # or every cache key in existing stores would shift.
        spec = CampaignSpec.from_dict({
            "graphs": ["path:8"],
            "algorithms": ["approx"],
            "params": {"epsilon": 0.25},
        })
        (task,) = spec.expand()
        assert task.payload()["params"] == {
            "policy": "strict", "seed": 0, "epsilon": 0.25,
        }

    def test_valid_mixed_algorithm_spec_expands(self):
        spec = CampaignSpec.from_dict({
            "graphs": ["path:8"],
            "algorithms": ["apsp", "girth-approx"],
            "params": {"epsilon": 0.5},
        })
        # apsp does not take epsilon — expansion must name it.
        with pytest.raises(SpecError, match="'apsp'"):
            spec.expand()


class TestLoadSpec:
    def test_load_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "sweep",
            "graphs": ["path:{n}"],
            "sizes": [10],
        }), encoding="utf-8")
        spec = load_spec(path)
        assert spec.name == "sweep"
        assert len(spec.expand()) == 1

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SpecError):
            load_spec(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(SpecError):
            load_spec(path)
