"""Content-addressed run cache behaviour."""

from repro.harness import RunCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def test_round_trip(tmp_path):
    cache = RunCache(tmp_path / "cache")
    record = {"task": {"graph": "path:4"}, "metrics": {"rounds": 7}}
    assert KEY not in cache
    assert cache.get(KEY) is None
    cache.put(KEY, record)
    assert KEY in cache
    assert cache.get(KEY) == record


def test_two_level_layout(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(KEY, {"x": 1})
    assert (tmp_path / "ab" / f"{KEY}.json").is_file()


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(KEY, {"x": 1})
    cache.path_for(KEY).write_text("{truncated", encoding="utf-8")
    assert cache.get(KEY) is None
    assert KEY not in cache  # dropped for recomputation


def test_non_dict_entry_is_a_miss(tmp_path):
    cache = RunCache(tmp_path)
    cache.path_for(KEY).parent.mkdir(parents=True)
    cache.path_for(KEY).write_text("[1, 2]", encoding="utf-8")
    assert cache.get(KEY) is None


def test_keys_len_and_clear(tmp_path):
    cache = RunCache(tmp_path)
    assert len(cache) == 0
    cache.put(KEY, {"x": 1})
    cache.put(OTHER, {"y": 2})
    assert sorted(cache.keys()) == sorted([KEY, OTHER])
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


def test_put_is_idempotent(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(KEY, {"x": 1})
    cache.put(KEY, {"x": 1})
    assert cache.get(KEY) == {"x": 1}
    assert len(cache) == 1


def test_no_stray_temp_files_after_put(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(KEY, {"x": 1})
    leftovers = [
        p for p in (tmp_path / "ab").iterdir() if p.suffix == ".tmp"
    ]
    assert leftovers == []
