"""RunCache size accounting and oldest-first pruning."""

from __future__ import annotations

import os

from repro.cli import main
from repro.harness.cache import RunCache


def fill(cache, count, *, pad=200):
    """Store ``count`` entries with strictly increasing mtimes."""
    keys = []
    for index in range(count):
        key = f"{index:064x}"
        cache.put(key, {"index": index, "pad": "x" * pad})
        # Strictly order mtimes without sleeping.
        path = cache.path_for(key)
        os.utime(path, (1_000_000 + index, 1_000_000 + index))
        keys.append(key)
    return keys


def test_size_bytes_matches_disk(tmp_path):
    cache = RunCache(tmp_path)
    assert cache.size_bytes() == 0
    keys = fill(cache, 3)
    expected = sum(
        cache.path_for(key).stat().st_size for key in keys
    )
    assert cache.size_bytes() == expected


def test_prune_evicts_oldest_first(tmp_path):
    cache = RunCache(tmp_path)
    keys = fill(cache, 5)
    entry = cache.path_for(keys[0]).stat().st_size
    removed, freed = cache.prune(entry * 2)
    assert removed == 3
    assert freed == entry * 3
    survivors = set(cache.keys())
    assert survivors == set(keys[3:])        # newest two remain
    assert cache.size_bytes() <= entry * 2


def test_prune_is_a_noop_under_budget(tmp_path):
    cache = RunCache(tmp_path)
    fill(cache, 3)
    before = cache.size_bytes()
    assert cache.prune(before) == (0, 0)
    assert cache.size_bytes() == before


def test_prune_to_zero_empties_the_cache(tmp_path):
    cache = RunCache(tmp_path)
    fill(cache, 4)
    removed, freed = cache.prune(0)
    assert removed == 4
    assert freed > 0
    assert len(cache) == 0


def test_cache_cli_info_prune_clear(tmp_path, capsys):
    cache = RunCache(tmp_path)
    fill(cache, 5)
    assert main(["cache", "info", str(tmp_path)]) == 0
    assert "5 entries" in capsys.readouterr().out
    assert main(["cache", "prune", str(tmp_path), "--max-mb", "0.0002"]) == 0
    assert "pruned" in capsys.readouterr().out
    assert cache.size_bytes() <= 0.0002 * 1024 * 1024
    assert main(["cache", "clear", str(tmp_path)]) == 0
    assert len(cache) == 0
