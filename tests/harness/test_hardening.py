"""Hardened campaign execution: per-task timeouts, transient-failure
retries, worker-crash isolation, failure limits, and the ``chaos``
algorithm that makes those paths testable on purpose."""

import pytest

from repro.harness import CampaignSpec, Task
from repro.harness.campaign import run_campaign, run_tasks


def _chaos(mode, **extra):
    return Task.make("path:4", "chaos", {"mode": mode, **extra})


def _apsp(seed):
    return Task.make("path:6", "apsp", {"seed": seed})


def _error_types(summary):
    return [r.get("error", {}).get("type") for r in summary.records]


class TestChaosAlgorithm:
    def test_ok_mode_produces_a_record(self):
        summary = run_tasks([_chaos("ok")])
        assert summary.failures == 0
        assert summary.records[0]["result"] == {"mode": "ok"}

    def test_error_mode_records_traceback(self):
        summary = run_tasks([_chaos("error")])
        error = summary.records[0]["error"]
        assert error["type"] == "TaskError"
        assert "chaos task failed on purpose" in error["message"]
        assert "Traceback" in error["traceback"]
        assert "TaskError" in error["traceback"]

    def test_unknown_mode_rejected(self):
        summary = run_tasks([_chaos("wat")])
        assert summary.failures == 1
        assert "unknown chaos mode" in summary.records[0]["error"]["message"]


class TestTimeout:
    def test_hanging_task_times_out_and_others_complete(self):
        summary = run_tasks(
            [_chaos("hang", seconds=60), _apsp(0)],
            jobs=2, timeout_s=1.0,
        )
        assert summary.failures == 1
        by_algo = {r["task"]["algorithm"]: r for r in summary.records}
        error = by_algo["chaos"]["error"]
        assert error["type"] == "Timeout"
        assert error["attempts"] == 1
        assert "result" in by_algo["apsp"]
        # The campaign finished instead of hanging for 60s.
        assert summary.elapsed_s < 30

    def test_timeout_forces_pool_even_with_one_job(self):
        summary = run_tasks(
            [_chaos("hang", seconds=60)], jobs=1, timeout_s=1.0
        )
        assert _error_types(summary) == ["Timeout"]

    def test_timeout_is_retried_up_to_budget(self):
        summary = run_tasks(
            [_chaos("hang", seconds=60)],
            jobs=1, timeout_s=0.5, retries=1, backoff_s=0.0,
        )
        assert summary.retried == 1
        error = summary.records[0]["error"]
        assert error["type"] == "Timeout"
        assert error["attempts"] == 2


class TestCrashIsolation:
    def test_worker_death_fails_only_its_task(self):
        summary = run_tasks(
            [_chaos("crash"), _apsp(0), _apsp(1)], jobs=2
        )
        assert summary.failures == 1
        types = _error_types(summary)
        assert types[0] == "WorkerCrashed"
        assert types[1] is None and types[2] is None

    def test_crash_is_retried_up_to_budget(self):
        summary = run_tasks(
            [_chaos("crash")], jobs=2, retries=2, backoff_s=0.0
        )
        assert summary.retried == 2
        error = summary.records[0]["error"]
        assert error["type"] == "WorkerCrashed"
        assert error["attempts"] == 3

    def test_deterministic_errors_are_never_retried(self):
        summary = run_tasks(
            [_chaos("error")], jobs=2, retries=3, backoff_s=0.0
        )
        assert summary.retried == 0
        assert summary.records[0]["error"]["type"] == "TaskError"


class TestFailureLimits:
    def test_max_failures_skips_the_rest(self):
        tasks = [_chaos("error", seed=i) for i in range(5)]
        summary = run_tasks(tasks, max_failures=2)
        assert summary.failures == 2
        assert summary.skipped == 3
        assert _error_types(summary) == [
            "TaskError", "TaskError", "Skipped", "Skipped", "Skipped",
        ]

    def test_fail_fast_is_max_failures_one(self):
        tasks = [_chaos("error", seed=i) for i in range(3)]
        summary = run_tasks(tasks, fail_fast=True)
        assert summary.failures == 1
        assert summary.skipped == 2

    def test_limits_apply_under_the_pool_too(self):
        tasks = [_chaos("error", seed=i) for i in range(6)]
        summary = run_tasks(tasks, jobs=2, max_failures=2)
        assert summary.failures >= 2
        assert summary.skipped >= 1
        assert len(summary.records) == 6

    def test_describe_reports_the_new_counters(self):
        summary = run_tasks(
            [_chaos("error"), _chaos("error", seed=1)], fail_fast=True
        )
        text = summary.describe()
        assert "1 FAILED" in text
        assert "1 skipped" in text


class TestMixedHostileCampaign:
    def test_completes_with_per_task_errors_in_order(self):
        # The acceptance scenario: a hanging task, a crashing worker
        # and a deterministic error alongside healthy tasks.  The
        # campaign must finish, keep task order, and record every
        # outcome.
        tasks = [
            _chaos("hang", seconds=60),
            _chaos("crash"),
            _apsp(0),
            _chaos("error"),
            _apsp(1),
        ]
        summary = run_tasks(
            tasks, jobs=2, timeout_s=1.5, retries=1, backoff_s=0.0
        )
        assert len(summary.records) == len(tasks)
        for task, record in zip(tasks, summary.records):
            assert record["task"] == task.payload()
        types = _error_types(summary)
        assert types[2] is None and types[4] is None
        # Blame is precise: the hang times out, the crash is caught
        # when its suspect re-run dies alone, and neither poisons the
        # healthy tasks.
        assert types[0] == "Timeout"
        assert types[1] == "WorkerCrashed"
        assert types[3] == "TaskError"
        assert summary.failures == 3


class TestRunCampaignThreading:
    def test_knobs_flow_through_run_campaign(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "hostile",
            "graphs": ["path:4"],
            "algorithms": ["chaos"],
            "seeds": [0, 1, 2],
            "params": {"mode": "error"},
        })
        out = tmp_path / "hostile.jsonl"
        summary = run_campaign(
            spec, store_path=out, fail_fast=True
        )
        assert summary.failures == 1
        assert summary.skipped == 2
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 3

    def test_faulty_spec_expands_faults_into_every_task(self):
        spec = CampaignSpec.from_dict({
            "name": "faulty",
            "graphs": ["path:8"],
            "algorithms": ["apsp"],
            "seeds": [0],
            "faults": {"drop_rate": 0.5, "seed": 3},
        })
        tasks = spec.expand()
        assert all(
            t.param_dict()["faults"] == {"drop_rate": 0.5, "seed": 3}
            for t in tasks
        )
        summary = run_tasks(tasks)
        assert summary.failures == 0
        result = summary.records[0]["result"]
        # Heavy loss degrades the run instead of crashing the adapter.
        assert result.get("degraded") is True

    def test_noop_faults_do_not_change_cache_keys(self):
        plain = CampaignSpec.from_dict({
            "name": "c", "graphs": ["path:8"], "algorithms": ["apsp"],
        })
        noop = CampaignSpec.from_dict({
            "name": "c", "graphs": ["path:8"], "algorithms": ["apsp"],
            "faults": {"drop_rate": 0.0},
        })
        keys = [t.key() for t in plain.expand()]
        assert keys == [t.key() for t in noop.expand()]

    def test_faults_conflict_rejected(self):
        from repro.harness import SpecError

        with pytest.raises(SpecError, match="not both"):
            CampaignSpec.from_dict({
                "graphs": ["path:4"],
                "faults": {"drop_rate": 0.1},
                "params": {"faults": {"drop_rate": 0.2}},
            })

    def test_bad_faults_rejected(self):
        from repro.harness import SpecError

        with pytest.raises(SpecError, match="bad 'faults'"):
            CampaignSpec.from_dict({
                "graphs": ["path:4"],
                "faults": {"drop_rate": 7},
            })
