"""JSONL result store: append, query, aggregate."""

import pytest

from repro.harness import ResultStore, strip_timing
from repro.harness.store import lookup


def _record(graph, algorithm, n, rounds):
    return {
        "task": {"graph": graph, "algorithm": algorithm,
                 "params": {"seed": 0}},
        "graph": {"n": n, "m": n - 1},
        "metrics": {"rounds": rounds},
        "timing": {"elapsed_s": 0.5, "cache_hit": False},
    }


@pytest.fixture
def store(tmp_path):
    store = ResultStore(tmp_path / "results.jsonl")
    store.extend([
        _record("path:10", "apsp", 10, 40),
        _record("path:20", "apsp", 20, 80),
        _record("path:10", "properties", 10, 55),
    ])
    return store


def test_append_and_iterate_in_order(store):
    graphs = [record["task"]["graph"] for record in store]
    assert graphs == ["path:10", "path:20", "path:10"]
    assert len(store) == 3


def test_records_filter_by_dotted_field(store):
    apsp = store.records(task__algorithm="apsp")
    assert len(apsp) == 2
    assert all(r["task"]["algorithm"] == "apsp" for r in apsp)


def test_records_filter_with_predicate(store):
    big = store.records(where=lambda r: r["metrics"]["rounds"] > 50)
    assert len(big) == 2


def test_values_projection(store):
    assert store.values("metrics.rounds", task__algorithm="apsp") == \
        [40, 80]


def test_aggregate_mean_and_count(store):
    by_n = store.aggregate("graph.n", "metrics.rounds",
                           agg="mean", task__algorithm="apsp")
    assert by_n == {10: 40.0, 20: 80.0}
    counts = store.aggregate("task.graph", "metrics.rounds", agg="count")
    assert counts == {"path:10": 2, "path:20": 1}


def test_aggregate_unknown_reducer_rejected(store):
    with pytest.raises(ValueError):
        store.aggregate("graph.n", "metrics.rounds", agg="median")


def test_lookup_missing_path_defaults():
    assert lookup({"a": {"b": 1}}, "a.b") == 1
    assert lookup({"a": {"b": 1}}, "a.c") is None
    assert lookup({"a": {"b": 1}}, "a.b.c", default=7) == 7


def test_strip_timing_removes_only_timing(store):
    record = next(iter(store))
    stripped = strip_timing(record)
    assert "timing" not in stripped
    assert stripped["task"] == record["task"]
    assert stripped["metrics"] == record["metrics"]


def test_truncate_resets(store):
    store.truncate()
    assert len(store) == 0


def test_missing_file_iterates_empty(tmp_path):
    assert list(ResultStore(tmp_path / "absent.jsonl")) == []


def test_corrupt_line_raises_with_location(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ok": 1}\n{broken\n', encoding="utf-8")
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        list(ResultStore(path))
