"""Executable documentation: every fenced ``python`` block in
``docs/*.md`` and ``README.md`` must run.

This is the pytest face of ``tools/check_docs.py`` (the CI
``docs-examples`` job runs the same extraction standalone).  Each block
executes in a fresh interpreter with an empty temporary working
directory and ``src/`` on ``PYTHONPATH``, so examples must be
self-contained — exactly what a reader pasting them into a shell gets.

Blocks that cannot run standalone opt out explicitly with the
``python noexec`` info string; they are collected here as skips so the
opt-out stays visible in test output.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))

from check_docs import collect_blocks, run_block  # noqa: E402

BLOCKS = collect_blocks()


def test_docs_have_executable_examples():
    runnable = [b for b in BLOCKS if b.runnable]
    assert runnable, "no fenced python blocks found in docs/ or README.md"


@pytest.mark.parametrize(
    "block", BLOCKS, ids=[block.label for block in BLOCKS]
)
def test_doc_block_executes(block):
    if block.skipped:
        pytest.skip("marked 'python noexec'")
    proc = run_block(block)
    assert proc.returncode == 0, (
        f"doc example {block.label} failed (exit {proc.returncode})\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
