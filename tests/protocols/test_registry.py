"""Registry completeness: one declaration per algorithm, no drift."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import core, protocols
from repro.congest.metrics import RunMetrics
from repro.graphs.specs import parse_graph
from repro.protocols import CAPABILITIES, TaskError

REPO_ROOT = Path(__file__).resolve().parents[2]

ALL = protocols.protocols()


def smoke_params(protocol):
    """Example values for every schema param that declares one."""
    return {
        spec.name: spec.example
        for spec in protocol.schema
        if spec.example is not None
    }


def test_every_core_entry_point_is_registered():
    public = {
        name for name in dir(core)
        if name.startswith("run_") and callable(getattr(core, name))
    }
    registered = {
        p.entry_point.split(".", 1)[1]
        for p in ALL if p.entry_point.startswith("core.")
    }
    assert public == registered


def test_entry_points_resolve_to_callables():
    import importlib

    for protocol in ALL:
        parts = protocol.entry_point.split(".")
        module = importlib.import_module(
            "repro." + ".".join(parts[:-1])
        )
        assert callable(getattr(module, parts[-1])), protocol.name


def test_names_are_sorted_and_unique():
    names = protocols.names()
    assert names == sorted(names)
    assert len(names) == len(set(names))
    assert len(names) == len(ALL)


def test_capabilities_come_from_the_vocabulary():
    for protocol in ALL:
        assert protocol.capabilities <= CAPABILITIES, protocol.name


def test_unknown_capability_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown capabilities"):
        protocols.Protocol(
            name="x", entry_point="core.run_apsp",
            run=lambda req: None, summarize=lambda s, req: {},
            capabilities=frozenset({"quantum"}),
        )


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        protocols.register(protocols.get("apsp"))


def test_unknown_protocol_error_lists_available():
    with pytest.raises(TaskError, match="available:"):
        protocols.get("dijkstra")


@pytest.mark.parametrize(
    "protocol", ALL, ids=lambda p: p.name
)
def test_smoke_run_on_declared_graph(protocol):
    """Every protocol runs on its smoke graph with example params."""
    graph = parse_graph(protocol.smoke_graph)
    outcome = protocol.execute(graph, smoke_params(protocol))
    assert outcome.protocol == protocol.name
    assert isinstance(outcome.metrics, RunMetrics)
    # The stored half of the envelope must be JSON-pure.
    json.dumps(outcome.result)


@pytest.mark.parametrize(
    "protocol",
    [p for p in ALL if p.schema],
    ids=lambda p: p.name,
)
def test_unknown_param_rejected_everywhere(protocol):
    with pytest.raises(TaskError, match="unknown params"):
        protocol.check_params({**smoke_params(protocol), "wat": 1})


def test_check_params_tolerates_the_trace_marker():
    protocols.get("apsp").check_params({"trace": True, "seed": 0})


def test_drift_tool_passes_on_this_tree():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_registry.py")],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "registry OK" in result.stdout
