"""The RunRequest → RunOutcome envelope, end to end."""

import json

import pytest

from repro import protocols
from repro.graphs import cycle_graph, path_graph, torus_graph
from repro.graphs.weighted import (
    deterministic_weights,
    oracle_weighted_distances,
)
from repro.protocols import TaskError


class TestEnvelope:
    def test_outcome_carries_all_three_views(self):
        outcome = protocols.run("apsp", torus_graph(4, 4))
        assert outcome.protocol == "apsp"
        assert outcome.result["diameter"] == 4
        assert outcome.summary.diameter() == 4  # native object
        assert outcome.metrics.rounds == outcome.summary.rounds

    def test_common_kwargs_override_params(self):
        outcome = protocols.run(
            "apsp", path_graph(6), {"seed": 9}, seed=1
        )
        # The explicit keyword wins over the params dict.
        assert outcome.metrics.rounds > 0

    def test_policy_reaches_the_network(self):
        strict = protocols.run("apsp", path_graph(8))
        loose = protocols.run(
            "apsp", path_graph(8), {"policy": "unlimited"}
        )
        assert strict.metrics.rounds == loose.metrics.rounds

    def test_result_is_json_pure(self):
        for name in ("apsp", "properties", "leader", "girth"):
            protocol = protocols.get(name)
            graph = cycle_graph(9)
            outcome = protocol.execute(graph)
            json.dumps(outcome.result)

    def test_validation_happens_before_running(self):
        # A bad param on a large graph must fail instantly — the
        # request is rejected before the network is built.
        with pytest.raises(TaskError, match="unknown params"):
            protocols.run("apsp", path_graph(4), {"epsilon": 0.5})


class TestDegradedRuns:
    # Node 3 crashes at round 1: the run is guaranteed partial.
    FAULTS = {"crashes": {"3": 1}}

    def test_crashy_run_reports_degraded_not_wrong_aggregates(self):
        outcome = protocols.run(
            "apsp", cycle_graph(16), faults=self.FAULTS
        )
        assert outcome.metrics.nodes_crashed == 1
        assert outcome.result["degraded"] is True
        assert "diameter" not in outcome.result
        assert outcome.result["nodes_crashed"] == 1

    def test_clean_run_has_no_degraded_marker(self):
        outcome = protocols.run("apsp", cycle_graph(8))
        assert "degraded" not in outcome.result


class TestWeightedProtocol:
    def test_distances_match_dijkstra_oracle(self):
        graph = cycle_graph(6)
        outcome = protocols.run(
            "weighted-apsp", graph,
            {"max_weight": 4, "weight_seed": 2},
        )
        weighted = deterministic_weights(graph, 4, seed=2)
        oracle = oracle_weighted_distances(weighted)
        for u in graph.nodes:
            for v in graph.nodes:
                assert outcome.summary.distances[u][v] == oracle[u][v]

    def test_result_record_shape(self):
        outcome = protocols.run(
            "weighted-apsp", path_graph(5), {"max_weight": 3}
        )
        # max_weight records the realized largest weight, which can
        # fall below the requested cap on small graphs.
        assert 1 <= outcome.result["max_weight"] <= 3
        assert outcome.result["expanded_n"] >= 5
        assert outcome.result["weighted_diameter"] >= 4

    def test_unit_weights_reduce_to_plain_apsp(self):
        graph = torus_graph(3, 4)
        weighted = protocols.run(
            "weighted-apsp", graph, {"max_weight": 1}
        )
        plain = protocols.run("apsp", graph)
        assert (
            weighted.result["weighted_diameter"]
            == plain.result["diameter"]
        )
        assert weighted.result["expanded_n"] == graph.n

    def test_max_weight_validated(self):
        with pytest.raises(TaskError, match="must be >= 1"):
            protocols.run(
                "weighted-apsp", path_graph(4), {"max_weight": 0}
            )

    def test_campaign_spec_accepts_weighted(self):
        from repro.harness import expand_spec

        tasks = expand_spec({
            "graphs": ["path:6"],
            "algorithms": ["weighted-apsp"],
            "params": {"max_weight": 3},
        })
        assert tasks[0].algorithm == "weighted-apsp"

    def test_cli_subcommand(self, capsys):
        from repro.cli import main

        assert main([
            "weighted-apsp", "cycle:6", "--max-weight", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "weighted APSP (subdivision reduction)" in out
        assert "weighted diameter:" in out
        assert "expanded n:" in out
