"""Parameter schema: coercion, defaults, and actionable errors."""

import pytest

from repro.protocols import (
    CommonParams,
    ParamError,
    ParamSpec,
    TaskError,
    validate_params,
)
from repro.protocols.params import split_common


class TestCoercion:
    def test_int_accepts_int_and_numeric_string(self):
        spec = ParamSpec("k", kind="int")
        assert spec.coerce("p", 3) == 3
        assert spec.coerce("p", "3") == 3

    def test_int_rejects_float_bool_and_junk(self):
        spec = ParamSpec("k", kind="int")
        for value in (2.5, True, "three", None):
            with pytest.raises(ParamError, match="must be an integer"):
                spec.coerce("p", value)

    def test_float_accepts_ints(self):
        spec = ParamSpec("eps", kind="float")
        assert spec.coerce("p", 1) == 1.0
        assert isinstance(spec.coerce("p", 1), float)

    def test_bool_rejects_non_bool(self):
        spec = ParamSpec("flag", kind="bool")
        assert spec.coerce("p", True) is True
        with pytest.raises(ParamError):
            spec.coerce("p", 1)

    def test_int_list_accepts_tuples_rejects_strings(self):
        spec = ParamSpec("sources", kind="int_list")
        assert spec.coerce("p", (1, 2)) == [1, 2]
        with pytest.raises(ParamError, match="list of integers"):
            spec.coerce("p", "1,2")

    def test_minimum_is_enforced_elementwise(self):
        spec = ParamSpec("sources", kind="int_list", minimum=1)
        with pytest.raises(ParamError, match="must be >= 1"):
            spec.coerce("p", [1, 0])

    def test_choices(self):
        spec = ParamSpec("variant", choices=("a", "b"))
        assert spec.coerce("p", "a") == "a"
        with pytest.raises(ParamError, match="one of"):
            spec.coerce("p", "c")

    def test_error_names_protocol_and_param(self):
        spec = ParamSpec("k", kind="int", minimum=1)
        with pytest.raises(ParamError, match=r"demo: param 'k'"):
            spec.coerce("demo", 0)


class TestValidateParams:
    SCHEMA = (
        ParamSpec("epsilon", kind="float", default=0.5),
        ParamSpec("variant", kind="str", required=True),
    )

    def test_defaults_applied_and_required_enforced(self):
        out = validate_params("demo", self.SCHEMA, {"variant": "x"})
        assert out == {"epsilon": 0.5, "variant": "x"}
        with pytest.raises(ParamError, match="required param"):
            validate_params("demo", self.SCHEMA, {})

    def test_unknown_keys_listed_sorted(self):
        with pytest.raises(TaskError,
                           match=r"unknown params \['a', 'z'\]"):
            validate_params("demo", self.SCHEMA,
                            {"variant": "x", "z": 1, "a": 2})

    def test_false_default_is_still_applied(self):
        schema = (ParamSpec("flag", kind="bool", default=False),)
        assert validate_params("demo", schema, {}) == {"flag": False}


class TestCommonParams:
    def test_split_common_separates_axes(self):
        common, rest = split_common("demo", {
            "seed": 3, "policy": "unlimited", "epsilon": 0.5,
        })
        assert common == CommonParams(seed=3, policy="unlimited")
        assert rest == {"epsilon": 0.5}

    def test_kwargs_covers_every_axis(self):
        assert CommonParams().kwargs() == {
            "seed": 0, "policy": "strict",
            "bandwidth_bits": None, "faults": None,
        }
        kwargs = CommonParams(bandwidth_bits=64).kwargs()
        assert kwargs["bandwidth_bits"] == 64

    def test_param_error_is_a_task_error(self):
        # Campaign error records key on the class name "TaskError";
        # validation failures must flow through the same funnel.
        assert issubclass(ParamError, TaskError)
