"""Tests for the protocol registry and run envelope."""
