"""E8 — Theorem 7: distinguishing diameter 2 from 4 in Õ(√n).

Sweeps live in repro.experiments.two_vs_four_exp; checks asserted here."""

from repro import experiments

from .conftest import once, publish_table


def test_e8(benchmark):
    result = experiments.run("e8", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e8", "quick")

