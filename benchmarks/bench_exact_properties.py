"""E3 + E4 — Lemmas 2–6: exact properties in Θ(n), O(D) aggregation.

Sweeps live in repro.experiments.properties_exp; checks asserted here."""

from repro import experiments

from .conftest import once, publish_table


def test_e3(benchmark):
    result = experiments.run("e3", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e3", "quick")


def test_e4(benchmark):
    result = experiments.run("e4", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e4", "quick")

