"""E6 + E13 — Theorem 4 / Corollary 4 / Remark 1 approximations.

Sweeps live in repro.experiments.approx_exp; checks asserted here."""

from repro import experiments

from .conftest import once, publish_table


def test_e6(benchmark):
    result = experiments.run("e6", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e6", "quick")


def test_e6b(benchmark):
    result = experiments.run("e6b", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e6b", "quick")


def test_e13(benchmark):
    result = experiments.run("e13", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e13", "quick")

