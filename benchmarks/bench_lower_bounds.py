"""E9 + E10 — the lower-bound demonstrations (Theorems 2, 6, 8).

Constructions and audits live in repro.experiments.lower_bounds_exp."""

from repro import experiments

from .conftest import once, publish_table


def test_e9a(benchmark):
    result = experiments.run("e9a", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e9a", "quick")


def test_e9b(benchmark):
    result = experiments.run("e9b", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e9b", "quick")


def test_e10(benchmark):
    result = experiments.run("e10", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e10", "quick")

