"""E1 + E16 — Theorem 1: APSP in Θ(n) rounds, congestion-free (Lemma 1).

See repro.experiments.apsp_exp for the sweep definitions; this module
asserts the experiment's checks at paper scale and publishes the table.
The pytest-benchmark timing row runs the quick-scale sweep (it times
the simulator, not the algorithm — rounds are the scientific metric)."""

from repro import experiments

from .conftest import once, publish_table


def test_e1(benchmark):
    result = experiments.run("e1", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e1", "quick")


def test_e16(benchmark):
    result = experiments.run("e16", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e16", "quick")

