"""Benchmark-suite plumbing.

The scientific content of each benchmark lives in
:mod:`repro.experiments`; this conftest only handles presentation —
collecting rendered tables so they survive pytest's output capturing
(printed in the terminal summary) and writing them to
``benchmarks/results/`` — plus a helper to attach a single-shot
pytest-benchmark timing to an experiment run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def harness_run_cache(tmp_path_factory):
    """Share one content-addressed run cache across the whole suite.

    Experiments that sweep through the campaign harness (e1/e16,
    e11a/e11b, …) memoize their runs here, so overlapping sweeps — and
    the quick-scale timing rows re-running what the paper-scale row
    already computed — hit the cache instead of re-simulating.  Set
    ``REPRO_BENCH_CACHE_DIR`` to persist the cache across benchmark
    invocations.
    """
    from repro.experiments import base

    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or str(
        tmp_path_factory.mktemp("run-cache")
    )
    previous = base.configure_execution(cache_dir=cache_dir)
    yield
    base.configure_execution(
        jobs=previous.jobs,
        cache_dir=previous.cache_dir,
        use_cache=previous.use_cache,
    )

_TABLES: "List[str]" = []


def publish_table(name: str, text: str) -> None:
    """Register a rendered table for terminal summary + file output."""
    _TABLES.append(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every published table after the test results."""
    if not _TABLES:
        return
    terminalreporter.section("Table 1 reproduction — measured round counts")
    for text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
