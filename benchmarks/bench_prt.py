"""E14 + E15 — Corollaries 1–2: the Section 3.6 combinations.

Sweeps live in repro.experiments.prt_exp; checks asserted here."""

from repro import experiments

from .conftest import once, publish_table


def test_e14(benchmark):
    result = experiments.run("e14", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e14", "quick")


def test_e15(benchmark):
    result = experiments.run("e15", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e15", "quick")

