"""E11 — Section 3.1: Algorithm 1 vs the classic routing strawmen.

Sweeps live in repro.experiments.baselines_exp; checks asserted here."""

from repro import experiments

from .conftest import once, publish_table


def test_e11a(benchmark):
    result = experiments.run("e11a", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e11a", "quick")


def test_e11b(benchmark):
    result = experiments.run("e11b", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e11b", "quick")

