"""E2 + E12 — Theorem 3: S-SP in O(|S| + D) rounds, and its bit cost.

Sweeps live in repro.experiments.ssp_exp; checks asserted here."""

from repro import experiments

from .conftest import once, publish_table


def test_e2(benchmark):
    result = experiments.run("e2", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e2", "quick")


def test_e12(benchmark):
    result = experiments.run("e12", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e12", "quick")

