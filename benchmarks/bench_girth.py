"""E5 + E7 — girth: exact (Lemma 7) and (×,1+ε) (Theorem 5).

Sweeps live in repro.experiments.girth_exp; checks asserted here."""

from repro import experiments

from .conftest import once, publish_table


def test_e5(benchmark):
    result = experiments.run("e5", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e5", "quick")


def test_e7(benchmark):
    result = experiments.run("e7", scale="paper")
    publish_table(result.exp_id, result.render())
    assert result.passed, result.failed_checks()
    once(benchmark, experiments.run, "e7", "quick")

