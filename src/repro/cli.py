"""Command-line interface: ``python -m repro <command> ...``.

Runs the paper's algorithms on generated or file-loaded topologies and
prints the distributed results plus the round/message/bit costs.  The
algorithm subcommands — their names, flags, dispatch and printed
reports — are derived from the protocol registry
(:mod:`repro.protocols`); this module keeps no algorithm table of its
own.  The graph argument uses a compact spec syntax::

    path:40              a 40-node path
    cycle:24             a 24-node cycle
    grid:5x8             a 5x8 grid
    torus:4x25           a 4x25 torus
    star:30              a star
    complete:12          a clique
    tree:50:seed=3       a random tree
    er:60:p=0.1:seed=7   a connected Erdős–Rényi graph
    dumbbell:20:10       two 20-cliques joined by a 10-edge path
    file:PATH            an edge-list file (repro.graphs.io format)

Examples::

    python -m repro apsp torus:6x6
    python -m repro ssp er:40:p=0.15 --sources 1,5,9
    python -m repro properties grid:5x8
    python -m repro girth cycle:48 --epsilon 0.5
    python -m repro two-vs-four --family diameter2 --n 80
    python -m repro baseline path:32 --algorithm distance-vector
    python -m repro leader er:30:p=0.2
    python -m repro weighted-apsp torus:4x6 --max-weight 3
    python -m repro campaign --graphs "path:{n}" --sizes 20,40 --jobs 4
    python -m repro serve --graph er:64:p=0.1:seed=1 --cache-dir .cache
    python -m repro serve-bench er:64:p=0.1:seed=1 --clients 8
    python -m repro serve-chaos --workers 2 --kills 1 --duration 6
    python -m repro cache prune .cache --max-mb 256
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import graphs, protocols
from .graphs.specs import GraphSpecError
from .graphs.specs import parse_graph as _parse_graph_spec
from .protocols import TaskError


def parse_graph(spec: str) -> graphs.Graph:
    """Turn a compact graph spec (see module docstring) into a Graph.

    The syntax lives in :mod:`repro.graphs.specs` (shared with the
    campaign harness); this wrapper just converts parse failures into
    the CLI's exit discipline.
    """
    try:
        return _parse_graph_spec(spec)
    except GraphSpecError as exc:
        raise SystemExit(str(exc))


def _make_protocol_command(protocol: protocols.Protocol):
    """Build the handler for one registry-derived run subcommand.

    The generic pipeline: build the graph, optionally redirect to a
    sibling protocol (``select``), collect params from the parsed
    flags, run the ``RunRequest → RunOutcome`` envelope, and hand the
    outcome to the protocol's ``present`` hook for printing.
    """
    spec = protocol.cli

    def handler(args: argparse.Namespace) -> Optional[int]:
        if spec.build_graph is not None:
            try:
                graph = spec.build_graph(args)
            except GraphSpecError as exc:
                raise SystemExit(str(exc))
        else:
            graph = parse_graph(args.graph)
        target = protocol
        if spec.select is not None:
            target = protocols.get(spec.select(args))
        params = dict(spec.collect(args)) if spec.collect else {}
        params["seed"] = args.seed
        params["backend"] = getattr(args, "backend", "object")
        try:
            outcome = target.execute(graph, params)
        except TaskError as exc:
            raise SystemExit(str(exc))
        if spec.present is not None:
            return spec.present(args, graph, outcome)
        print(json.dumps(outcome.result, sort_keys=True))
        return None

    return handler


def _add_protocol_parsers(sub, common) -> None:
    """Create one run subcommand per registry entry with a presenter."""
    for protocol in protocols.protocols():
        spec = protocol.cli
        if spec is None or spec.present is None:
            continue
        p = sub.add_parser(protocol.name, help=spec.help)
        if spec.build_graph is None:
            p.add_argument("graph")
        for arg in spec.args:
            kwargs = {"default": arg.default}
            if arg.kind == "int":
                kwargs["type"] = int
            elif arg.kind == "float":
                kwargs["type"] = float
            if arg.choices is not None:
                kwargs["choices"] = list(arg.choices)
            if arg.required:
                kwargs["required"] = True
            if arg.help:
                kwargs["help"] = arg.help
            p.add_argument(arg.flag, **kwargs)
        common(p)
        p.set_defaults(func=_make_protocol_command(protocol))


def cmd_experiment(args: argparse.Namespace) -> None:
    """``repro experiment``: regenerate Table 1 entries on demand."""
    from . import experiments

    if args.id == "list":
        for exp_id in experiments.available():
            print(exp_id)
        return
    overrides = {}
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir
    if args.no_cache:
        overrides["use_cache"] = False
    previous = (
        experiments.configure_execution(**overrides) if overrides else None
    )
    try:
        ids = (experiments.available() if args.id == "all"
               else [args.id])
        failures = []
        collected = []
        for exp_id in ids:
            result = experiments.run(exp_id, scale=args.scale)
            collected.append(result)
            print(result.render())
            print()
            if not result.passed:
                failures.append(exp_id)
        if args.output:
            experiments.write_report(collected, args.output)
            print(f"report written to {args.output}")
    finally:
        if previous is not None:
            experiments.configure_execution(
                jobs=previous.jobs,
                cache_dir=previous.cache_dir,
                use_cache=previous.use_cache,
                timeout_s=previous.timeout_s,
                retries=previous.retries,
                max_failures=previous.max_failures,
            )
    if failures:
        raise SystemExit(f"experiments failed checks: {failures}")


def _csv(text: Optional[str], cast=str) -> List:
    """Split a comma-separated flag value, applying ``cast`` per item."""
    if not text:
        return []
    return [cast(item.strip()) for item in text.split(",") if item.strip()]


def cmd_campaign(args: argparse.Namespace) -> int:
    """``repro campaign``: run a cached, parallel sweep (docs/harness.md).

    Returns the process exit code: 0 when every task produced a result,
    1 when any task failed (the per-task errors are in the JSONL store,
    so a partial campaign is still fully recorded).  Unknown algorithms
    and malformed params are rejected up front at spec expansion —
    before any worker spawns — with a nonzero exit.
    """
    from . import harness

    if args.spec:
        if args.graphs:
            raise SystemExit(
                "give either a spec file or --graphs flags, not both"
            )
        try:
            spec = harness.load_spec(args.spec)
        except (OSError, harness.SpecError) as exc:
            raise SystemExit(str(exc))
    elif args.graphs:
        data = {
            "name": args.name,
            "graphs": _csv(args.graphs),
            "sizes": _csv(args.sizes, int),
            "seeds": _csv(args.seeds, int) or [0],
            "algorithms": _csv(args.algorithms) or ["apsp"],
            "policies": _csv(args.policies) or ["strict"],
            "salt": args.salt,
        }
        try:
            spec = harness.CampaignSpec.from_dict(data)
        except harness.SpecError as exc:
            raise SystemExit(str(exc))
    else:
        raise SystemExit(
            "campaign needs a JSON spec file or --graphs (see docs/harness.md)"
        )
    if args.faults:
        try:
            spec = spec.with_faults(json.loads(args.faults))
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--faults: not valid JSON ({exc})")
        except harness.SpecError as exc:
            raise SystemExit(str(exc))
    if args.backend:
        try:
            spec = spec.with_backend(args.backend)
        except harness.SpecError as exc:
            raise SystemExit(str(exc))
    if args.trace:
        try:
            spec = spec.with_trace()
        except harness.SpecError as exc:
            raise SystemExit(str(exc))
    out = args.out or f"{spec.name}.jsonl"
    try:
        summary = harness.run_campaign(
            spec,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            store_path=out,
            append=args.append,
            show_progress=not args.quiet,
            timeout_s=args.timeout,
            retries=args.retries,
            max_failures=args.max_failures,
            fail_fast=args.fail_fast,
        )
    except harness.SpecError as exc:
        raise SystemExit(str(exc))
    print(summary.describe())
    print(f"results -> {out}")
    if summary.failures:
        print(
            f"error: {summary.failures} task(s) failed; "
            f"per-task errors recorded in {out}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: regression-tracked microbenchmarks.

    Runs the pinned workload suite (see :mod:`repro.bench.workloads`),
    writes a machine-readable ``BENCH_<date>.json`` report, and — with
    ``--compare BASELINE.json`` — gates on >15% median regressions
    (``--warn-only`` downgrades the gate to a warning, which is how the
    CI smoke job runs it).  Schema and workflow: ``docs/benchmarks.md``.
    """
    from . import bench

    names = _csv(args.workloads) or None
    try:
        report = bench.run_suite(
            quick=args.quick,
            repeats=args.repeats,
            names=names,
            backend=args.backend,
            progress=print,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    out = args.out or bench.default_output_path()
    bench.write_report(report, out)
    print(f"report -> {out}")
    if not args.compare:
        return 0
    try:
        baseline = bench.load_report(args.compare)
        comparison = bench.compare_reports(
            baseline, report, threshold=args.threshold
        )
    except (OSError, ValueError) as exc:
        raise SystemExit(f"--compare: {exc}")
    print(f"baseline: {args.compare} "
          f"(generated {baseline.get('generated', '?')})")
    print(comparison.render())
    if not comparison.ok:
        if args.strict_counters and comparison.divergent:
            # Counter divergence means the engines computed different
            # things — never ignorable, even under --warn-only.  This is
            # the cross-backend byte-identity gate.
            print("error: simulation counters diverged "
                  "(fatal: --strict-counters)", file=sys.stderr)
            return 1
        if args.warn_only:
            print("warning: regression gate failed (ignored: --warn-only)",
                  file=sys.stderr)
            return 0
        return 1
    return 0


def _traceable_names() -> List[str]:
    """Protocols ``repro trace run`` can capture (registry-derived)."""
    return [
        p.name for p in protocols.protocols()
        if "trace" in p.capabilities
    ]


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace run``: one traced run, exported three ways.

    Captures the run with :func:`repro.obs.capture` and exports per
    ``--export``: ``summary`` prints costs, invariant verdicts and the
    round x edge heatmap (exit 1 if an invariant fails); ``jsonl``
    writes the ``repro-trace/1`` stream; ``chrome`` writes Trace Event
    Format JSON loadable in ``about://tracing`` / Perfetto.  The
    algorithm choices are the registry entries carrying the ``trace``
    capability.
    """
    from . import obs

    if getattr(args, "backend", "object") != "object":
        raise SystemExit(
            "trace capture requires --backend=object: the vector engine "
            "computes whole rounds at once and records no per-event trace"
        )
    graph = parse_graph(args.graph)
    faults = None
    if args.faults:
        try:
            faults = json.loads(args.faults)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--faults: not valid JSON ({exc})")
    protocol = protocols.get(args.algorithm)
    spec = protocol.cli
    target = protocol
    if spec is not None and spec.select is not None:
        target = protocols.get(spec.select(args))
        spec = target.cli or spec
    params = {}
    if spec is not None and spec.trace_collect is not None:
        params = dict(spec.trace_collect(args))
    params.update(seed=args.seed, policy=args.policy, faults=faults)
    try:
        with obs.capture() as session:
            target.execute(graph, params)
    except TaskError as exc:
        raise SystemExit(str(exc))
    trace = session.build_trace(
        0, label=f"{args.algorithm} {args.graph}"
    )

    if args.export == "summary":
        text = obs.render_summary(trace)
        print(text)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"summary -> {args.out}")
        failed = [r for r in obs.check(trace) if not r.ok]
        return 1 if failed else 0

    if args.export == "chrome":
        out = args.out or f"trace_{args.algorithm}.json"
        obs.write_chrome(trace, out)
        print(f"chrome trace -> {out} "
              f"(load in about://tracing or ui.perfetto.dev)")
    else:
        out = args.out or f"trace_{args.algorithm}.jsonl"
        obs.write_jsonl(trace, out)
        print(f"repro-trace/1 stream -> {out}")
    print(f"rounds: {trace.rounds}   messages: {len(trace.messages)}   "
          f"events: {len(trace.events)}   spans: {len(trace.spans)}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the persistent distance-query service.

    Runs until SIGINT/SIGTERM; shutdown drains in-flight batches and
    flushes the stats snapshot (see docs/serving.md).
    """
    from . import serve

    chaos = None
    if args.chaos_inject:
        try:
            chaos = json.loads(args.chaos_inject)
        except ValueError as exc:
            raise SystemExit(f"--chaos-inject must be JSON: {exc}")
    config = serve.ServerConfig(
        host=args.host,
        port=args.port,
        graphs=tuple(args.graph or ()),
        cache_dir=args.cache_dir,
        max_matrix_bytes=int(args.max_matrix_mb * 1024 * 1024),
        seed=args.seed,
        policy=args.policy,
        backend=args.backend,
        tick_s=args.tick_ms / 1000.0,
        max_batch=args.max_batch,
        stats_path=args.stats_out,
        warm=tuple(args.warm or ()),
        workers=args.workers,
        deadline_s=None if args.deadline <= 0 else args.deadline,
        retries=args.retries,
        queue_depth=args.queue_depth,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
        max_inflight=args.max_inflight,
        max_body_bytes=int(args.max_body_kb * 1024),
        read_timeout_s=None if args.read_timeout <= 0 else args.read_timeout,
        chaos=chaos,
    )
    try:
        return serve.run_server(config)
    except serve.QueryError as exc:
        raise SystemExit(str(exc))


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """``repro serve-bench``: load-test a running (or self-hosted) server.

    Reports queries/sec and latency percentiles; ``--out`` writes the
    ``repro-serve-bench/1`` JSON artifact (qps, p50/p99, and the
    server's ``/stats`` snapshot).  ``--min-qps`` turns the run into a
    gate for CI.
    """
    from . import serve

    handle = None
    url = args.url
    if url is None:
        handle = serve.ServerThread(
            serve.DistanceService(cache_dir=args.cache_dir)
        ).start()
        url = handle.url
    try:
        report = serve.run_loadgen(serve.LoadgenOptions(
            url=url,
            graph=args.graph,
            protocol=args.protocol,
            clients=args.clients,
            duration_s=args.duration,
            mode=args.mode,
            seed=args.seed,
            warm=not args.cold,
        ))
    finally:
        if handle is not None:
            handle.stop()
    print(serve.render_summary(report))
    if args.out:
        serve.write_artifact(report, args.out)
        print(f"artifact -> {args.out}")
    code = 0
    if args.min_qps is not None and report["qps"] < args.min_qps:
        print(
            f"error: {report['qps']:.0f} qps is below the "
            f"--min-qps {args.min_qps:.0f} gate",
            file=sys.stderr,
        )
        code = 1
    if args.compare:
        failures = _serve_bench_regressions(
            report, args.compare, args.threshold
        )
        for line in failures:
            print(f"regression: {line}", file=sys.stderr)
        if failures and not args.warn_only:
            code = 1
    return code


def _serve_bench_regressions(
    report: dict, baseline_path: str, threshold: float
) -> List[str]:
    """Compare a serve-bench artifact against a baseline artifact.

    Returns human-readable regression lines: throughput below
    ``baseline * (1 - threshold)`` or p99 above
    ``baseline * (1 + threshold)``.  Absolute numbers are machine-
    dependent, so CI uses a generous threshold to catch only
    catastrophic slowdowns.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures: List[str] = []
    base_qps = baseline.get("qps", 0.0)
    if base_qps and report["qps"] < base_qps * (1.0 - threshold):
        failures.append(
            f"qps {report['qps']:.0f} < {1.0 - threshold:.0%} of "
            f"baseline {base_qps:.0f}"
        )
    base_p99 = (baseline.get("latency_ms") or {}).get("p99", 0.0)
    p99 = report["latency_ms"]["p99"]
    if base_p99 and p99 > base_p99 * (1.0 + threshold):
        failures.append(
            f"p99 {p99:.2f}ms > {1.0 + threshold:.0%} of baseline "
            f"{base_p99:.2f}ms"
        )
    return failures


def cmd_serve_chaos(args: argparse.Namespace) -> int:
    """``repro serve-chaos``: kill workers under live serving load.

    Stands up a supervised server, drives cold-query load, SIGKILLs
    workers on a schedule (optionally poisoning computes through the
    chaos protocol), and gates on the robustness contract: zero
    dropped queries, no internal errors, full recovery, bounded p99.
    Exit 0 iff every check passed; ``--out`` writes the
    ``repro-serve-chaos/1`` artifact.
    """
    from .serve import chaos as serve_chaos

    report = serve_chaos.run_chaos(serve_chaos.ChaosOptions(
        graph_n=args.graph_n,
        graph_p=args.graph_p,
        clients=args.clients,
        duration_s=args.duration,
        workers=args.workers,
        kills=args.kills,
        kill_after_s=args.kill_after,
        kill_every_s=args.kill_every,
        deadline_s=args.deadline,
        retries=args.retries,
        inject=args.inject,
        inject_jobs=args.inject_jobs,
        inject_attempts=args.inject_attempts,
        hang_s=args.hang_s,
        hit_fraction=args.hit_fraction,
        seed=args.seed,
        p99_budget_ms=args.p99_budget_ms,
    ))
    print(serve_chaos.render_summary(report))
    if args.out:
        serve_chaos.write_artifact(report, args.out)
        print(f"artifact -> {args.out}")
    return 0 if report["ok"] else 1


def cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache``: inspect and bound the content-addressed run cache.

    ``info`` prints entry count and bytes; ``prune`` evicts
    oldest-first until the cache fits ``--max-mb`` (every entry is
    recomputable, so eviction is always safe); ``clear`` empties it.
    """
    from .harness import RunCache

    cache = RunCache(args.dir)
    if args.cache_command == "info":
        print(f"{args.dir}: {len(cache)} entries, "
              f"{cache.size_bytes()} bytes")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries")
        return 0
    max_bytes = int(args.max_mb * 1024 * 1024)
    removed, freed = cache.prune(max_bytes)
    print(f"pruned {removed} entries ({freed} bytes); "
          f"{len(cache)} entries ({cache.size_bytes()} bytes) remain")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree.

    Algorithm subcommands and trace choices are generated from the
    protocol registry; only the pipeline commands (``experiment``,
    ``campaign``, ``trace``, ``bench``) are declared here.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Holzer-Wattenhofer PODC'12 reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--backend", choices=["object", "vector"],
                       default="object",
                       help="execution engine: 'object' (reference "
                            "simulator) or 'vector' (numpy round engine; "
                            "identical counters, needs the 'vector' "
                            "install extra)")

    _add_protocol_parsers(sub, common)

    p = sub.add_parser(
        "experiment",
        help="regenerate a Table 1 experiment (see EXPERIMENTS.md)",
    )
    p.add_argument("id", help="experiment id, 'all', or 'list'")
    p.add_argument("--scale", choices=["quick", "paper"],
                   default="quick")
    p.add_argument("--output", default=None,
                   help="also write a markdown report to this path")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for harness-backed sweeps")
    p.add_argument("--cache-dir", default=None,
                   help="content-addressed run cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute every run (still refreshes the cache)")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "campaign",
        help="run a declarative sweep: parallel workers + run cache "
             "+ JSONL results (see docs/harness.md)",
    )
    p.add_argument("spec", nargs="?", default=None,
                   help="JSON campaign spec file")
    p.add_argument("--name", default="campaign",
                   help="campaign label (flag mode)")
    p.add_argument("--graphs", default=None,
                   help="comma-separated graph specs; may use {n}")
    p.add_argument("--sizes", default=None,
                   help="comma-separated sizes filling {n}")
    p.add_argument("--seeds", default="0",
                   help="comma-separated simulator seeds")
    p.add_argument("--algorithms", default="apsp",
                   help="comma-separated algorithm names "
                        "(see repro.protocols)")
    p.add_argument("--policies", default="strict",
                   help="comma-separated bandwidth policies")
    p.add_argument("--salt", default="",
                   help="extra cache-key salt")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default 1)")
    p.add_argument("--cache-dir", default=None,
                   help="content-addressed run cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute every run (still refreshes the cache)")
    p.add_argument("--out", default=None,
                   help="JSONL result store path (default <name>.jsonl)")
    p.add_argument("--append", action="store_true",
                   help="append to --out instead of truncating")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress reporting")
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-task wall-clock limit; overdue workers "
                        "are killed and the task records a Timeout")
    p.add_argument("--retries", type=int, default=0,
                   help="retry transient failures (timeout, worker "
                        "death) this many times with backoff")
    p.add_argument("--max-failures", type=int, default=None,
                   help="skip remaining tasks once this many failed")
    p.add_argument("--fail-fast", action="store_true",
                   help="stop scheduling new tasks after the first "
                        "failure (same as --max-failures 1)")
    p.add_argument("--faults", default=None, metavar="JSON",
                   help="fault-injection spec applied to every task, "
                        "e.g. '{\"drop_rate\": 0.02, \"seed\": 7}'")
    p.add_argument("--trace", action="store_true",
                   help="record a repro-trace/1 summary per task into "
                        "the result store (see docs/observability.md)")
    p.add_argument("--backend", choices=["object", "vector"],
                   default=None,
                   help="execution engine for every task (overrides "
                        "the spec's 'backend' field)")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "trace",
        help="capture a structured trace of one run (repro.obs)",
        epilog="Traces follow the repro-trace/1 schema. See "
               "docs/observability.md for the span/event API, the JSONL "
               "schema, and the Chrome trace_event walkthrough; "
               "docs/table1.md maps paper lemmas to trace invariants.",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    pr = trace_sub.add_parser(
        "run",
        help="run an algorithm under capture and export the trace",
        epilog="Examples: "
               "`repro trace run apsp er:32:p=0.15:seed=1 "
               "--export summary`; "
               "`repro trace run ssp torus:4x8 --sources 1,5,9 "
               "--export chrome --out ssp.json`. "
               "With --export summary the exit code is 1 if any paper "
               "invariant (Lemma 1, Remark 3, Theorem 3) fails on the "
               "trace.",
    )
    pr.add_argument("algorithm", choices=_traceable_names(),
                    help="entry point to trace")
    pr.add_argument("graph", help="graph spec (same syntax as run commands)")
    pr.add_argument("--export", choices=["summary", "jsonl", "chrome"],
                    default="summary",
                    help="output form (default: summary)")
    pr.add_argument("--out", default=None,
                    help="output path (default trace_<algo>.json[l]; "
                         "summary prints to stdout)")
    pr.add_argument("--sources", default=None,
                    help="ssp only: comma-separated source ids (default 1)")
    pr.add_argument("--epsilon", type=float, default=None,
                    help="girth/approx: approximation parameter")
    pr.add_argument("--policy", default="strict",
                    help="bandwidth policy (default strict)")
    pr.add_argument("--faults", default=None, metavar="JSON",
                    help="fault-injection spec, e.g. "
                         "'{\"drop_rate\": 0.02, \"seed\": 7}'")
    common(pr)
    pr.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench",
        help="regression-tracked microbenchmarks over the core entry "
             "points (see docs/benchmarks.md)",
    )
    p.add_argument("--quick", action="store_true",
                   help="small smoke-scale instances (CI)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timed repeats per workload "
                        "(default 5 full / 3 quick)")
    p.add_argument("--workloads", default=None,
                   help="comma-separated subset of the pinned suite "
                        "(large-n vector workloads are opt-in by name)")
    p.add_argument("--backend", choices=["object", "vector"],
                   default=None,
                   help="force every selected workload onto this "
                        "execution engine (default: each workload's "
                        "pinned backend)")
    p.add_argument("--out", default=None,
                   help="report path (default BENCH_<date>.json)")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="gate this run against a baseline report")
    p.add_argument("--threshold", type=float, default=0.15,
                   help="median-regression gate (default 0.15 = 15%%)")
    p.add_argument("--warn-only", action="store_true",
                   help="report regressions but exit 0")
    p.add_argument("--strict-counters", action="store_true",
                   help="keep counter divergence fatal even under "
                        "--warn-only (the cross-backend identity gate)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="persistent distance-query HTTP service with request "
             "batching and memoized matrices (see docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8972,
                   help="listen port (0 = ephemeral; default 8972)")
    p.add_argument("--graph", action="append", metavar="SPEC",
                   help="preload this graph spec (repeatable)")
    p.add_argument("--warm", action="append", metavar="SPEC",
                   help="precompute the full APSP matrix for this "
                        "spec before serving (repeatable)")
    p.add_argument("--cache-dir", default=None,
                   help="content-addressed run cache persisting "
                        "matrices across restarts")
    p.add_argument("--max-matrix-mb", type=float, default=64.0,
                   help="in-memory matrix LRU budget (default 64)")
    p.add_argument("--tick-ms", type=float, default=5.0,
                   help="batching window: concurrent queries within "
                        "one tick share a single S-SP run (default 5)")
    p.add_argument("--max-batch", type=int, default=64,
                   help="max sources per batched run (default 64)")
    p.add_argument("--policy", default="strict",
                   help="bandwidth policy for on-demand runs")
    p.add_argument("--backend", choices=["object", "vector"],
                   default="object",
                   help="execution engine for on-demand runs "
                        "(vector needs the 'vector' install extra)")
    p.add_argument("--stats-out", default=None, metavar="PATH",
                   help="write the final /stats snapshot here on "
                        "shutdown")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=2,
                   help="supervised compute worker processes "
                        "(0 = in-process thread; default 2)")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="per-compute wall-clock budget in seconds "
                        "(<=0 disables; default 30)")
    p.add_argument("--retries", type=int, default=1,
                   help="crash retries per compute job (default 1)")
    p.add_argument("--queue-depth", type=int, default=128,
                   help="pending compute jobs before 429 shedding "
                        "(default 128)")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive compute failures before a "
                        "family's circuit breaker opens "
                        "(0 disables; default 3)")
    p.add_argument("--breaker-reset", type=float, default=5.0,
                   help="seconds an open breaker waits before its "
                        "half-open probe (default 5)")
    p.add_argument("--max-inflight", type=int, default=256,
                   help="concurrent request cap before 429 shedding "
                        "(0 disables; default 256)")
    p.add_argument("--max-body-kb", type=float, default=1024.0,
                   help="request body cap in KiB before 413 "
                        "(default 1024)")
    p.add_argument("--read-timeout", type=float, default=30.0,
                   help="seconds to wait for a request body before "
                        "dropping the connection (<=0 disables; "
                        "default 30)")
    p.add_argument("--chaos-inject", default=None, metavar="JSON",
                   help="chaos plan poisoning compute jobs, e.g. "
                        "'{\"mode\": \"crash\", \"jobs\": 2, "
                        "\"attempts\": 1}' (testing only)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "serve-bench",
        help="load-test a distance-query server; reports qps and "
             "p50/p99 latency (see docs/serving.md)",
    )
    p.add_argument("graph", help="graph spec the clients query")
    p.add_argument("--url", default=None,
                   help="target server (default: self-host an "
                        "ephemeral server for the run)")
    p.add_argument("--protocol", default="apsp",
                   choices=["apsp", "weighted-apsp"])
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent keep-alive connections (default 8)")
    p.add_argument("--duration", type=float, default=5.0,
                   help="measured seconds (default 5)")
    p.add_argument("--mode", choices=["distance", "mixed"],
                   default="distance",
                   help="query mix (mixed adds ecc/diameter traffic)")
    p.add_argument("--cold", action="store_true",
                   help="skip the warm-up diameter query (measures "
                        "cold-cache behaviour)")
    p.add_argument("--cache-dir", default=None,
                   help="run cache for the self-hosted server")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the repro-serve-bench/1 JSON artifact")
    p.add_argument("--min-qps", type=float, default=None,
                   help="exit 1 if measured qps falls below this")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="gate this run against a baseline "
                        "repro-serve-bench/1 artifact")
    p.add_argument("--threshold", type=float, default=0.5,
                   help="regression gate vs --compare: fail when qps "
                        "drops (or p99 grows) by more than this "
                        "fraction (default 0.5)")
    p.add_argument("--warn-only", action="store_true",
                   help="report --compare regressions but exit 0")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_serve_bench)

    p = sub.add_parser(
        "serve-chaos",
        help="kill serve workers under live load and gate on the "
             "robustness contract (see docs/serving.md)",
    )
    p.add_argument("--graph-n", type=int, default=24,
                   help="ER family size for the cold-query stream "
                        "(default 24)")
    p.add_argument("--graph-p", type=float, default=0.2)
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent keep-alive connections (default 4)")
    p.add_argument("--duration", type=float, default=8.0,
                   help="seconds of load (default 8)")
    p.add_argument("--workers", type=int, default=2,
                   help="supervised worker processes (default 2)")
    p.add_argument("--kills", type=int, default=1,
                   help="workers to SIGKILL during the run (default 1)")
    p.add_argument("--kill-after", type=float, default=1.0,
                   help="seconds before the first kill (default 1)")
    p.add_argument("--kill-every", type=float, default=2.0,
                   help="seconds between kills (default 2)")
    p.add_argument("--deadline", type=float, default=15.0,
                   help="per-compute deadline in seconds (default 15)")
    p.add_argument("--retries", type=int, default=2,
                   help="crash retries per compute job (default 2)")
    p.add_argument("--inject", default=None,
                   choices=["crash", "hang", "error"],
                   help="additionally poison compute jobs through the "
                        "chaos protocol")
    p.add_argument("--inject-jobs", type=int, default=0,
                   help="how many jobs --inject poisons (default 0)")
    p.add_argument("--inject-attempts", type=int, default=1,
                   help="poison attempts below this per job "
                        "(1 = the crash retry succeeds; default 1)")
    p.add_argument("--hang-s", type=float, default=30.0,
                   help="hang duration for --inject hang (default 30)")
    p.add_argument("--hit-fraction", type=float, default=0.25,
                   help="fraction of repeat (cache-hit) queries "
                        "(default 0.25)")
    p.add_argument("--p99-budget-ms", type=float, default=30000.0,
                   help="client p99 latency gate (default 30000)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the repro-serve-chaos/1 JSON artifact")
    p.set_defaults(func=cmd_serve_chaos)

    p = sub.add_parser(
        "cache",
        help="inspect / prune / clear a content-addressed run cache",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for name, needs_size in (("info", False), ("prune", True),
                             ("clear", False)):
        pc = cache_sub.add_parser(
            name,
            help={"info": "entry count and total bytes",
                  "prune": "evict oldest entries down to --max-mb",
                  "clear": "delete every entry"}[name],
        )
        pc.add_argument("dir", help="cache directory")
        if needs_size:
            pc.add_argument("--max-mb", type=float, required=True,
                            help="target size in MiB")
        pc.set_defaults(func=cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Command handlers return ``None`` (success) or an integer exit
    code; ``repro campaign`` uses a nonzero code to signal that some
    tasks failed even though the campaign itself completed.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    code = args.func(args)
    return 0 if code is None else int(code)


if __name__ == "__main__":
    sys.exit(main())
