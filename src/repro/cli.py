"""Command-line interface: ``python -m repro <command> ...``.

Runs the paper's algorithms on generated or file-loaded topologies and
prints the distributed results plus the round/message/bit costs.  The
graph argument uses a compact spec syntax::

    path:40              a 40-node path
    cycle:24             a 24-node cycle
    grid:5x8             a 5x8 grid
    torus:4x25           a 4x25 torus
    star:30              a star
    complete:12          a clique
    tree:50:seed=3       a random tree
    er:60:p=0.1:seed=7   a connected Erdős–Rényi graph
    dumbbell:20:10       two 20-cliques joined by a 10-edge path
    file:PATH            an edge-list file (repro.graphs.io format)

Examples::

    python -m repro apsp torus:6x6
    python -m repro ssp er:40:p=0.15 --sources 1,5,9
    python -m repro properties grid:5x8
    python -m repro girth cycle:48 --epsilon 0.5
    python -m repro two-vs-four --family diameter2 --n 80
    python -m repro baseline path:32 --algorithm distance-vector
    python -m repro leader er:30:p=0.2
    python -m repro campaign --graphs "path:{n}" --sizes 20,40 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import core, graphs
from .graphs.specs import GraphSpecError
from .graphs.specs import parse_graph as _parse_graph_spec


def parse_graph(spec: str) -> graphs.Graph:
    """Turn a compact graph spec (see module docstring) into a Graph.

    The syntax lives in :mod:`repro.graphs.specs` (shared with the
    campaign harness); this wrapper just converts parse failures into
    the CLI's exit discipline.
    """
    try:
        return _parse_graph_spec(spec)
    except GraphSpecError as exc:
        raise SystemExit(str(exc))


def _print_cost(metrics) -> None:
    print(f"rounds:   {metrics.rounds}")
    print(f"messages: {metrics.messages_total}")
    print(f"bits:     {metrics.bits_total}")


def cmd_apsp(args: argparse.Namespace) -> None:
    """``repro apsp``: Algorithm 1 end to end."""
    graph = parse_graph(args.graph)
    summary = core.run_apsp(graph, seed=args.seed)
    print(f"APSP on {graph!r}")
    _print_cost(summary.metrics)
    print(f"diameter: {summary.diameter()}   radius: {summary.radius()}")
    if args.show_row is not None:
        row = summary.results[args.show_row].distances
        print(f"distances from node {args.show_row}: "
              f"{dict(sorted(row.items()))}")


def cmd_ssp(args: argparse.Namespace) -> None:
    """``repro ssp``: Algorithm 2 for a given source set."""
    graph = parse_graph(args.graph)
    sources = [int(s) for s in args.sources.split(",") if s]
    summary = core.run_ssp(graph, sources, seed=args.seed)
    print(f"S-SP on {graph!r} with S = {sorted(summary.sources)}")
    _print_cost(summary.metrics)
    for node in list(graph.nodes)[: args.show_nodes]:
        print(f"node {node}: "
              f"{dict(sorted(summary.results[node].distances.items()))}")


def cmd_properties(args: argparse.Namespace) -> None:
    """``repro properties``: Lemmas 2-7 exact properties."""
    graph = parse_graph(args.graph)
    summary = core.run_graph_properties(graph, seed=args.seed)
    print(f"graph properties of {graph!r} (Lemmas 2-7)")
    _print_cost(summary.metrics)
    print(f"diameter:   {summary.diameter}")
    print(f"radius:     {summary.radius}")
    print(f"girth:      {summary.girth}")
    print(f"center:     {sorted(summary.center())}")
    print(f"peripheral: {sorted(summary.peripheral())}")


def cmd_approx(args: argparse.Namespace) -> None:
    """``repro approx``: Theorem 4 / Corollary 4 approximations."""
    graph = parse_graph(args.graph)
    summary = core.run_approx_properties(graph, args.epsilon,
                                         seed=args.seed)
    print(f"(x,1+{args.epsilon}) approximation on {graph!r} "
          f"(Theorem 4 / Corollary 4)")
    _print_cost(summary.metrics)
    print(f"diameter estimate: {summary.diameter_estimate}")
    print(f"radius estimate:   {summary.radius_estimate}")
    print(f"center candidates: {sorted(summary.center_approx())}")


def cmd_girth(args: argparse.Namespace) -> None:
    """``repro girth``: exact (Lemma 7) or approximate (Theorem 5)."""
    graph = parse_graph(args.graph)
    if args.epsilon is None:
        summary = core.run_exact_girth(graph, seed=args.seed)
        print(f"exact girth (Lemma 7) on {graph!r}")
    else:
        summary = core.run_approx_girth(graph, args.epsilon,
                                        seed=args.seed)
        print(f"(x,1+{args.epsilon}) girth (Theorem 5) on {graph!r}")
    _print_cost(summary.metrics)
    print(f"girth: {summary.girth}")


def cmd_two_vs_four(args: argparse.Namespace) -> None:
    """``repro two-vs-four``: Algorithm 3 on a promise instance."""
    if args.graph:
        graph = parse_graph(args.graph)
    elif args.family == "diameter2":
        graph = graphs.diameter_two_random(args.n, seed=args.seed)
    else:
        graph = graphs.diameter_four_blobs(args.n, seed=args.seed)
    summary = core.run_two_vs_four(graph, seed=args.seed)
    print(f"2-vs-4 (Algorithm 3 / Theorem 7) on {graph!r}")
    _print_cost(summary.metrics)
    print(f"verdict: diameter {summary.diameter} "
          f"(branch: {summary.branch})")


def cmd_baseline(args: argparse.Namespace) -> None:
    """``repro baseline``: a Section 3.1 strawman vs Algorithm 1."""
    graph = parse_graph(args.graph)
    summary = core.run_baseline_apsp(graph, args.algorithm,
                                     seed=args.seed)
    print(f"baseline '{args.algorithm}' APSP on {graph!r} (Section 3.1)")
    _print_cost(summary.metrics)
    ours = core.run_apsp(graph, seed=args.seed)
    print(f"Algorithm 1 on the same graph: {ours.rounds} rounds "
          f"({summary.rounds / max(1, ours.rounds):.1f}x)")


def cmd_experiment(args: argparse.Namespace) -> None:
    """``repro experiment``: regenerate Table 1 entries on demand."""
    from . import experiments

    if args.id == "list":
        for exp_id in experiments.available():
            print(exp_id)
        return
    overrides = {}
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir
    if args.no_cache:
        overrides["use_cache"] = False
    previous = (
        experiments.configure_execution(**overrides) if overrides else None
    )
    try:
        ids = (experiments.available() if args.id == "all"
               else [args.id])
        failures = []
        collected = []
        for exp_id in ids:
            result = experiments.run(exp_id, scale=args.scale)
            collected.append(result)
            print(result.render())
            print()
            if not result.passed:
                failures.append(exp_id)
        if args.output:
            experiments.write_report(collected, args.output)
            print(f"report written to {args.output}")
    finally:
        if previous is not None:
            experiments.configure_execution(
                jobs=previous.jobs,
                cache_dir=previous.cache_dir,
                use_cache=previous.use_cache,
                timeout_s=previous.timeout_s,
                retries=previous.retries,
                max_failures=previous.max_failures,
            )
    if failures:
        raise SystemExit(f"experiments failed checks: {failures}")


def _csv(text: Optional[str], cast=str) -> List:
    """Split a comma-separated flag value, applying ``cast`` per item."""
    if not text:
        return []
    return [cast(item.strip()) for item in text.split(",") if item.strip()]


def cmd_campaign(args: argparse.Namespace) -> int:
    """``repro campaign``: run a cached, parallel sweep (docs/harness.md).

    Returns the process exit code: 0 when every task produced a result,
    1 when any task failed (the per-task errors are in the JSONL store,
    so a partial campaign is still fully recorded).
    """
    from . import harness

    if args.spec:
        if args.graphs:
            raise SystemExit(
                "give either a spec file or --graphs flags, not both"
            )
        try:
            spec = harness.load_spec(args.spec)
        except (OSError, harness.SpecError) as exc:
            raise SystemExit(str(exc))
    elif args.graphs:
        data = {
            "name": args.name,
            "graphs": _csv(args.graphs),
            "sizes": _csv(args.sizes, int),
            "seeds": _csv(args.seeds, int) or [0],
            "algorithms": _csv(args.algorithms) or ["apsp"],
            "policies": _csv(args.policies) or ["strict"],
            "salt": args.salt,
        }
        try:
            spec = harness.CampaignSpec.from_dict(data)
        except harness.SpecError as exc:
            raise SystemExit(str(exc))
    else:
        raise SystemExit(
            "campaign needs a JSON spec file or --graphs (see docs/harness.md)"
        )
    if args.faults:
        try:
            spec = spec.with_faults(json.loads(args.faults))
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--faults: not valid JSON ({exc})")
        except harness.SpecError as exc:
            raise SystemExit(str(exc))
    if args.trace:
        spec = spec.with_trace()
    out = args.out or f"{spec.name}.jsonl"
    summary = harness.run_campaign(
        spec,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        store_path=out,
        append=args.append,
        show_progress=not args.quiet,
        timeout_s=args.timeout,
        retries=args.retries,
        max_failures=args.max_failures,
        fail_fast=args.fail_fast,
    )
    print(summary.describe())
    print(f"results -> {out}")
    if summary.failures:
        print(
            f"error: {summary.failures} task(s) failed; "
            f"per-task errors recorded in {out}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: regression-tracked microbenchmarks.

    Runs the pinned workload suite (see :mod:`repro.bench.workloads`),
    writes a machine-readable ``BENCH_<date>.json`` report, and — with
    ``--compare BASELINE.json`` — gates on >15% median regressions
    (``--warn-only`` downgrades the gate to a warning, which is how the
    CI smoke job runs it).  Schema and workflow: ``docs/benchmarks.md``.
    """
    from . import bench

    names = _csv(args.workloads) or None
    try:
        report = bench.run_suite(
            quick=args.quick,
            repeats=args.repeats,
            names=names,
            progress=print,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    out = args.out or bench.default_output_path()
    bench.write_report(report, out)
    print(f"report -> {out}")
    if not args.compare:
        return 0
    try:
        baseline = bench.load_report(args.compare)
        comparison = bench.compare_reports(
            baseline, report, threshold=args.threshold
        )
    except (OSError, ValueError) as exc:
        raise SystemExit(f"--compare: {exc}")
    print(f"baseline: {args.compare} "
          f"(generated {baseline.get('generated', '?')})")
    print(comparison.render())
    if not comparison.ok:
        if args.warn_only:
            print("warning: regression gate failed (ignored: --warn-only)",
                  file=sys.stderr)
            return 0
        return 1
    return 0


#: Algorithms ``repro trace run`` can capture.
_TRACE_ALGORITHMS = ("apsp", "ssp", "properties", "girth", "approx",
                     "two-vs-four", "leader")


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace run``: one traced run, exported three ways.

    Captures the run with :func:`repro.obs.capture` and exports per
    ``--export``: ``summary`` prints costs, invariant verdicts and the
    round x edge heatmap (exit 1 if an invariant fails); ``jsonl``
    writes the ``repro-trace/1`` stream; ``chrome`` writes Trace Event
    Format JSON loadable in ``about://tracing`` / Perfetto.
    """
    from . import obs

    graph = parse_graph(args.graph)
    faults = None
    if args.faults:
        try:
            faults = json.loads(args.faults)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--faults: not valid JSON ({exc})")
    kwargs = dict(seed=args.seed, policy=args.policy, faults=faults)
    with obs.capture() as session:
        if args.algorithm == "apsp":
            core.run_apsp(graph, **kwargs)
        elif args.algorithm == "ssp":
            sources = _csv(args.sources, int) or [1]
            core.run_ssp(graph, sources, **kwargs)
        elif args.algorithm == "properties":
            core.run_graph_properties(graph, **kwargs)
        elif args.algorithm == "girth":
            if args.epsilon is None:
                core.run_exact_girth(graph, **kwargs)
            else:
                core.run_approx_girth(graph, args.epsilon, **kwargs)
        elif args.algorithm == "approx":
            core.run_approx_properties(
                graph, args.epsilon if args.epsilon is not None else 0.5,
                **kwargs,
            )
        elif args.algorithm == "two-vs-four":
            core.run_two_vs_four(graph, **kwargs)
        else:
            core.run_leader_election(graph, **kwargs)
    trace = session.build_trace(
        0, label=f"{args.algorithm} {args.graph}"
    )

    if args.export == "summary":
        text = obs.render_summary(trace)
        print(text)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"summary -> {args.out}")
        failed = [r for r in obs.check(trace) if not r.ok]
        return 1 if failed else 0

    if args.export == "chrome":
        out = args.out or f"trace_{args.algorithm}.json"
        obs.write_chrome(trace, out)
        print(f"chrome trace -> {out} "
              f"(load in about://tracing or ui.perfetto.dev)")
    else:
        out = args.out or f"trace_{args.algorithm}.jsonl"
        obs.write_jsonl(trace, out)
        print(f"repro-trace/1 stream -> {out}")
    print(f"rounds: {trace.rounds}   messages: {len(trace.messages)}   "
          f"events: {len(trace.events)}   spans: {len(trace.spans)}")
    return 0


def cmd_leader(args: argparse.Namespace) -> None:
    """``repro leader``: min-id election."""
    graph = parse_graph(args.graph)
    results, metrics = core.run_leader_election(graph, seed=args.seed)
    leader = next(iter(results.values())).leader
    print(f"leader election on {graph!r}")
    _print_cost(metrics)
    print(f"leader: {leader}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Holzer-Wattenhofer PODC'12 reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("apsp", help="Algorithm 1: APSP in O(n)")
    p.add_argument("graph")
    p.add_argument("--show-row", type=int, default=None,
                   help="print one node's distance row")
    common(p)
    p.set_defaults(func=cmd_apsp)

    p = sub.add_parser("ssp", help="Algorithm 2: S-SP in O(|S|+D)")
    p.add_argument("graph")
    p.add_argument("--sources", required=True,
                   help="comma-separated source ids")
    p.add_argument("--show-nodes", type=int, default=3)
    common(p)
    p.set_defaults(func=cmd_ssp)

    p = sub.add_parser("properties",
                       help="Lemmas 2-7: all exact properties")
    p.add_argument("graph")
    common(p)
    p.set_defaults(func=cmd_properties)

    p = sub.add_parser("approx",
                       help="Theorem 4 / Corollary 4: (x,1+eps)")
    p.add_argument("graph")
    p.add_argument("--epsilon", type=float, default=0.5)
    common(p)
    p.set_defaults(func=cmd_approx)

    p = sub.add_parser("girth", help="Lemma 7 / Theorem 5")
    p.add_argument("graph")
    p.add_argument("--epsilon", type=float, default=None,
                   help="approximate with this epsilon (omit for exact)")
    common(p)
    p.set_defaults(func=cmd_girth)

    p = sub.add_parser("two-vs-four",
                       help="Algorithm 3 / Theorem 7 (promise input)")
    p.add_argument("--graph", default=None)
    p.add_argument("--family", choices=["diameter2", "diameter4"],
                   default="diameter2")
    p.add_argument("--n", type=int, default=60)
    common(p)
    p.set_defaults(func=cmd_two_vs_four)

    p = sub.add_parser("baseline",
                       help="Section 3.1 strawmen APSP")
    p.add_argument("graph")
    p.add_argument("--algorithm", default="distance-vector",
                   choices=["sequential-bfs", "distance-vector",
                            "distance-vector-delta", "link-state"])
    common(p)
    p.set_defaults(func=cmd_baseline)

    p = sub.add_parser("leader", help="min-id leader election in O(n)")
    p.add_argument("graph")
    common(p)
    p.set_defaults(func=cmd_leader)

    p = sub.add_parser(
        "experiment",
        help="regenerate a Table 1 experiment (see EXPERIMENTS.md)",
    )
    p.add_argument("id", help="experiment id, 'all', or 'list'")
    p.add_argument("--scale", choices=["quick", "paper"],
                   default="quick")
    p.add_argument("--output", default=None,
                   help="also write a markdown report to this path")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for harness-backed sweeps")
    p.add_argument("--cache-dir", default=None,
                   help="content-addressed run cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute every run (still refreshes the cache)")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "campaign",
        help="run a declarative sweep: parallel workers + run cache "
             "+ JSONL results (see docs/harness.md)",
    )
    p.add_argument("spec", nargs="?", default=None,
                   help="JSON campaign spec file")
    p.add_argument("--name", default="campaign",
                   help="campaign label (flag mode)")
    p.add_argument("--graphs", default=None,
                   help="comma-separated graph specs; may use {n}")
    p.add_argument("--sizes", default=None,
                   help="comma-separated sizes filling {n}")
    p.add_argument("--seeds", default="0",
                   help="comma-separated simulator seeds")
    p.add_argument("--algorithms", default="apsp",
                   help="comma-separated algorithm names")
    p.add_argument("--policies", default="strict",
                   help="comma-separated bandwidth policies")
    p.add_argument("--salt", default="",
                   help="extra cache-key salt")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default 1)")
    p.add_argument("--cache-dir", default=None,
                   help="content-addressed run cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute every run (still refreshes the cache)")
    p.add_argument("--out", default=None,
                   help="JSONL result store path (default <name>.jsonl)")
    p.add_argument("--append", action="store_true",
                   help="append to --out instead of truncating")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress reporting")
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-task wall-clock limit; overdue workers "
                        "are killed and the task records a Timeout")
    p.add_argument("--retries", type=int, default=0,
                   help="retry transient failures (timeout, worker "
                        "death) this many times with backoff")
    p.add_argument("--max-failures", type=int, default=None,
                   help="skip remaining tasks once this many failed")
    p.add_argument("--fail-fast", action="store_true",
                   help="stop scheduling new tasks after the first "
                        "failure (same as --max-failures 1)")
    p.add_argument("--faults", default=None, metavar="JSON",
                   help="fault-injection spec applied to every task, "
                        "e.g. '{\"drop_rate\": 0.02, \"seed\": 7}'")
    p.add_argument("--trace", action="store_true",
                   help="record a repro-trace/1 summary per task into "
                        "the result store (see docs/observability.md)")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "trace",
        help="capture a structured trace of one run (repro.obs)",
        epilog="Traces follow the repro-trace/1 schema. See "
               "docs/observability.md for the span/event API, the JSONL "
               "schema, and the Chrome trace_event walkthrough; "
               "docs/table1.md maps paper lemmas to trace invariants.",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    pr = trace_sub.add_parser(
        "run",
        help="run an algorithm under capture and export the trace",
        epilog="Examples: "
               "`repro trace run apsp er:32:p=0.15:seed=1 "
               "--export summary`; "
               "`repro trace run ssp torus:4x8 --sources 1,5,9 "
               "--export chrome --out ssp.json`. "
               "With --export summary the exit code is 1 if any paper "
               "invariant (Lemma 1, Remark 3, Theorem 3) fails on the "
               "trace.",
    )
    pr.add_argument("algorithm", choices=list(_TRACE_ALGORITHMS),
                    help="entry point to trace")
    pr.add_argument("graph", help="graph spec (same syntax as run commands)")
    pr.add_argument("--export", choices=["summary", "jsonl", "chrome"],
                    default="summary",
                    help="output form (default: summary)")
    pr.add_argument("--out", default=None,
                    help="output path (default trace_<algo>.json[l]; "
                         "summary prints to stdout)")
    pr.add_argument("--sources", default=None,
                    help="ssp only: comma-separated source ids (default 1)")
    pr.add_argument("--epsilon", type=float, default=None,
                    help="girth/approx: approximation parameter")
    pr.add_argument("--policy", default="strict",
                    help="bandwidth policy (default strict)")
    pr.add_argument("--faults", default=None, metavar="JSON",
                    help="fault-injection spec, e.g. "
                         "'{\"drop_rate\": 0.02, \"seed\": 7}'")
    common(pr)
    pr.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench",
        help="regression-tracked microbenchmarks over the core entry "
             "points (see docs/benchmarks.md)",
    )
    p.add_argument("--quick", action="store_true",
                   help="small smoke-scale instances (CI)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timed repeats per workload "
                        "(default 5 full / 3 quick)")
    p.add_argument("--workloads", default=None,
                   help="comma-separated subset of the pinned suite")
    p.add_argument("--out", default=None,
                   help="report path (default BENCH_<date>.json)")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="gate this run against a baseline report")
    p.add_argument("--threshold", type=float, default=0.15,
                   help="median-regression gate (default 0.15 = 15%%)")
    p.add_argument("--warn-only", action="store_true",
                   help="report regressions but exit 0")
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Command handlers return ``None`` (success) or an integer exit
    code; ``repro campaign`` uses a nonzero code to signal that some
    tasks failed even though the campaign itself completed.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    code = args.func(args)
    return 0 if code is None else int(code)


if __name__ == "__main__":
    sys.exit(main())
