"""Benchmark execution: timed repeats, machine-readable reports.

Runs each :class:`~repro.bench.workloads.Workload` ``repeats`` times
under ``time.perf_counter`` (pytest-independent — importing pytest or a
plugin would distort exactly the hot path we are measuring), checks that
the simulation itself is deterministic across repeats, and assembles a
JSON-pure report in the ``repro-bench/1`` schema documented in
``docs/benchmarks.md``.

Wall-time statistics are median and p90 over the repeats (plus min /
max / mean for context): the median is the regression-tracked number —
robust against a single noisy repeat on shared CI hardware — and p90
bounds the tail.  Peak RSS comes from ``resource.getrusage`` and is a
*process-wide high-water mark*: it can only grow across workloads, so
per-workload values are upper bounds attributable to the largest
workload run so far.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from dataclasses import replace
from datetime import date
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

try:
    import resource
except ImportError:  # pragma: no cover — non-POSIX platforms
    resource = None

from .workloads import Workload, select

#: Report schema identifier; bump when the shape changes.
SCHEMA = "repro-bench/1"

FULL_REPEATS = 5
QUICK_REPEATS = 3


def _peak_rss_kb() -> Optional[int]:
    """Process peak RSS in KiB (``None`` where unavailable)."""
    if resource is None:  # pragma: no cover
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss is KiB on Linux, bytes on macOS.
    scale = 1024 if sys.platform == "darwin" else 1
    return int(usage.ru_maxrss) // scale


def _percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def run_workload(
    workload: Workload,
    *,
    quick: bool = False,
    repeats: Optional[int] = None,
) -> Dict[str, object]:
    """Measure one workload; returns its JSON-pure report entry."""
    repeats = repeats or (QUICK_REPEATS if quick else FULL_REPEATS)
    wall: List[float] = []
    reference = None
    for _ in range(repeats):
        start = time.perf_counter()
        metrics = workload.run(quick)
        wall.append(time.perf_counter() - start)
        snapshot = (metrics.rounds, metrics.messages_total,
                    metrics.bits_total)
        if reference is None:
            reference = snapshot
        elif snapshot != reference:
            raise AssertionError(
                f"{workload.name}: non-deterministic run "
                f"({snapshot} != {reference})"
            )
    rounds, messages, bits = reference
    return {
        "graph": workload.graph_spec(quick),
        "algorithm": workload.algorithm,
        "backend": workload.backend,
        "seed": workload.seed,
        "repeats": repeats,
        "wall_s": {
            "median": statistics.median(wall),
            "p90": _percentile(wall, 0.9),
            "min": min(wall),
            "max": max(wall),
            "mean": statistics.fmean(wall),
        },
        "rounds": rounds,
        "messages": messages,
        "bits": bits,
        "peak_rss_kb": _peak_rss_kb(),
    }


def run_suite(
    *,
    quick: bool = False,
    repeats: Optional[int] = None,
    names: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[Workload]] = None,
    backend: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run a benchmark suite and return the full ``repro-bench/1`` report.

    ``names`` selects a subset of the pinned suite; ``workloads``
    (tests only) substitutes explicit workload objects; ``backend``
    forces every selected workload onto one execution engine (the
    cross-backend divergence gate runs the object-backend suite under
    ``backend="vector"`` and compares counters against the committed
    object baseline).
    """
    chosen = tuple(workloads) if workloads is not None else select(names)
    if backend is not None:
        chosen = tuple(replace(w, backend=backend) for w in chosen)
    entries: Dict[str, object] = {}
    for workload in chosen:
        if progress is not None:
            progress(f"{workload.name}: {workload.graph_spec(quick)} ...")
        entry = run_workload(workload, quick=quick, repeats=repeats)
        entries[workload.name] = entry
        if progress is not None:
            wall = entry["wall_s"]
            progress(
                f"{workload.name}: median {wall['median']:.3f}s "
                f"p90 {wall['p90']:.3f}s over {entry['repeats']} repeats "
                f"({entry['rounds']} rounds, {entry['messages']} msgs)"
            )
    return {
        "schema": SCHEMA,
        "generated": date.today().isoformat(),
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": entries,
    }


def default_output_path() -> str:
    """The conventional report filename: ``BENCH_<date>.json``."""
    return f"BENCH_{date.today().isoformat()}.json"


def write_report(report: Dict[str, object], path: str) -> None:
    """Write a report as pretty-printed JSON (parents created)."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")


def load_report(path: str) -> Dict[str, object]:
    """Load a report, validating the schema marker."""
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    schema = report.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported benchmark schema {schema!r} "
            f"(expected {SCHEMA!r})"
        )
    return report
