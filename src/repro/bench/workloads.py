"""Pinned microbenchmark workloads.

Each :class:`Workload` names one registered protocol on a fixed graph
spec and seed, so every benchmark invocation — today, on CI, or three
PRs from now — measures exactly the same simulation.  Two scales exist:

* **full** — the regression-tracked sizes (``bench_apsp`` is ``n = 128``,
  the workload the perf acceptance gate is defined on);
* **quick** — small instances for CI smoke runs and local sanity checks
  (``repro bench --quick``).

Dispatch goes through :mod:`repro.protocols` — a workload's
``algorithm`` is a registry name, so any newly registered protocol is
benchmarkable without touching this module.

Determinism is part of the contract: a workload's rounds/messages/bits
must be identical on every repeat, and the runner asserts that.  Only
wall time and RSS may vary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..graphs.specs import parse_graph
from ..protocols import TaskError
from ..protocols import run as run_protocol


@dataclass(frozen=True)
class Workload:
    """One pinned benchmark: a protocol on a fixed graph spec and seed."""

    name: str
    algorithm: str
    #: Graph spec at full (regression-tracked) scale.
    graph: str
    #: Graph spec at quick (smoke) scale.
    quick_graph: str
    seed: int = 0
    #: Source ids for S-SP; ids absent from the (smaller) quick graph
    #: are filtered out here, before the registry validates.
    sources: Tuple[int, ...] = ()
    #: Approximation parameter for approximate protocols.
    epsilon: float = None
    #: Extra protocol params as sorted ``(key, value)`` pairs.
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Execution engine (``object`` or ``vector``); the registry
    #: validates availability and capability at dispatch time.
    backend: str = "object"

    def graph_spec(self, quick: bool) -> str:
        """The spec measured at the requested scale."""
        return self.quick_graph if quick else self.graph

    def run(self, quick: bool):
        """Execute once; returns the run's :class:`RunMetrics`."""
        graph = parse_graph(self.graph_spec(quick))
        params: Dict[str, Any] = dict(self.params)
        if self.sources:
            params["sources"] = [
                s for s in self.sources if graph.has_node(s)
            ]
        if self.epsilon is not None:
            params["epsilon"] = self.epsilon
        if self.backend != "object":
            params["backend"] = self.backend
        try:
            outcome = run_protocol(
                self.algorithm, graph, params, seed=self.seed
            )
        except TaskError as exc:
            raise ValueError(
                f"workload {self.name!r}: {exc}"
            )
        return outcome.metrics


#: The pinned suite, in execution order.  ``bench_apsp`` (n = 128) is the
#: workload the ISSUE's speedup gate is measured on; the others cover the
#: remaining core entry points.
WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        Workload(
            name="bench_apsp",
            algorithm="apsp",
            graph="er:128:p=0.06:seed=1",
            quick_graph="er:32:p=0.15:seed=1",
        ),
        Workload(
            name="bench_ssp",
            algorithm="ssp",
            graph="er:96:p=0.07:seed=2",
            quick_graph="er:32:p=0.15:seed=2",
            sources=(1, 17, 33, 49),
        ),
        Workload(
            name="bench_two_vs_four",
            algorithm="two-vs-four",
            graph="diameter2:96:seed=1",
            quick_graph="diameter2:32:seed=1",
        ),
        Workload(
            name="bench_girth",
            algorithm="girth",
            graph="torus:8x12",
            quick_graph="torus:4x6",
        ),
        Workload(
            name="bench_weighted",
            algorithm="weighted-apsp",
            graph="torus:4x6",
            quick_graph="path:8",
            params=(("max_weight", 3),),
        ),
    )
}


#: Large-n workloads that only the vector backend can run in sensible
#: time.  Kept out of the default suite — ``select(None)`` must stay
#: runnable in a numpy-free environment — and benchmarked explicitly
#: via ``repro bench --workloads bench_apsp_n512,...`` against the
#: committed ``benchmarks/results/baseline_vector.json``.
LARGE_WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        Workload(
            name="bench_apsp_n512",
            algorithm="apsp",
            graph="er:512:p=0.02:seed=1",
            quick_graph="er:128:p=0.06:seed=1",
            backend="vector",
        ),
        Workload(
            name="bench_apsp_n1024",
            algorithm="apsp",
            graph="er:1024:p=0.01:seed=1",
            quick_graph="er:160:p=0.05:seed=1",
            backend="vector",
        ),
        Workload(
            name="bench_apsp_n2048",
            algorithm="apsp",
            graph="er:2048:p=0.005:seed=1",
            quick_graph="er:192:p=0.05:seed=1",
            backend="vector",
        ),
        Workload(
            name="bench_ssp_n512",
            algorithm="ssp",
            graph="er:512:p=0.02:seed=2",
            quick_graph="er:128:p=0.06:seed=2",
            sources=(1, 65, 129, 257, 385),
            backend="vector",
        ),
        Workload(
            name="bench_ssp_n1024",
            algorithm="ssp",
            graph="er:1024:p=0.01:seed=2",
            quick_graph="er:160:p=0.05:seed=2",
            sources=(1, 129, 257, 513, 769),
            backend="vector",
        ),
        Workload(
            name="bench_ssp_n2048",
            algorithm="ssp",
            graph="er:2048:p=0.005:seed=2",
            quick_graph="er:192:p=0.05:seed=2",
            sources=(1, 257, 513, 1025, 1537),
            backend="vector",
        ),
    )
}

#: Every addressable workload (default suite + large-n extras).
ALL_WORKLOADS: Dict[str, Workload] = {**WORKLOADS, **LARGE_WORKLOADS}


def select(names=None) -> Tuple[Workload, ...]:
    """Resolve a workload subset (``None`` = the default suite, in order).

    The large-n vector workloads are opt-in by name only: the default
    suite must keep running on a numpy-free install.
    """
    if names is None:
        return tuple(WORKLOADS.values())
    unknown = [name for name in names if name not in ALL_WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workload(s) {unknown}; expected a subset of "
            f"{sorted(ALL_WORKLOADS)}"
        )
    return tuple(ALL_WORKLOADS[name] for name in names)
