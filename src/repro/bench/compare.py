"""Report comparison: the >15% regression gate.

Matches two ``repro-bench/1`` reports workload by workload on the
*median* wall time and flags every workload whose median grew by more
than ``threshold`` (default 15%).  Simulation counters (rounds,
messages, bits) are compared too: a cost-counter change is reported as
a divergence, because the engine's observable behaviour is supposed to
be frozen — if the counters moved, the wall-clock comparison is
measuring a different computation.

Comparisons only make sense between reports of the same mode (full vs
quick) — the graph sizes differ — so mismatched modes are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Median growth beyond which a workload counts as regressed.
DEFAULT_THRESHOLD = 0.15


@dataclass(frozen=True)
class WorkloadDelta:
    """One workload's baseline-vs-current comparison."""

    name: str
    baseline_median_s: float
    current_median_s: float
    #: ``current / baseline`` — above ``1 + threshold`` is a regression.
    ratio: float
    #: ``baseline / current`` — the human-friendly speedup factor.
    speedup: float
    regressed: bool
    #: Counter divergences, e.g. ``rounds: 79 -> 81`` (empty = clean).
    divergences: Tuple[str, ...] = ()


@dataclass
class Comparison:
    """Outcome of comparing a current report against a baseline."""

    deltas: List[WorkloadDelta] = field(default_factory=list)
    #: Workloads present in only one of the two reports.
    only_in_baseline: Tuple[str, ...] = ()
    only_in_current: Tuple[str, ...] = ()
    threshold: float = DEFAULT_THRESHOLD

    @property
    def regressions(self) -> List[WorkloadDelta]:
        """Deltas that exceed the regression threshold."""
        return [d for d in self.deltas if d.regressed]

    @property
    def divergent(self) -> List[WorkloadDelta]:
        """Deltas whose simulation counters changed."""
        return [d for d in self.deltas if d.divergences]

    @property
    def ok(self) -> bool:
        """Gate verdict: no regression and no counter divergence."""
        return not self.regressions and not self.divergent

    def render(self) -> str:
        """Human-readable table plus verdict lines."""
        lines = [
            f"{'workload':<22} {'baseline':>10} {'current':>10} "
            f"{'speedup':>8}  verdict",
        ]
        for delta in self.deltas:
            if delta.regressed:
                verdict = f"REGRESSED (+{(delta.ratio - 1) * 100:.0f}%)"
            elif delta.divergences:
                verdict = "DIVERGED: " + "; ".join(delta.divergences)
            else:
                verdict = "ok"
            lines.append(
                f"{delta.name:<22} {delta.baseline_median_s:>9.3f}s "
                f"{delta.current_median_s:>9.3f}s "
                f"{delta.speedup:>7.2f}x  {verdict}"
            )
        for name in self.only_in_baseline:
            lines.append(f"{name:<22} (missing from current report)")
        for name in self.only_in_current:
            lines.append(f"{name:<22} (new; no baseline)")
        if self.ok:
            lines.append(
                f"gate: OK (no workload regressed by more than "
                f"{self.threshold * 100:.0f}%)"
            )
        else:
            problems = [d.name for d in self.regressions]
            problems += [d.name for d in self.divergent
                         if d.name not in problems]
            lines.append(f"gate: FAIL ({', '.join(problems)})")
        return "\n".join(lines)


_COUNTERS = ("rounds", "messages", "bits")


def compare_reports(
    baseline: Dict[str, object],
    current: Dict[str, object],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> Comparison:
    """Compare two reports; see the module docstring for semantics."""
    if baseline.get("mode") != current.get("mode"):
        raise ValueError(
            f"cannot compare a {current.get('mode')!r} run against a "
            f"{baseline.get('mode')!r} baseline; rerun with matching scale"
        )
    base_entries: Dict[str, Dict] = baseline.get("workloads", {})
    cur_entries: Dict[str, Dict] = current.get("workloads", {})
    comparison = Comparison(
        only_in_baseline=tuple(sorted(set(base_entries) - set(cur_entries))),
        only_in_current=tuple(sorted(set(cur_entries) - set(base_entries))),
        threshold=threshold,
    )
    for name in sorted(set(base_entries) & set(cur_entries)):
        base, cur = base_entries[name], cur_entries[name]
        base_median = float(base["wall_s"]["median"])
        cur_median = float(cur["wall_s"]["median"])
        ratio = cur_median / base_median if base_median > 0 else float("inf")
        divergences = tuple(
            f"{counter}: {base[counter]} -> {cur[counter]}"
            for counter in _COUNTERS
            if base.get(counter) != cur.get(counter)
        )
        comparison.deltas.append(WorkloadDelta(
            name=name,
            baseline_median_s=base_median,
            current_median_s=cur_median,
            ratio=ratio,
            speedup=base_median / cur_median if cur_median > 0
            else float("inf"),
            regressed=ratio > 1.0 + threshold,
            divergences=divergences,
        ))
    return comparison
