"""``repro.bench`` — regression-tracked microbenchmarks.

A pytest-independent benchmark harness over the core entry points
(APSP, S-SP, 2-vs-4, girth) on pinned graph specs and seeds:

* :mod:`~repro.bench.workloads` — the pinned workload suite;
* :mod:`~repro.bench.runner` — timed execution producing machine-
  readable ``BENCH_<date>.json`` reports (median/p90 wall time, rounds,
  messages, bits, peak RSS);
* :mod:`~repro.bench.compare` — the ``--compare BASELINE.json`` mode
  that fails on >15% median regressions.

CLI: ``repro bench [--quick] [--compare BASELINE.json]``; the schema
and workflow are documented in ``docs/benchmarks.md``.  The committed
trajectory lives in ``benchmarks/results/`` (``baseline.json`` plus the
dated ``BENCH_*.json`` history).
"""

from .compare import (
    DEFAULT_THRESHOLD,
    Comparison,
    WorkloadDelta,
    compare_reports,
)
from .runner import (
    FULL_REPEATS,
    QUICK_REPEATS,
    SCHEMA,
    default_output_path,
    load_report,
    run_suite,
    run_workload,
    write_report,
)
from .workloads import WORKLOADS, Workload, select

__all__ = [
    "Comparison",
    "DEFAULT_THRESHOLD",
    "FULL_REPEATS",
    "QUICK_REPEATS",
    "SCHEMA",
    "WORKLOADS",
    "Workload",
    "WorkloadDelta",
    "compare_reports",
    "default_output_path",
    "load_report",
    "run_suite",
    "run_workload",
    "select",
    "write_report",
]
