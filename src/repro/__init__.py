"""repro — a reproduction of *Optimal Distributed All Pairs Shortest
Paths and Applications* (Holzer & Wattenhofer, PODC 2012).

The package has five layers:

* :mod:`repro.congest` — a synchronous CONGEST-model network simulator
  with strict per-edge bandwidth accounting (the paper's model).
* :mod:`repro.graphs` — graph types, a topology zoo, sequential
  oracles, and the paper's lower-bound gadget families.
* :mod:`repro.core` — the paper's algorithms: APSP (Algorithm 1), S-SP
  (Algorithm 2), all Lemma 2-7 graph properties, the Theorem 4/5
  approximations, the 2-vs-4 test (Algorithm 3), and baselines.
* :mod:`repro.protocols` — the protocol registry: each algorithm
  declared once (entry point, typed param schema, capability flags),
  run everywhere through the same ``RunRequest → RunOutcome``
  envelope (``docs/protocols.md``).
* :mod:`repro.harness` — the campaign harness: declarative sweeps
  sharded across worker processes, a content-addressed run cache, and
  a JSONL result store (``docs/harness.md``).

Quickstart::

    from repro import graphs, core

    g = graphs.torus_graph(6, 6)
    apsp = core.run_apsp(g)
    print(apsp.diameter(), apsp.rounds)   # exact diameter, O(n) rounds
"""

from . import congest, core, graphs, harness, protocols

__version__ = "1.1.0"

__all__ = [
    "congest", "core", "graphs", "harness", "protocols", "__version__",
]
