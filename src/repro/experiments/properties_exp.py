"""E3 + E4 — Lemmas 2–6: exact graph properties in Θ̃(n)."""

from __future__ import annotations

from ..graphs import (
    center,
    diameter,
    erdos_renyi_graph,
    peripheral_vertices,
    radius,
    torus_graph,
)
from ..protocols import run as run_protocol
from .base import ExperimentResult, experiment, fit_loglog_slope

SWEEPS = {"quick": [20, 40], "paper": [30, 60, 90, 120]}


def instance(n: int):
    """The random sparse instance used by the E3 sweep."""
    return erdos_renyi_graph(
        n, min(1.0, 8.0 / n), seed=11, ensure_connected=True
    )


@experiment("e3")
def e3_exact_properties(scale: str) -> ExperimentResult:
    """E3: all Lemma 2-6 values exact, rounds linear."""
    result = ExperimentResult(
        exp_id="e3",
        title="exact ecc/diam/radius/center/peripheral (Lemmas 2-6)",
        headers=["n", "diam", "rad", "|center|", "|periph|", "rounds",
                 "rounds/n"],
    )
    points = []
    for n in SWEEPS[scale]:
        graph = instance(n)
        summary = run_protocol(
            "properties", graph, {"include_girth": False}
        ).summary
        result.require("diameter-exact",
                       summary.diameter == diameter(graph))
        result.require("radius-exact", summary.radius == radius(graph))
        result.require("center-exact", summary.center() == center(graph))
        result.require(
            "peripheral-exact",
            summary.peripheral() == peripheral_vertices(graph),
        )
        points.append((n, summary.rounds))
        result.rows.append((
            n, summary.diameter, summary.radius,
            len(summary.center()), len(summary.peripheral()),
            summary.rounds, f"{summary.rounds / n:.2f}",
        ))
    slope = fit_loglog_slope([p[0] for p in points],
                             [p[1] for p in points])
    result.require("slope-linear", 0.6 <= slope <= 1.4)
    result.notes.append(
        f"rounds ~ n^{slope:.2f} (Lemmas 2-6 predict 1.0); all values "
        "equal the sequential oracle"
    )
    return result


@experiment("e4")
def e4_aggregation_overhead(scale: str) -> ExperimentResult:
    """E4: aggregation adds only O(D) on top of APSP."""
    result = ExperimentResult(
        exp_id="e4",
        title="Lemma 3-6 aggregation overhead on top of APSP is O(D)",
        headers=["n", "D", "APSP rounds", "props rounds", "overhead",
                 "overhead/D"],
    )
    for n in SWEEPS[scale]:
        graph = torus_graph(6, max(3, n // 6))
        apsp_rounds = run_protocol("apsp", graph).summary.rounds
        props_rounds = run_protocol(
            "properties", graph, {"include_girth": False}
        ).summary.rounds
        overhead = props_rounds - apsp_rounds
        d = diameter(graph)
        result.rows.append((
            graph.n, d, apsp_rounds, props_rounds, overhead,
            f"{overhead / max(1, d):.2f}",
        ))
        result.require("overhead-o-d", overhead <= 10 * d + 20)
    result.notes.append(
        "overhead/D stays O(1): 'aggregate using T1 in additional time "
        "O(D)'"
    )
    return result
