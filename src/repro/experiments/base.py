"""Experiment framework: structured, programmatic Table 1 regeneration.

Every experiment from EXPERIMENTS.md is a function returning an
:class:`ExperimentResult`: the measured rows, human-readable notes, the
fitted scalings, and a dictionary of named *checks* — the pass/fail
claims the benchmark suite asserts.  The same functions power

* ``pytest benchmarks/`` (asserts the checks, publishes the tables),
* ``python -m repro experiment <id>`` (prints a table on demand),
* programmatic use (``repro.experiments.run("e1")``).

Experiments accept a ``scale``:

* ``"quick"`` — small sweeps, seconds; used by the test suite;
* ``"paper"`` — the sweep sizes EXPERIMENTS.md reports (default).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

#: Valid scales.
SCALES = ("quick", "paper")


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Named claims; the benchmark harness asserts each is True.
    checks: Dict[str, bool] = field(default_factory=dict)

    def require(self, name: str, condition: bool) -> None:
        """Record a named check (and keep the first failure sticky)."""
        self.checks[name] = bool(condition) and self.checks.get(name, True)

    @property
    def passed(self) -> bool:
        """Whether every named check held."""
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        """Names of the checks that failed."""
        return [name for name, ok in self.checks.items() if not ok]

    def render(self) -> str:
        """Plain-text table (same format as benchmarks/results)."""
        str_rows = [[str(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(self.headers[i]),
                *(len(r[i]) for r in str_rows)) if str_rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [f"== {self.exp_id.upper()}: {self.title} =="]
        lines.append("  ".join(
            h.ljust(w) for h, w in zip(self.headers, widths)
        ))
        lines.append("  ".join("-" * w for w in widths))
        for row in str_rows:
            lines.append("  ".join(
                c.ljust(w) for c, w in zip(row, widths)
            ))
        for note in self.notes:
            lines.append(f"  note: {note}")
        status = "PASS" if self.passed else \
            f"FAIL ({', '.join(self.failed_checks())})"
        lines.append(f"  checks: {status}")
        return "\n".join(lines)


#: Registry of experiment id → (title, runner).
_REGISTRY: Dict[str, Callable[[str], ExperimentResult]] = {}


def experiment(exp_id: str):
    """Decorator registering an experiment runner under ``exp_id``."""

    def wrap(fn: Callable[[str], ExperimentResult]):
        _REGISTRY[exp_id] = fn
        return fn

    return wrap


def available() -> List[str]:
    """All registered experiment ids, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def run(exp_id: str, scale: str = "paper") -> ExperimentResult:
    """Run one experiment by id."""
    _ensure_loaded()
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    try:
        fn = _REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {available()}"
        )
    return fn(scale)


def run_all(scale: str = "paper") -> List[ExperimentResult]:
    """Run every registered experiment."""
    return [run(exp_id, scale) for exp_id in available()]


def write_report(results: Sequence[ExperimentResult], path) -> None:
    """Write a markdown report of experiment results to ``path``.

    The report mirrors EXPERIMENTS.md's structure: one section per
    experiment with its measured table, notes and check status — handy
    for regenerating the record after a sweep
    (``python -m repro experiment all --output report.md``).
    """
    from pathlib import Path

    lines = ["# Table 1 regeneration report", ""]
    passed = sum(1 for r in results if r.passed)
    lines.append(
        f"{passed}/{len(results)} experiments passed all checks."
    )
    lines.append("")
    for result in results:
        lines.append(f"## {result.exp_id.upper()} — {result.title}")
        lines.append("")
        lines.append("| " + " | ".join(result.headers) + " |")
        lines.append("|" + "---|" * len(result.headers))
        for row in result.rows:
            lines.append(
                "| " + " | ".join(str(cell) for cell in row) + " |"
            )
        lines.append("")
        for note in result.notes:
            lines.append(f"*{note}*")
        status = "**PASS**" if result.passed else \
            f"**FAIL** ({', '.join(result.failed_checks())})"
        lines.append("")
        lines.append(f"Checks: {status}")
        lines.append("")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# Harness integration: cached / parallel sweep execution.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionConfig:
    """Process-wide defaults for how experiment sweeps execute.

    Experiments that route their sweeps through :func:`run_campaign`
    pick these up automatically; the CLI (``--jobs``/``--cache-dir``)
    and the benchmark suite set them via :func:`configure_execution`.
    The hardening knobs mirror :func:`repro.harness.campaign.run_tasks`:
    a per-task wall-clock timeout, a transient-failure retry budget,
    and a campaign-wide failure cap.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    use_cache: bool = True
    timeout_s: Optional[float] = None
    retries: int = 0
    max_failures: Optional[int] = None


_EXECUTION = ExecutionConfig()

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET: Any = object()


def execution_config() -> ExecutionConfig:
    """The current execution defaults (a copy)."""
    return replace(_EXECUTION)


def configure_execution(
    *,
    jobs: Optional[int] = None,
    cache_dir: Any = _UNSET,
    use_cache: Optional[bool] = None,
    timeout_s: Any = _UNSET,
    retries: Optional[int] = None,
    max_failures: Any = _UNSET,
) -> ExecutionConfig:
    """Update the execution defaults; returns the *previous* config.

    Only the arguments actually passed change; restore by passing the
    returned config's fields back in.  ``timeout_s`` and
    ``max_failures`` use a sentinel default because ``None`` is a
    meaningful value for them (no limit).
    """
    global _EXECUTION
    previous = _EXECUTION
    _EXECUTION = ExecutionConfig(
        jobs=previous.jobs if jobs is None else max(1, int(jobs)),
        cache_dir=(
            previous.cache_dir if cache_dir is _UNSET else cache_dir
        ),
        use_cache=(
            previous.use_cache if use_cache is None else bool(use_cache)
        ),
        timeout_s=(
            previous.timeout_s if timeout_s is _UNSET else timeout_s
        ),
        retries=(
            previous.retries if retries is None else max(0, int(retries))
        ),
        max_failures=(
            previous.max_failures if max_failures is _UNSET
            else max_failures
        ),
    )
    return previous


def run_campaign(
    tasks: Sequence[Any],
    *,
    name: str = "experiment-sweep",
    jobs: Optional[int] = None,
    cache_dir: Any = _UNSET,
    use_cache: Optional[bool] = None,
    salt: str = "",
) -> List[Dict[str, Any]]:
    """Execute a sweep through the campaign harness.

    ``tasks`` are :class:`repro.harness.Task` objects (or their dict
    payloads).  Execution honours the session :class:`ExecutionConfig`
    — worker count and run cache — unless overridden per call, and the
    records come back **in task order**, so callers can zip them
    against whatever labels they expanded the sweep from.  Raises
    ``RuntimeError`` if any task failed (experiments must not silently
    tabulate partial sweeps).
    """
    from ..harness import campaign as _campaign
    from ..harness.spec import Task

    task_objs = [
        task if isinstance(task, Task) else Task.from_dict(task)
        for task in tasks
    ]
    cfg = _EXECUTION
    summary = _campaign.run_tasks(
        task_objs,
        jobs=cfg.jobs if jobs is None else max(1, int(jobs)),
        cache_dir=cfg.cache_dir if cache_dir is _UNSET else cache_dir,
        use_cache=cfg.use_cache if use_cache is None else bool(use_cache),
        salt=salt,
        name=name,
        timeout_s=cfg.timeout_s,
        retries=cfg.retries,
        max_failures=cfg.max_failures,
    )
    if summary.failures:
        errors = [
            record["error"]
            for record in summary.records
            if "error" in record
        ]
        raise RuntimeError(
            f"{summary.failures} task(s) of campaign {name!r} failed: "
            f"{errors[:3]}"
        )
    return summary.records


def _ensure_loaded() -> None:
    """Import the experiment modules (they self-register)."""
    from . import (  # noqa: F401  (import for side effects)
        apsp_exp,
        approx_exp,
        baselines_exp,
        girth_exp,
        lower_bounds_exp,
        properties_exp,
        prt_exp,
        ssp_exp,
        two_vs_four_exp,
        weighted_exp,
    )


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x) (scaling exponent)."""
    pairs = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    count = len(pairs)
    if count < 2:
        return float("nan")
    mean_x = sum(p[0] for p in pairs) / count
    mean_y = sum(p[1] for p in pairs) / count
    num = sum((px - mean_x) * (py - mean_y) for px, py in pairs)
    den = sum((px - mean_x) ** 2 for px, py in pairs)
    return num / den if den else float("nan")
