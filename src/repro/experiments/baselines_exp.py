"""E11 — Section 3.1: Algorithm 1 vs the classic routing strawmen.

The sweeps run through the campaign harness: each (graph, algorithm)
cell is an independent task, so the slow strawmen (sequential BFS is
quadratic in rounds *and* wall-clock) parallelize across workers and
memoize in the run cache.
"""

from __future__ import annotations

from ..harness.spec import Task
from .base import (
    ExperimentResult,
    experiment,
    fit_loglog_slope,
    run_campaign,
)

PATH_SWEEPS = {"quick": [16, 40], "paper": [16, 32, 48, 64]}
DENSE_SWEEPS = {"quick": [20, 40], "paper": [20, 30, 40, 50]}

_PARAMS = {"seed": 0, "policy": "strict"}


def _apsp(spec: str) -> Task:
    return Task.make(spec, "apsp", _PARAMS)


def _baseline(spec: str, variant: str) -> Task:
    return Task.make(spec, "baseline", {**_PARAMS, "variant": variant})


@experiment("e11a")
def e11a_paths(scale: str) -> ExperimentResult:
    """E11a: baselines vs Algorithm 1 on paths (D = n)."""
    result = ExperimentResult(
        exp_id="e11a",
        title="APSP rounds on paths, D = n (§3.1)",
        headers=["n", "Algorithm 1", "periodic DV", "delta DV",
                 "sequential BFS"],
    )
    sweep = PATH_SWEEPS[scale]
    tasks = []
    for n in sweep:
        spec = f"path:{n}"
        tasks.extend([
            _apsp(spec),
            _baseline(spec, "distance-vector"),
            _baseline(spec, "distance-vector-delta"),
            _baseline(spec, "sequential-bfs"),
        ])
    records = run_campaign(tasks, name="e11a")
    series = {"algorithm1": [], "distance-vector": [],
              "sequential-bfs": []}
    for n, chunk in zip(sweep, _grouped(records, 4)):
        ours, naive_dv, delta_dv, seq = (
            record["metrics"]["rounds"] for record in chunk
        )
        series["algorithm1"].append((n, ours))
        series["distance-vector"].append((n, naive_dv))
        series["sequential-bfs"].append((n, seq))
        result.rows.append((n, ours, naive_dv, delta_dv, seq))
    slopes = {
        name: fit_loglog_slope([p[0] for p in pts],
                               [p[1] for p in pts])
        for name, pts in series.items()
    }
    result.require("algorithm1-linear", slopes["algorithm1"] <= 1.3)
    result.require("sequential-quadratic",
                   slopes["sequential-bfs"] >= 1.6)
    result.require("periodic-dv-superlinear",
                   slopes["distance-vector"] >= 1.3)
    result.notes.append(
        f"log-log slopes: Algorithm 1 {slopes['algorithm1']:.2f} "
        f"(linear), periodic DV {slopes['distance-vector']:.2f} "
        f"(superlinear), sequential BFS "
        f"{slopes['sequential-bfs']:.2f} (~quadratic)"
    )
    return result


@experiment("e11b")
def e11b_dense(scale: str) -> ExperimentResult:
    """E11b: link-state goes quadratic on dense graphs."""
    result = ExperimentResult(
        exp_id="e11b",
        title="APSP rounds on dense graphs, m = Θ(n²) (§3.1)",
        headers=["n", "m", "Algorithm 1", "link-state", "ratio"],
    )
    sweep = DENSE_SWEEPS[scale]
    tasks = []
    for n in sweep:
        spec = f"er:{n}:p=0.5:seed=3"
        tasks.extend([_apsp(spec), _baseline(spec, "link-state")])
    records = run_campaign(tasks, name="e11b")
    ls_points = []
    ours_points = []
    for n, (ours_rec, ls_rec) in zip(sweep, _grouped(records, 2)):
        ours = ours_rec["metrics"]["rounds"]
        link_state = ls_rec["metrics"]["rounds"]
        ls_points.append((n, link_state))
        ours_points.append((n, ours))
        result.rows.append((
            n, ours_rec["graph"]["m"], ours, link_state,
            f"{link_state / ours:.1f}x",
        ))
    ls_slope = fit_loglog_slope([p[0] for p in ls_points],
                                [p[1] for p in ls_points])
    ours_slope = fit_loglog_slope([p[0] for p in ours_points],
                                  [p[1] for p in ours_points])
    result.require("link-state-superlinear",
                   ls_slope > ours_slope + 0.4)
    result.notes.append(
        f"log-log slopes: Algorithm 1 {ours_slope:.2f}, link-state "
        f"{ls_slope:.2f} — flooding Theta(n^2) edges through B-bit "
        "links is quadratic"
    )
    return result


def _grouped(records, size):
    """Consecutive fixed-size chunks of the (task-ordered) records."""
    return (
        records[start:start + size]
        for start in range(0, len(records), size)
    )
