"""Programmatic Table 1 regeneration.

Usage::

    from repro import experiments

    result = experiments.run("e1", scale="quick")
    print(result.render())
    assert result.passed

    for result in experiments.run_all():
        ...

Experiment ids follow EXPERIMENTS.md: ``e1`` (APSP linearity), ``e2``
(S-SP rounds), ``e3``/``e4`` (exact properties), ``e5``/``e7`` (girth),
``e6``/``e6b``/``e13`` (approximations), ``e8`` (2-vs-4), ``e9a``/
``e9b``/``e10`` (lower-bound demonstrations), ``e11a``/``e11b``
(baselines), ``e12`` (bit complexity), ``e14``/``e15`` (PRT
combinations), ``e16`` (congestion audit).
"""

from .base import (
    SCALES,
    ExecutionConfig,
    ExperimentResult,
    available,
    configure_execution,
    execution_config,
    fit_loglog_slope,
    run,
    run_all,
    run_campaign,
    write_report,
)

__all__ = [
    "ExecutionConfig",
    "ExperimentResult",
    "SCALES",
    "available",
    "configure_execution",
    "execution_config",
    "fit_loglog_slope",
    "run",
    "run_all",
    "run_campaign",
    "write_report",
]
