"""E1 + E16 — Theorem 1: APSP in Θ̃(n), congestion-free (Lemma 1).

Both sweeps execute through the campaign harness
(:func:`repro.experiments.base.run_campaign`): graph instances are
described as spec strings, so runs shard across worker processes under
``--jobs`` and memoize in the content-addressed run cache.  E16 reruns
a subset of E1's tasks (the Erdős–Rényi column) and therefore costs
nothing extra when a shared cache is configured — the benchmark suite
relies on exactly that.
"""

from __future__ import annotations

from ..congest.network import default_bandwidth
from ..harness.spec import Task
from .base import (
    ExperimentResult,
    experiment,
    fit_loglog_slope,
    run_campaign,
)

SWEEPS = {"quick": [20, 40], "paper": [30, 60, 90, 120]}


def family_specs(n: int):
    """The four topology families of the E1 sweep, as graph specs."""
    side = max(3, round(n ** 0.5))
    return {
        "path": f"path:{n}",
        "tree": f"tree:{n}:seed=7",
        "torus": f"torus:{side}x{max(3, n // side)}",
        "er(8/n)": _er_spec(n),
    }


def _er_spec(n: int) -> str:
    return f"er:{n}:p={min(1.0, 8.0 / n)!r}:seed=3"


def _apsp_task(spec: str) -> Task:
    return Task.make(spec, "apsp", {"seed": 0, "policy": "strict"})


@experiment("e1")
def e1_apsp_linear(scale: str) -> ExperimentResult:
    """E1: APSP rounds grow linearly in n (Theorem 1)."""
    result = ExperimentResult(
        exp_id="e1",
        title="APSP rounds vs n (Thm 1 predicts linear)",
        headers=["family", "n", "m", "rounds", "rounds/n"],
    )
    labels = []
    tasks = []
    for n in SWEEPS[scale]:
        for family, spec in family_specs(n).items():
            labels.append(family)
            tasks.append(_apsp_task(spec))
    records = run_campaign(tasks, name="e1")
    per_family = {}
    for family, record in zip(labels, records):
        n = record["graph"]["n"]
        rounds = record["metrics"]["rounds"]
        per_family.setdefault(family, []).append((n, rounds))
        result.rows.append((
            family, n, record["graph"]["m"], rounds,
            f"{rounds / n:.2f}",
        ))
    for family, points in per_family.items():
        slope = fit_loglog_slope([n for n, _ in points],
                                 [r for _, r in points])
        result.notes.append(
            f"{family}: rounds ~ n^{slope:.2f} (Theorem 1 predicts 1.0)"
        )
        result.require(f"slope-linear[{family}]", 0.6 <= slope <= 1.4)
    return result


@experiment("e16")
def e16_congestion_free(scale: str) -> ExperimentResult:
    """E16: no edge ever exceeds B (Lemma 1)."""
    result = ExperimentResult(
        exp_id="e16",
        title="peak per-edge load under Algorithm 1 (Lemma 1)",
        headers=["n", "B (bits)", "max edge bits/round",
                 "max edge msgs/round"],
    )
    tasks = [_apsp_task(_er_spec(n)) for n in SWEEPS[scale]]
    records = run_campaign(tasks, name="e16")
    for record in records:
        n = record["graph"]["n"]
        metrics = record["metrics"]
        budget = default_bandwidth(n)
        result.rows.append((
            n, budget,
            metrics["max_edge_bits_in_round"],
            metrics["max_edge_messages_in_round"],
        ))
        result.require(
            "within-budget",
            metrics["max_edge_bits_in_round"] <= budget,
        )
    result.notes.append(
        "every run stays within B — the pebble schedule is "
        "congestion-free"
    )
    return result
