"""E1 + E16 — Theorem 1: APSP in Θ̃(n), congestion-free (Lemma 1)."""

from __future__ import annotations

from ..congest.network import default_bandwidth
from ..core.apsp import run_apsp
from ..graphs import (
    erdos_renyi_graph,
    path_graph,
    random_tree,
    torus_graph,
)
from .base import ExperimentResult, experiment, fit_loglog_slope

SWEEPS = {"quick": [20, 40], "paper": [30, 60, 90, 120]}


def families(n: int):
    """The four topology families of the E1 sweep."""
    side = max(3, round(n ** 0.5))
    return {
        "path": path_graph(n),
        "tree": random_tree(n, seed=7),
        "torus": torus_graph(side, max(3, n // side)),
        "er(8/n)": erdos_renyi_graph(
            n, min(1.0, 8.0 / n), seed=3, ensure_connected=True
        ),
    }


@experiment("e1")
def e1_apsp_linear(scale: str) -> ExperimentResult:
    """E1: APSP rounds grow linearly in n (Theorem 1)."""
    result = ExperimentResult(
        exp_id="e1",
        title="APSP rounds vs n (Thm 1 predicts linear)",
        headers=["family", "n", "m", "rounds", "rounds/n"],
    )
    per_family = {}
    for n in SWEEPS[scale]:
        for family, graph in families(n).items():
            summary = run_apsp(graph)
            per_family.setdefault(family, []).append(
                (graph.n, summary.rounds)
            )
            result.rows.append((
                family, graph.n, graph.m, summary.rounds,
                f"{summary.rounds / graph.n:.2f}",
            ))
    for family, points in per_family.items():
        slope = fit_loglog_slope([n for n, _ in points],
                                 [r for _, r in points])
        result.notes.append(
            f"{family}: rounds ~ n^{slope:.2f} (Theorem 1 predicts 1.0)"
        )
        result.require(f"slope-linear[{family}]", 0.6 <= slope <= 1.4)
    return result


@experiment("e16")
def e16_congestion_free(scale: str) -> ExperimentResult:
    """E16: no edge ever exceeds B (Lemma 1)."""
    result = ExperimentResult(
        exp_id="e16",
        title="peak per-edge load under Algorithm 1 (Lemma 1)",
        headers=["n", "B (bits)", "max edge bits/round",
                 "max edge msgs/round"],
    )
    for n in SWEEPS[scale]:
        graph = erdos_renyi_graph(
            n, min(1.0, 8.0 / n), seed=3, ensure_connected=True
        )
        summary = run_apsp(graph)
        budget = default_bandwidth(graph.n)
        result.rows.append((
            graph.n, budget,
            summary.metrics.max_edge_bits_in_round,
            summary.metrics.max_edge_messages_in_round,
        ))
        result.require(
            "within-budget",
            summary.metrics.max_edge_bits_in_round <= budget,
        )
    result.notes.append(
        "every run stays within B — the pebble schedule is "
        "congestion-free"
    )
    return result
