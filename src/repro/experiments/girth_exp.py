"""E5 + E7 — girth: exact (Lemma 7) and (×,1+ε) (Theorem 5)."""

from __future__ import annotations

from ..graphs import (
    cycle_graph,
    diameter,
    erdos_renyi_graph,
    girth,
    lollipop_graph,
    torus_graph,
)
from ..protocols import run as run_protocol
from .base import ExperimentResult, experiment, fit_loglog_slope

SWEEPS = {"quick": [24, 48], "paper": [24, 48, 72, 96]}


@experiment("e5")
def e5_exact_girth(scale: str) -> ExperimentResult:
    """E5: exact girth rounds grow linearly (Lemma 7)."""
    result = ExperimentResult(
        exp_id="e5",
        title="exact girth rounds vs n (Lemma 7 predicts linear)",
        headers=["family", "n", "girth", "rounds", "rounds/n"],
    )
    points = []
    for n in SWEEPS[scale]:
        for family, graph in [
            ("cycle", cycle_graph(n)),
            ("lollipop", lollipop_graph(6, n - 6)),
            ("torus", torus_graph(4, max(3, n // 4))),
        ]:
            summary = run_protocol("girth", graph).summary
            want = girth(graph)
            result.require("girth-exact", summary.girth == want)
            result.rows.append((
                family, graph.n, want, summary.rounds,
                f"{summary.rounds / graph.n:.2f}",
            ))
            if family == "torus":
                points.append((graph.n, summary.rounds))
    slope = fit_loglog_slope([p[0] for p in points],
                             [p[1] for p in points])
    result.require("slope-linear", 0.6 <= slope <= 1.4)
    result.notes.append(
        f"torus family: rounds ~ n^{slope:.2f} (Lemma 7 predicts 1.0); "
        "every estimate equals the oracle"
    )
    return result


@experiment("e7")
def e7_approx_girth(scale: str) -> ExperimentResult:
    """E7: Theorem 5 estimates stay within (1+eps)."""
    result = ExperimentResult(
        exp_id="e7",
        title="(x,1.5) girth approximation vs exact (Thm 5)",
        headers=["family", "n", "D", "girth", "estimate", "phases",
                 "exact rounds", "approx rounds"],
    )
    instances = [
        ("cycle48", cycle_graph(48)),
        ("torus4x20", torus_graph(4, 20)),
        ("er-dense", erdos_renyi_graph(80, 0.2, seed=5,
                                       ensure_connected=True)),
    ]
    if scale == "paper":
        instances.insert(1, ("cycle96", cycle_graph(96)))
    for family, graph in instances:
        want = girth(graph)
        exact = run_protocol("girth", graph).summary
        approx = run_protocol(
            "girth-approx", graph, {"epsilon": 0.5}
        ).summary
        result.require("within-1.5x",
                       want <= approx.girth <= 1.5 * want)
        phases = next(iter(approx.results.values())).phases
        result.rows.append((
            family, graph.n, diameter(graph), want, approx.girth,
            phases, exact.rounds, approx.rounds,
        ))
    result.notes.append(
        "estimates always within (1+eps); the approximation wins when "
        "g is large and falls back to exact when g is tiny — Thm 5's "
        "min{., n}"
    )
    return result
