"""E14 + E15 — the Section 3.6 combinations (Corollaries 1–2)."""

from __future__ import annotations

from ..core.prt import (
    combined_diameter_estimate,
    combined_girth_estimate,
)
from ..graphs import (
    cycle_graph,
    diameter,
    dumbbell_with_path,
    erdos_renyi_graph,
    girth,
    torus_graph,
)
from ..protocols import run as run_protocol
from .base import ExperimentResult, experiment


def d_sweep(scale: str):
    """The instances of the Corollary 1 comparison."""
    yield "er-dense", erdos_renyi_graph(100, 0.25, seed=5,
                                        ensure_connected=True)
    yield "dumbbell-D14", dumbbell_with_path(44, 12)
    if scale == "paper":
        yield "torus4x25", torus_graph(4, 25)
        yield "dumbbell-D46", dumbbell_with_path(28, 44)


@experiment("e14")
def e14_corollary1(scale: str) -> ExperimentResult:
    """E14: the (x,3/2) estimator and the Cor 1 combiner."""
    result = ExperimentResult(
        exp_id="e14",
        title="(x,3/2) PRT vs (x,1.5) HW, and the Cor 1 combiner",
        headers=["instance", "n", "D", "PRT est", "PRT rounds",
                 "PRT seq-BFS cost", "HW est", "HW rounds",
                 "combiner picks"],
    )
    for name, graph in d_sweep(scale):
        d = diameter(graph)
        prt = run_protocol("prt-diameter", graph).summary
        result.require("prt-band", (2 * d) // 3 <= prt.estimate <= d)
        ours = run_protocol("approx", graph, {"epsilon": 0.5}).summary
        result.require("hw-band",
                       d <= ours.diameter_estimate <= 1.5 * d)
        combined = combined_diameter_estimate(graph)
        seq_cost = next(iter(prt.results.values())).sequential_cost
        result.rows.append((
            name, graph.n, d, prt.estimate, prt.rounds, seq_cost,
            ours.diameter_estimate, ours.rounds, combined["branch"],
        ))
    result.notes.append(
        "'PRT seq-BFS cost' is the O(D*sqrt(n)) rounds the [33] "
        "schedule would need; with Algorithm 2 as a primitive our "
        "rendering runs in O(sqrt(n)+D), so the combiner often prefers "
        "the HW side — the Cor 1 min{} envelope holds either way"
    )
    return result


@experiment("e15")
def e15_corollary2(scale: str) -> ExperimentResult:
    """E15: the Cor 2 girth combiner across families."""
    result = ExperimentResult(
        exp_id="e15",
        title="girth combiner across families (Cor 2)",
        headers=["instance", "n", "girth", "estimate", "branch",
                 "rounds"],
    )
    instances = [
        ("cycle40", cycle_graph(40)),
        ("er-dense", erdos_renyi_graph(80, 0.25, seed=7,
                                       ensure_connected=True)),
    ]
    if scale == "paper":
        instances.insert(1, ("torus4x20", torus_graph(4, 20)))
    for name, graph in instances:
        want = girth(graph)
        outcome = combined_girth_estimate(graph)
        result.require("within-1.5x",
                       want <= outcome["girth"] <= 1.5 * want)
        result.rows.append((
            name, graph.n, want, outcome["girth"], outcome["branch"],
            outcome["rounds"],
        ))
    result.notes.append(
        "the [33] girth routine is substituted per DESIGN.md §2; the "
        "min{} rule is exercised over Lemma 7 and Theorem 5"
    )
    return result
