"""E9a, E9b, E10 — the lower-bound demonstrations (Thms 2, 6, 8)."""

from __future__ import annotations

from ..graphs import (
    communication_lower_bound_bits,
    cut_width,
    diameter,
    diameter_2_vs_3,
    diameter_gap2_family,
    girth,
    random_disjointness_instance,
    random_membership_instance,
)
from ..protocols import run as run_protocol
from .base import ExperimentResult, experiment

P_SWEEPS = {"quick": [3, 6], "paper": [3, 5, 7, 9]}


@experiment("e9a")
def e9a_cut_saturation(scale: str) -> ExperimentResult:
    """E9a: the Thm 6 gadget's cut carries Omega(p^2) bits."""
    result = ExperimentResult(
        exp_id="e9a",
        title="bits crossing the Alice/Bob cut, 2-vs-3 gadget (Thm 6)",
        headers=["n", "input bits/side", "cut width (edges)",
                 "bits crossed", "crossed/input"],
    )
    for p in P_SWEEPS[scale]:
        x, y = random_disjointness_instance(p, intersecting=False, seed=p)
        gadget = diameter_2_vs_3(p, x, y)
        summary = run_protocol(
            "properties", gadget.graph,
            {"include_girth": False, "track_edges": True},
        ).summary
        result.require("diameter-planted",
                       summary.diameter == gadget.planted_diameter)
        crossed = summary.metrics.bits_across_cut(gadget.alice_side)
        need = communication_lower_bound_bits(gadget)
        result.require("cut-saturated", crossed >= need)
        result.rows.append((
            gadget.graph.n, p * p, cut_width(gadget), crossed,
            f"{crossed / need:.1f}",
        ))
    result.notes.append(
        "deciding the diameter moved >= the disjointness input across "
        "a Theta(p)-edge cut: Theta(p) = Theta(n/B) busy rounds"
    )
    return result


@experiment("e9b")
def e9b_gap2_diameters(scale: str) -> ExperimentResult:
    """E9b: the Thm 2 family's diameter is exactly d or d+2."""
    result = ExperimentResult(
        exp_id="e9b",
        title="gap-2 family: diameter d vs d+2 by intersection (Thm 2)",
        headers=["seed", "sets intersect", "planted D", "measured D",
                 "rounds"],
    )
    seeds = range(2) if scale == "quick" else range(4)
    for seed in seeds:
        for intersecting in (True, False):
            xs, ys = random_membership_instance(
                8, intersecting=intersecting, seed=seed
            )
            gadget = diameter_gap2_family(8, 4, xs, ys)
            measured = diameter(gadget.graph)
            summary = run_protocol(
                "properties", gadget.graph, {"include_girth": False}
            ).summary
            result.require(
                "diameter-planted",
                summary.diameter == measured == gadget.planted_diameter,
            )
            result.rows.append((
                seed, "yes" if intersecting else "no",
                gadget.planted_diameter, summary.diameter,
                summary.rounds,
            ))
    result.notes.append(
        "gap of exactly 2: any (+,1)-approximation must decide the "
        "hidden set-intersection instance"
    )
    return result


@experiment("e10")
def e10_two_bfs_bandwidth(scale: str) -> ExperimentResult:
    """E10: all-2-BFS rounds scale inversely with B (Thm 8)."""
    x, y = random_disjointness_instance(7, intersecting=True, seed=3)
    gadget = diameter_2_vs_3(7, x, y)
    result = ExperimentResult(
        exp_id="e10",
        title="all 2-BFS trees on the girth-3 gadget, B-sweep (Thm 8)",
        headers=["n", "B (bits)", "rounds"],
    )
    result.require("girth-3", girth(gadget.graph) == 3)
    bandwidths = [64, 512] if scale == "quick" else [64, 128, 256, 512]
    measured = []
    for bandwidth in bandwidths:
        results, metrics = run_protocol(
            "all-two-bfs", gadget.graph, bandwidth_bits=bandwidth
        ).summary
        verdict = next(iter(results.values())).all_trees_complete
        result.require(
            "reduction-verdict",
            verdict == (gadget.planted_diameter <= 2),
        )
        result.rows.append((gadget.graph.n, bandwidth, metrics.rounds))
        measured.append(metrics.rounds)
    result.require("inverse-b-scaling", measured[0] > measured[-1])
    result.notes.append(
        "rounds fall as B rises: the Theta(n/B) neighbor-list "
        "bottleneck of Theorem 8"
    )
    return result
