"""E6 + E13 — Theorem 4 / Corollary 4 / Remark 1."""

from __future__ import annotations

from ..graphs import diameter, dumbbell_with_path, radius
from ..protocols import run as run_protocol
from .base import ExperimentResult, experiment

D_SWEEP = {
    "quick": [(48, 4), (38, 24)],
    "paper": [(48, 4), (44, 12), (38, 24), (28, 44)],
}


def d_sweep_instances(scale: str):
    """Dumbbell instances sweeping D at roughly fixed n."""
    for side, path_len in D_SWEEP[scale]:
        yield dumbbell_with_path(side, path_len)


@experiment("e6")
def e6_approx_d_sweep(scale: str) -> ExperimentResult:
    """E6: (x,1.5) diameter rounds track O(n/D + D)."""
    result = ExperimentResult(
        exp_id="e6",
        title="(x,1.5) diameter, D-sweep at n~100 (Thm 4/Cor 4)",
        headers=["n", "D", "estimate", "approx rounds", "exact rounds",
                 "rounds/(n/D + D)"],
    )
    for graph in d_sweep_instances(scale):
        d = diameter(graph)
        exact_rounds = run_protocol("apsp", graph).summary.rounds
        summary = run_protocol("approx", graph, {"epsilon": 0.5}).summary
        bound = graph.n / d + d
        ratio = summary.rounds / bound
        result.rows.append((
            graph.n, d, summary.diameter_estimate, summary.rounds,
            exact_rounds, f"{ratio:.1f}",
        ))
        result.require("estimate-within-1.5x",
                       d <= summary.diameter_estimate <= 1.5 * d)
        result.require("rounds-bounded", ratio <= 20)
    result.notes.append(
        "rounds/(n/D + D) bounded across the sweep (the D coefficient "
        "~12 comes from the D0 = 2ecc slack); estimates within (1+eps)"
    )
    return result


@experiment("e6b")
def e6b_epsilon_tradeoff(scale: str) -> ExperimentResult:
    """E6b: the accuracy/rounds trade-off across epsilon."""
    graph = dumbbell_with_path(44, 12)
    d = diameter(graph)
    result = ExperimentResult(
        exp_id="e6b",
        title=f"eps-sweep on dumbbell (n={graph.n}, D={d}) (Thm 4)",
        headers=["eps", "k", "|DOM|", "diam estimate", "rounds"],
    )
    epsilons = [0.5, 2.0] if scale == "quick" else [0.25, 0.5, 1.0, 2.0]
    for epsilon in epsilons:
        summary = run_protocol(
            "approx", graph, {"epsilon": epsilon}
        ).summary
        sample = next(iter(summary.results.values()))
        result.rows.append((
            epsilon, sample.k, sample.dom_size,
            summary.diameter_estimate, summary.rounds,
        ))
        result.require(
            "estimate-within-eps",
            d <= summary.diameter_estimate <= (1 + epsilon) * d,
        )
    result.notes.append(
        "larger eps -> bigger k -> smaller DOM -> fewer rounds, looser "
        "estimate"
    )
    return result


@experiment("e13")
def e13_remark1(scale: str) -> ExperimentResult:
    """E13: Remark 1's (x,2) estimator runs in O(D)."""
    result = ExperimentResult(
        exp_id="e13",
        title="(x,2) diameter/radius in O(D) (Remark 1)",
        headers=["n", "D", "diam est (<=2D)", "rad est (<=2R)",
                 "rounds", "rounds/D"],
    )
    for graph in d_sweep_instances(scale):
        d = diameter(graph)
        r = radius(graph)
        results, metrics = run_protocol("remark1", graph).summary
        sample = next(iter(results.values()))
        result.require("diam-factor-2",
                       d <= sample.diameter_estimate <= 2 * d)
        result.require("rad-factor-2",
                       r <= sample.radius_estimate <= 2 * r)
        result.require("rounds-o-d", metrics.rounds <= 6 * d + 12)
        result.rows.append((
            graph.n, d, sample.diameter_estimate,
            sample.radius_estimate, metrics.rounds,
            f"{metrics.rounds / d:.2f}",
        ))
    result.notes.append(
        "one BFS+echo: rounds/D is a small constant, estimates within "
        "factor 2"
    )
    return result
