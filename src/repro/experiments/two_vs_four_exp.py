"""E8 — Theorem 7: 2-vs-4 in Õ(√n)."""

from __future__ import annotations

import math

from ..core.two_vs_four import degree_threshold
from ..graphs import diameter, diameter_four_blobs, diameter_two_random
from ..protocols import run as run_protocol
from .base import ExperimentResult, experiment, fit_loglog_slope

SWEEPS = {"quick": [40, 120], "paper": [40, 80, 160, 240]}


@experiment("e8")
def e8_two_vs_four(scale: str) -> ExperimentResult:
    """E8: 2-vs-4 is correct and sublinear (Theorem 7)."""
    result = ExperimentResult(
        exp_id="e8",
        title="2-vs-4 rounds vs n, verdicts always correct (Thm 7)",
        headers=["n", "s=sqrt(n log n)", "branch (D=2)", "rounds (D=2)",
                 "rounds/sqrt(n log n)", "branch (D=4)", "rounds (D=4)"],
    )
    points = []
    for n in SWEEPS[scale]:
        g2 = diameter_two_random(n, seed=n)
        g4 = diameter_four_blobs(n, seed=n)
        result.require("promise-2", diameter(g2) == 2)
        result.require("promise-4", diameter(g4) == 4)
        s2 = run_protocol("two-vs-four", g2, seed=1).summary
        s4 = run_protocol("two-vs-four", g4, seed=1).summary
        result.require("verdict-2", s2.diameter == 2)
        result.require("verdict-4", s4.diameter == 4)
        threshold = degree_threshold(n)
        result.rows.append((
            n, f"{threshold:.1f}", s2.branch, s2.rounds,
            f"{s2.rounds / math.sqrt(n * math.log2(n)):.2f}",
            s4.branch, s4.rounds,
        ))
        points.append((n, s2.rounds))
    slope = fit_loglog_slope([p[0] for p in points],
                             [p[1] for p in points])
    result.require("sublinear", slope <= 0.8)
    result.notes.append(
        f"diameter-2 family: rounds ~ n^{slope:.2f} (Theorem 7 "
        "predicts 0.5)"
    )
    return result
