"""E2 + E12 — Theorem 3: S-SP rounds and bit complexity."""

from __future__ import annotations

import math

from ..graphs import diameter, dumbbell_with_path, torus_graph
from ..protocols import run as run_protocol
from .base import ExperimentResult, experiment

SIZE_SWEEPS = {"quick": [1, 10, 30], "paper": [1, 5, 10, 20, 40, 60]}
PATH_SWEEPS = {"quick": [4, 16], "paper": [4, 8, 16, 32]}


@experiment("e2")
def e2_ssp_rounds(scale: str) -> ExperimentResult:
    """E2: S-SP rounds stay O(|S| + D) (Theorem 3)."""
    result = ExperimentResult(
        exp_id="e2",
        title="S-SP rounds vs |S| and D (Thm 3: O(|S|+D))",
        headers=["sweep", "n", "D", "|S|", "rounds", "rounds/(|S|+D)"],
    )
    graph = torus_graph(6, 10)
    d = diameter(graph)
    ratios = []
    for size in SIZE_SWEEPS[scale]:
        sources = list(graph.nodes)[:size]
        summary = run_protocol(
            "ssp", graph, {"sources": sources}
        ).summary
        ratio = summary.rounds / (size + d)
        ratios.append(ratio)
        result.rows.append((
            "torus |S|-sweep", graph.n, d, size, summary.rounds,
            f"{ratio:.2f}",
        ))
    for path_len in PATH_SWEEPS[scale]:
        graph = dumbbell_with_path(14, path_len)
        d = diameter(graph)
        summary = run_protocol(
            "ssp", graph, {"sources": list(graph.nodes)[:10]}
        ).summary
        ratio = summary.rounds / (10 + d)
        ratios.append(ratio)
        result.rows.append((
            "dumbbell D-sweep", graph.n, d, 10, summary.rounds,
            f"{ratio:.2f}",
        ))
    result.require("bounded-ratio", max(ratios) <= 12)
    result.notes.append(
        "rounds/(|S|+D) stays O(1): the O(|S| + D) bound holds"
    )
    return result


@experiment("e12")
def e12_ssp_bits(scale: str) -> ExperimentResult:
    """E12: S-SP bit cost matches the Section 3.2 bound."""
    result = ExperimentResult(
        exp_id="e12",
        title="S-SP bits exchanged vs (|S|+D)*m*log n (§3.2)",
        headers=["n", "m", "|S|", "bits measured", "bound value",
                 "ratio"],
    )
    sizes = [2, 32] if scale == "quick" else [2, 8, 32]
    for size in sizes:
        graph = torus_graph(6, 10)
        d = diameter(graph)
        summary = run_protocol(
            "ssp", graph, {"sources": list(graph.nodes)[:size]}
        ).summary
        bound = (size + d) * graph.m * math.log2(graph.n)
        ratio = summary.metrics.bits_total / bound
        result.rows.append((
            graph.n, graph.m, size, summary.metrics.bits_total,
            int(bound), f"{ratio:.2f}",
        ))
        result.require("bounded-bits", ratio <= 40)
    result.notes.append(
        "ratio bounded by a constant (~2B/log n x link utilization): "
        "matches the Elkin-comparison bit bound"
    )
    return result
