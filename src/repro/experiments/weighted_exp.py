"""E17 — weighted APSP through the subdivision reduction.

The paper treats *unweighted* APSP; this experiment exercises the
classic folklore extension (DESIGN.md §4): replace every weight-w edge
by a path of w unit edges, run Algorithm 1 on the expansion, and read
weighted distances off the original nodes.  The price is the expansion
size — ``O(n + m·(W-1))`` rounds — which the sweep verifies alongside
exactness against a sequential Dijkstra oracle.

Runs go through the protocol registry (``weighted-apsp``), so the very
same code path serves ``repro weighted-apsp``, campaign specs, and
``repro bench --workloads bench_weighted``.
"""

from __future__ import annotations

from ..graphs import cycle_graph, erdos_renyi_graph, torus_graph
from ..graphs.weighted import (
    deterministic_weights,
    oracle_weighted_distances,
)
from ..protocols import run as run_protocol
from .base import ExperimentResult, experiment

INSTANCES = {
    "quick": [
        ("cycle", cycle_graph, 12),
        ("torus", lambda n: torus_graph(3, n // 3), 12),
    ],
    "paper": [
        ("cycle", cycle_graph, 24),
        ("torus", lambda n: torus_graph(4, n // 4), 24),
        ("er(8/n)", lambda n: erdos_renyi_graph(
            n, min(1.0, 8.0 / n), seed=11, ensure_connected=True
        ), 24),
    ],
}

WEIGHTS = {"quick": [3], "paper": [2, 4]}


@experiment("e17")
def e17_weighted_apsp(scale: str) -> ExperimentResult:
    """E17: subdivision-reduction weighted APSP is exact, O(n+m(W-1))."""
    result = ExperimentResult(
        exp_id="e17",
        title="weighted APSP via subdivision (exact, O(n + m(W-1)))",
        headers=["family", "n", "m", "W", "expanded n", "weighted D",
                 "rounds", "rounds/n'"],
    )
    for family, make, n in INSTANCES[scale]:
        graph = make(n)
        for max_weight in WEIGHTS[scale]:
            summary = run_protocol(
                "weighted-apsp", graph,
                {"max_weight": max_weight, "weight_seed": 1},
            ).summary
            weighted = deterministic_weights(
                graph, max_weight, seed=1
            )
            oracle = oracle_weighted_distances(weighted)
            result.require("distances-exact", all(
                summary.distances[u][v] == oracle[u][v]
                for u in graph.nodes for v in graph.nodes
            ))
            expected_n = graph.n + sum(
                weighted.weight(u, v) - 1 for u, v in graph.edges
            )
            result.require("expansion-size",
                           summary.expanded_n == expected_n)
            ratio = summary.rounds / summary.expanded_n
            result.require("rounds-linear-in-expansion", ratio <= 12)
            result.rows.append((
                family, graph.n, graph.m, max_weight,
                summary.expanded_n, summary.weighted_diameter(),
                summary.rounds, f"{ratio:.2f}",
            ))
    result.notes.append(
        "every distance equals the Dijkstra oracle; rounds/n' stays "
        "O(1), the documented O(n + m(W-1)) price of the reduction"
    )
    return result
