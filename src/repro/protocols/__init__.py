"""Protocols: the unified algorithm registry and run pipeline.

Every algorithm in the repository is declared exactly once in
:mod:`repro.protocols.builtin` — its ``core.run_*`` entry point, a
typed parameter schema, capability flags, the JSON-pure summary shape
and optional CLI presentation.  All consumers dispatch through the
registry:

* ``repro.harness`` — per-task execution and spec-time validation,
* the ``repro`` CLI — subcommands and ``repro trace run`` choices,
* ``repro.bench`` — the pinned workload suite,
* ``repro.experiments`` — Table 1 regeneration.

Quick use::

    from repro import graphs, protocols

    outcome = protocols.run("apsp", graphs.torus_graph(4, 4))
    print(outcome.result)            # {"diameter": 4, "radius": 4}
    print(outcome.metrics.rounds)    # cost counters
    print(outcome.summary.radius())  # the native ApspSummary

See ``docs/protocols.md`` for the registry contract.
"""

from .errors import ParamError, TaskError
from .params import CommonParams, ParamSpec, validate_params
from .registry import (
    CAPABILITIES,
    CliArg,
    CliSpec,
    Protocol,
    RunOutcome,
    RunRequest,
    get,
    names,
    protocols,
    register,
    run,
)

__all__ = [
    "CAPABILITIES",
    "CliArg",
    "CliSpec",
    "CommonParams",
    "ParamError",
    "ParamSpec",
    "Protocol",
    "RunOutcome",
    "RunRequest",
    "TaskError",
    "get",
    "names",
    "protocols",
    "register",
    "run",
    "validate_params",
]
