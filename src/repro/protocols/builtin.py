"""The built-in protocol declarations — every algorithm, declared once.

This module is the *single source of truth* for algorithm dispatch.
Each :func:`~.registry.register` call below binds together a
``core.run_*`` entry point, its parameter schema, its capability
flags, the JSON-pure summary the harness stores, and (for the
user-facing algorithms) the CLI subcommand presentation.  The campaign
harness, ``repro`` subcommands, ``repro trace run``, the benchmark
workloads and the experiments all dispatch through this registry —
none of them keeps an algorithm table of its own.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

from .. import core
from .. import vector
from ..congest.metrics import RunMetrics
from ..graphs import (
    deterministic_weights,
    diameter_four_blobs,
    diameter_two_random,
    run_weighted_apsp,
)
from ..graphs.specs import parse_graph
from .errors import ParamError, TaskError
from .params import ParamSpec
from .registry import (
    CliArg,
    CliSpec,
    Protocol,
    RunOutcome,
    RunRequest,
    register,
)


def _print_cost(metrics: RunMetrics) -> None:
    print(f"rounds:   {metrics.rounds}")
    print(f"messages: {metrics.messages_total}")
    print(f"bits:     {metrics.bits_total}")


def _csv(text: Optional[str], cast=str) -> List:
    if not text:
        return []
    return [cast(item.strip()) for item in text.split(",") if item.strip()]


# ---------------------------------------------------------------------------
# apsp — Algorithm 1
# ---------------------------------------------------------------------------


def _apsp_run(req: RunRequest):
    return core.run_apsp(
        req.graph, collect_girth=req.params["collect_girth"],
        **req.common.kwargs(),
    )


def _apsp_vector_run(req: RunRequest):
    return vector.run_apsp(
        req.graph, collect_girth=req.params["collect_girth"],
        **req.common.kwargs(),
    )


def _apsp_present(args, graph, outcome: RunOutcome) -> None:
    summary = outcome.summary
    print(f"APSP on {graph!r}")
    _print_cost(outcome.metrics)
    print(f"diameter: {summary.diameter()}   radius: {summary.radius()}")
    if args.show_row is not None:
        row = summary.results[args.show_row].distances
        print(f"distances from node {args.show_row}: "
              f"{dict(sorted(row.items()))}")


register(Protocol(
    name="apsp",
    entry_point="core.run_apsp",
    run=_apsp_run,
    summarize=lambda s, req: {
        "diameter": s.diameter(), "radius": s.radius(),
    },
    schema=(
        ParamSpec("collect_girth", kind="bool", default=False,
                  help="also collect the Lemma 7 girth witnesses"),
    ),
    capabilities=frozenset({"faults", "trace", "girth", "vector"}),
    vector_run=_apsp_vector_run,
    vector_entry_point="vector.run_apsp",
    help="Algorithm 1: APSP in O(n)",
    cli=CliSpec(
        help="Algorithm 1: APSP in O(n)",
        args=(
            CliArg("--show-row", kind="int",
                   help="print one node's distance row"),
        ),
        present=_apsp_present,
    ),
))


# ---------------------------------------------------------------------------
# ssp — Algorithm 2
# ---------------------------------------------------------------------------


def _ssp_check(params: Dict[str, Any]) -> None:
    if params.get("sources") is None and params.get("num_sources") is None:
        raise ParamError("ssp needs 'sources' or 'num_sources'")


def _ssp_sources(req: RunRequest):
    sources = req.params.get("sources")
    if sources is None:
        sources = sorted(req.graph.nodes)[: req.params["num_sources"]]
    return sources


def _ssp_run(req: RunRequest):
    return core.run_ssp(
        req.graph, _ssp_sources(req), **req.common.kwargs()
    )


def _ssp_vector_run(req: RunRequest):
    return vector.run_ssp(
        req.graph, _ssp_sources(req), **req.common.kwargs()
    )


def _ssp_summarize(summary, req: RunRequest) -> Dict[str, Any]:
    max_distance = max(
        (max(res.distances.values(), default=0)
         for res in summary.results.values()),
        default=0,
    )
    return {
        "sources": sorted(summary.sources),
        "max_distance": max_distance,
    }


def _ssp_present(args, graph, outcome: RunOutcome) -> None:
    summary = outcome.summary
    print(f"S-SP on {graph!r} with S = {sorted(summary.sources)}")
    _print_cost(outcome.metrics)
    for node in list(graph.nodes)[: args.show_nodes]:
        print(f"node {node}: "
              f"{dict(sorted(summary.results[node].distances.items()))}")


register(Protocol(
    name="ssp",
    entry_point="core.run_ssp",
    run=_ssp_run,
    summarize=_ssp_summarize,
    schema=(
        ParamSpec("sources", kind="int_list", example=[1],
                  help="explicit source ids"),
        ParamSpec("num_sources", kind="int", minimum=1,
                  help="use the num_sources smallest node ids"),
    ),
    check=_ssp_check,
    capabilities=frozenset({"faults", "trace", "vector"}),
    vector_run=_ssp_vector_run,
    vector_entry_point="vector.run_ssp",
    help="Algorithm 2: S-SP in O(|S|+D)",
    cli=CliSpec(
        help="Algorithm 2: S-SP in O(|S|+D)",
        args=(
            CliArg("--sources", required=True,
                   help="comma-separated source ids"),
            CliArg("--show-nodes", kind="int", default=3),
        ),
        collect=lambda args: {"sources": _csv(args.sources, int)},
        present=_ssp_present,
        trace_collect=lambda args: {
            "sources": _csv(args.sources, int) or [1],
        },
    ),
))


# ---------------------------------------------------------------------------
# properties — Lemmas 2-7
# ---------------------------------------------------------------------------


def _properties_run(req: RunRequest):
    return core.run_graph_properties(
        req.graph, include_girth=req.params["include_girth"],
        track_edges=req.params["track_edges"],
        **req.common.kwargs(),
    )


def _properties_vector_run(req: RunRequest):
    return vector.run_graph_properties(
        req.graph, include_girth=req.params["include_girth"],
        track_edges=req.params["track_edges"],
        **req.common.kwargs(),
    )


def _properties_summarize(summary, req: RunRequest) -> Dict[str, Any]:
    result = {
        "diameter": summary.diameter,
        "radius": summary.radius,
        "center": sorted(summary.center()),
        "peripheral": sorted(summary.peripheral()),
    }
    if req.params["include_girth"]:
        result["girth"] = summary.girth
    return result


def _properties_present(args, graph, outcome: RunOutcome) -> None:
    summary = outcome.summary
    print(f"graph properties of {graph!r} (Lemmas 2-7)")
    _print_cost(outcome.metrics)
    print(f"diameter:   {summary.diameter}")
    print(f"radius:     {summary.radius}")
    print(f"girth:      {summary.girth}")
    print(f"center:     {sorted(summary.center())}")
    print(f"peripheral: {sorted(summary.peripheral())}")


register(Protocol(
    name="properties",
    entry_point="core.run_graph_properties",
    run=_properties_run,
    summarize=_properties_summarize,
    schema=(
        ParamSpec("include_girth", kind="bool", default=True,
                  help="include the Lemma 7 girth computation"),
        ParamSpec("track_edges", kind="bool", default=False,
                  help="record per-edge bit counters (cut analyses)"),
    ),
    capabilities=frozenset({"faults", "trace", "girth", "vector"}),
    vector_run=_properties_vector_run,
    vector_entry_point="vector.run_graph_properties",
    help="Lemmas 2-7: all exact properties",
    cli=CliSpec(
        help="Lemmas 2-7: all exact properties",
        present=_properties_present,
    ),
))


# ---------------------------------------------------------------------------
# approx — Theorem 4 / Corollary 4
# ---------------------------------------------------------------------------


def _approx_present(args, graph, outcome: RunOutcome) -> None:
    summary = outcome.summary
    print(f"(x,1+{args.epsilon}) approximation on {graph!r} "
          f"(Theorem 4 / Corollary 4)")
    _print_cost(outcome.metrics)
    print(f"diameter estimate: {summary.diameter_estimate}")
    print(f"radius estimate:   {summary.radius_estimate}")
    print(f"center candidates: {sorted(summary.center_approx())}")


register(Protocol(
    name="approx",
    entry_point="core.run_approx_properties",
    run=lambda req: core.run_approx_properties(
        req.graph, req.params["epsilon"], **req.common.kwargs()
    ),
    summarize=lambda s, req: {
        "epsilon": req.params["epsilon"],
        "diameter_estimate": s.diameter_estimate,
        "radius_estimate": s.radius_estimate,
    },
    schema=(
        ParamSpec("epsilon", kind="float", default=0.5,
                  help="approximation parameter (stretch 1+epsilon)"),
    ),
    capabilities=frozenset({"faults", "trace"}),
    help="Theorem 4 / Corollary 4: (x,1+eps)",
    cli=CliSpec(
        help="Theorem 4 / Corollary 4: (x,1+eps)",
        args=(CliArg("--epsilon", kind="float", default=0.5),),
        collect=lambda args: {"epsilon": args.epsilon},
        present=_approx_present,
        trace_collect=lambda args: (
            {"epsilon": args.epsilon} if args.epsilon is not None else {}
        ),
    ),
))


# ---------------------------------------------------------------------------
# girth / girth-approx — Lemma 7 / Theorem 5
# ---------------------------------------------------------------------------


def _girth_present(args, graph, outcome: RunOutcome) -> None:
    if args.epsilon is None:
        print(f"exact girth (Lemma 7) on {graph!r}")
    else:
        print(f"(x,1+{args.epsilon}) girth (Theorem 5) on {graph!r}")
    _print_cost(outcome.metrics)
    print(f"girth: {outcome.summary.girth}")


register(Protocol(
    name="girth",
    entry_point="core.run_exact_girth",
    run=lambda req: core.run_exact_girth(
        req.graph, **req.common.kwargs()
    ),
    summarize=lambda s, req: {"girth": s.girth},
    capabilities=frozenset({"faults", "trace", "girth", "vector"}),
    vector_run=lambda req: vector.run_exact_girth(
        req.graph, **req.common.kwargs()
    ),
    vector_entry_point="vector.run_exact_girth",
    smoke_graph="cycle:9",
    help="Lemma 7 / Theorem 5",
    cli=CliSpec(
        help="Lemma 7 / Theorem 5",
        args=(
            CliArg("--epsilon", kind="float",
                   help="approximate with this epsilon (omit for exact)"),
        ),
        collect=lambda args: (
            {"epsilon": args.epsilon} if args.epsilon is not None else {}
        ),
        select=lambda args: (
            "girth-approx" if args.epsilon is not None else "girth"
        ),
        present=_girth_present,
        trace_collect=lambda args: (
            {"epsilon": args.epsilon} if args.epsilon is not None else {}
        ),
    ),
))


register(Protocol(
    name="girth-approx",
    entry_point="core.run_approx_girth",
    run=lambda req: core.run_approx_girth(
        req.graph, req.params["epsilon"], **req.common.kwargs()
    ),
    summarize=lambda s, req: {
        "epsilon": req.params["epsilon"], "girth": s.girth,
    },
    schema=(
        ParamSpec("epsilon", kind="float", default=0.5,
                  help="approximation parameter (stretch 2(1+epsilon))"),
    ),
    capabilities=frozenset({"faults", "trace", "girth"}),
    smoke_graph="cycle:9",
    help="Theorem 5: approximate girth",
    # No ``present`` hook: the subcommand surface folds this into
    # ``repro girth --epsilon``; the spec only feeds ``trace run``.
    cli=CliSpec(
        help="Theorem 5: approximate girth",
        trace_collect=lambda args: (
            {"epsilon": args.epsilon} if args.epsilon is not None else {}
        ),
    ),
))


# ---------------------------------------------------------------------------
# two-vs-four — Algorithm 3 / Theorem 7
# ---------------------------------------------------------------------------


def _two_vs_four_graph(args):
    if args.graph:
        return parse_graph(args.graph)
    if args.family == "diameter2":
        return diameter_two_random(args.n, seed=args.seed)
    return diameter_four_blobs(args.n, seed=args.seed)


def _two_vs_four_present(args, graph, outcome: RunOutcome) -> None:
    summary = outcome.summary
    print(f"2-vs-4 (Algorithm 3 / Theorem 7) on {graph!r}")
    _print_cost(outcome.metrics)
    print(f"verdict: diameter {summary.diameter} "
          f"(branch: {summary.branch})")


register(Protocol(
    name="two-vs-four",
    entry_point="core.run_two_vs_four",
    run=lambda req: core.run_two_vs_four(
        req.graph, **req.common.kwargs()
    ),
    summarize=lambda s, req: {
        "diameter": s.diameter, "branch": s.branch,
    },
    capabilities=frozenset({"faults", "trace"}),
    smoke_graph="diameter2:16:seed=1",
    help="Algorithm 3 / Theorem 7 (promise input)",
    cli=CliSpec(
        help="Algorithm 3 / Theorem 7 (promise input)",
        args=(
            CliArg("--graph", default=None),
            CliArg("--family", choices=("diameter2", "diameter4"),
                   default="diameter2"),
            CliArg("--n", kind="int", default=60),
        ),
        build_graph=_two_vs_four_graph,
        present=_two_vs_four_present,
    ),
))


# ---------------------------------------------------------------------------
# baseline — Section 3.1 strawmen
# ---------------------------------------------------------------------------

_BASELINE_VARIANTS = (
    "sequential-bfs", "distance-vector", "distance-vector-delta",
    "link-state",
)


def _baseline_present(args, graph, outcome: RunOutcome) -> None:
    from .registry import get

    summary = outcome.summary
    print(f"baseline '{args.algorithm}' APSP on {graph!r} (Section 3.1)")
    _print_cost(outcome.metrics)
    ours = get("apsp").execute(graph, {"seed": args.seed}).summary
    print(f"Algorithm 1 on the same graph: {ours.rounds} rounds "
          f"({summary.rounds / max(1, ours.rounds):.1f}x)")


register(Protocol(
    name="baseline",
    entry_point="core.run_baseline_apsp",
    run=lambda req: core.run_baseline_apsp(
        req.graph, req.params["variant"], **req.common.kwargs()
    ),
    summarize=lambda s, req: {
        "variant": req.params["variant"],
        "diameter": s.diameter(),
        "radius": s.radius(),
    },
    schema=(
        ParamSpec("variant", kind="str", required=True,
                  choices=_BASELINE_VARIANTS,
                  example="distance-vector",
                  help="which Section 3.1 strawman to run"),
    ),
    capabilities=frozenset({"faults"}),
    help="Section 3.1 strawmen APSP",
    cli=CliSpec(
        help="Section 3.1 strawmen APSP",
        args=(
            CliArg("--algorithm", default="distance-vector",
                   choices=_BASELINE_VARIANTS),
        ),
        collect=lambda args: {"variant": args.algorithm},
        present=_baseline_present,
    ),
))


# ---------------------------------------------------------------------------
# leader — min-id election
# ---------------------------------------------------------------------------


def _leader_present(args, graph, outcome: RunOutcome) -> None:
    print(f"leader election on {graph!r}")
    _print_cost(outcome.metrics)
    print(f"leader: {outcome.result['leader']}")


register(Protocol(
    name="leader",
    entry_point="core.run_leader_election",
    run=lambda req: core.run_leader_election(
        req.graph, **req.common.kwargs()
    ),
    summarize=lambda s, req: {
        "leader": next(iter(s[0].values())).leader,
    },
    metrics_of=lambda s: s[1],
    capabilities=frozenset({"faults", "trace"}),
    help="min-id leader election in O(n)",
    cli=CliSpec(
        help="min-id leader election in O(n)",
        present=_leader_present,
    ),
))


# ---------------------------------------------------------------------------
# Primitives and companions (registered for campaigns/benchmarks; no
# standalone subcommand — the campaign harness and ``trace run`` reach
# them).
# ---------------------------------------------------------------------------


register(Protocol(
    name="remark1",
    entry_point="core.run_remark1",
    run=lambda req: core.run_remark1(req.graph, **req.common.kwargs()),
    summarize=lambda s, req: {
        "diameter_estimate":
            next(iter(s[0].values())).diameter_estimate,
        "radius_estimate":
            next(iter(s[0].values())).radius_estimate,
    },
    metrics_of=lambda s: s[1],
    capabilities=frozenset({"faults", "trace"}),
    help="Remark 1: single-BFS (x,2) estimator in O(D)",
))


register(Protocol(
    name="bfs",
    entry_point="core.run_bfs",
    run=lambda req: core.run_bfs(req.graph, **req.common.kwargs()),
    summarize=lambda s, req: {
        "ecc_root": next(iter(s[0].values())).ecc_root,
        "max_depth": max(r.depth for r in s[0].values()),
    },
    metrics_of=lambda s: s[1],
    capabilities=frozenset({"faults", "trace", "vector"}),
    vector_run=lambda req: vector.run_bfs(
        req.graph, **req.common.kwargs()
    ),
    vector_entry_point="vector.run_bfs",
    help="one BFS + echo from node 1 in O(D)",
))


register(Protocol(
    name="tree-check",
    entry_point="core.run_tree_check",
    run=lambda req: core.run_tree_check(
        req.graph, **req.common.kwargs()
    ),
    summarize=lambda s, req: {"is_tree": bool(s[0])},
    metrics_of=lambda s: s[1],
    capabilities=frozenset({"faults", "trace"}),
    help="Claim 1: tree test in O(D)",
))


register(Protocol(
    name="k-bfs",
    entry_point="core.run_k_bfs",
    run=lambda req: core.run_k_bfs(
        req.graph, req.params["sources"], req.params["k"],
        **req.common.kwargs(),
    ),
    summarize=lambda s, req: {
        "k": req.params["k"],
        "sources": sorted(req.params["sources"]),
        "max_table": max(len(r.distances) for r in s[0].values()),
    },
    metrics_of=lambda s: s[1],
    schema=(
        ParamSpec("sources", kind="int_list", required=True,
                  example=[1], help="source set of the partial BFS"),
        ParamSpec("k", kind="int", required=True, minimum=0,
                  example=2, help="depth cut-off (Definition 7)"),
    ),
    capabilities=frozenset({"faults"}),
    help="Definition 7: partial k-BFS trees from a source set",
))


register(Protocol(
    name="all-two-bfs",
    entry_point="core.run_all_two_bfs",
    run=lambda req: core.run_all_two_bfs(
        req.graph, **req.common.kwargs()
    ),
    summarize=lambda s, req: {
        "all_trees_complete":
            bool(next(iter(s[0].values())).all_trees_complete),
    },
    metrics_of=lambda s: s[1],
    capabilities=frozenset({"faults", "trace"}),
    help="Section 8: every node learns its 2-BFS tree",
))


register(Protocol(
    name="dominating-set",
    entry_point="core.run_dominating_set",
    run=lambda req: core.run_dominating_set(
        req.graph, req.params["k"], **req.common.kwargs()
    ),
    summarize=lambda s, req: {
        "k": req.params["k"],
        "size": next(iter(s[0].values())).size,
    },
    metrics_of=lambda s: s[1],
    schema=(
        ParamSpec("k", kind="int", required=True, minimum=1,
                  example=2, help="domination radius (Lemma 10)"),
    ),
    capabilities=frozenset({"faults"}),
    help="Lemma 10: k-dominating set of size <= n/(k+1)",
))


register(Protocol(
    name="prt-diameter",
    entry_point="core.run_prt_diameter",
    run=lambda req: core.run_prt_diameter(
        req.graph, **req.common.kwargs()
    ),
    summarize=lambda s, req: {"estimate": s.estimate},
    capabilities=frozenset({"faults", "trace"}),
    help="Section 3.6 companion: the (x,3/2) diameter estimator",
))


register(Protocol(
    name="pebble",
    entry_point="core.run_pebble_traversal",
    run=lambda req: core.run_pebble_traversal(
        req.graph, **req.common.kwargs()
    ),
    summarize=lambda s, req: {
        "visited": len(s[0]),
        "last_visit_round":
            max(r.first_visit_round for r in s[0].values()),
    },
    metrics_of=lambda s: s[1],
    capabilities=frozenset({"faults", "trace"}),
    help="pebble traversal of T_1 (Algorithm 1's scheduler)",
))


# ---------------------------------------------------------------------------
# weighted-apsp — the subdivision reduction as a first-class protocol
# ---------------------------------------------------------------------------


def _weighted_run(req: RunRequest):
    weighted = deterministic_weights(
        req.graph, req.params["max_weight"],
        seed=req.params["weight_seed"],
    )
    return run_weighted_apsp(weighted, **req.common.kwargs())


def _weighted_present(args, graph, outcome: RunOutcome) -> None:
    summary = outcome.summary
    print(f"weighted APSP (subdivision reduction) on {graph!r} "
          f"with W = {summary.max_weight}")
    _print_cost(outcome.metrics)
    print(f"weighted diameter: {summary.weighted_diameter()}   "
          f"expanded n: {summary.expanded_n}")


register(Protocol(
    name="weighted-apsp",
    entry_point="graphs.run_weighted_apsp",
    run=_weighted_run,
    summarize=lambda s, req: {
        "max_weight": s.max_weight,
        "expanded_n": s.expanded_n,
        "weighted_diameter": s.weighted_diameter(),
    },
    schema=(
        ParamSpec("max_weight", kind="int", default=4, minimum=1,
                  help="largest edge weight W (blow-up factor)"),
        ParamSpec("weight_seed", kind="int", default=0,
                  help="seed of the deterministic weight assignment"),
    ),
    capabilities=frozenset({"faults", "trace", "weighted"}),
    help="weighted APSP via the w-subdivision of every edge",
    cli=CliSpec(
        help="weighted APSP via the subdivision reduction",
        args=(
            CliArg("--max-weight", kind="int", default=4,
                   help="largest edge weight W"),
            CliArg("--weight-seed", kind="int", default=0,
                   help="seed of the weight assignment"),
        ),
        collect=lambda args: {
            "max_weight": args.max_weight,
            "weight_seed": args.weight_seed,
        },
        present=_weighted_present,
        trace_collect=lambda args: {},
    ),
))


# ---------------------------------------------------------------------------
# chaos — the hostile test protocol
# ---------------------------------------------------------------------------


def _chaos_run(req: RunRequest):
    """A deliberately hostile task for exercising harness hardening.

    Modes: ``ok`` (succeed with an empty metrics block), ``error``
    (raise :class:`TaskError`), ``hang`` (sleep ``seconds`` — pair it
    with the campaign timeout), ``crash`` (kill the worker process
    outright).  Real campaigns never use this; tests and the CI
    fault-smoke job use it to prove timeouts, retries and crash
    isolation work end to end.
    """
    mode = req.params["mode"]
    if mode == "hang":
        time.sleep(req.params["seconds"])
    elif mode == "crash":
        os._exit(13)
    elif mode == "error":
        raise TaskError("chaos task failed on purpose")
    elif mode != "ok":
        raise TaskError(f"unknown chaos mode {mode!r}")
    return {"mode": mode}, RunMetrics()


register(Protocol(
    name="chaos",
    entry_point="protocols.builtin._chaos_run",
    run=_chaos_run,
    summarize=lambda s, req: s[0],
    metrics_of=lambda s: s[1],
    schema=(
        ParamSpec("mode", kind="str", default="error",
                  example="ok",
                  help="ok | error | hang | crash"),
        ParamSpec("seconds", kind="float", default=3600.0,
                  help="hang duration (cap it with --timeout)"),
    ),
    help="hostile test protocol (timeouts, retries, crash isolation)",
))
