"""The protocol registry: declare each algorithm once, run it anywhere.

A :class:`Protocol` bundles everything the rest of the codebase needs
to know about one algorithm:

* the ``core.run_*`` entry point (as a callable and as a dotted name
  for static drift checks),
* a typed parameter schema (:mod:`.params`) with coercion/validation,
* capability flags (``faults`` / ``trace`` / ``girth`` / ``weighted``),
* hooks turning the native summary into a JSON-pure result record, and
* optional CLI presentation metadata (:class:`CliSpec`).

Every consumer — the campaign harness, ``repro`` subcommands,
``repro trace run``, the benchmark suite and the experiments — goes
through the same :class:`RunRequest` → :class:`RunOutcome` envelope,
so an algorithm registered here is automatically available everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..congest.metrics import RunMetrics
from ..graphs.graph import Graph
from .errors import ParamError, TaskError
from .params import CommonParams, ParamSpec, split_common, validate_params

#: The capability vocabulary.  ``faults``: accepts fault injection;
#: ``trace``: drivable from ``repro trace run`` (all network-running
#: protocols also work under ``repro campaign --trace``); ``girth``:
#: computes girth information; ``weighted``: consumes weighted input
#: via the subdivision reduction; ``vector``: runnable on the numpy
#: round engine (:mod:`repro.vector`) via ``backend="vector"``.
CAPABILITIES = frozenset({"faults", "trace", "girth", "weighted", "vector"})


def numpy_available() -> bool:
    """Whether the optional numpy dependency imports."""
    from ..vector import HAS_NUMPY

    return HAS_NUMPY


@dataclass(frozen=True)
class RunRequest:
    """One validated request to run a protocol on a graph."""

    graph: Graph
    #: Coerced protocol-specific params (defaults applied).
    params: Mapping[str, Any]
    #: The simulator-wide axes (seed / policy / bandwidth / faults).
    common: CommonParams = field(default_factory=CommonParams)


@dataclass(frozen=True)
class RunOutcome:
    """The uniform envelope every protocol run returns.

    ``summary`` is the native object the core entry point produced
    (for in-process callers: experiments, the CLI's presentation
    hooks); ``result`` is the small JSON-pure record the harness
    stores; ``metrics`` the run's cost counters.
    """

    protocol: str
    summary: Any
    result: Dict[str, Any]
    metrics: RunMetrics


def default_metrics_of(summary: Any) -> RunMetrics:
    """Default ``metrics_of`` hook: the summary's ``.metrics``."""
    return summary.metrics


@dataclass(frozen=True)
class CliArg:
    """One extra argparse flag a protocol's subcommand takes."""

    flag: str
    kind: str = "str"            # "int" | "float" | "str"
    default: Any = None
    required: bool = False
    choices: Optional[Tuple[str, ...]] = None
    help: str = ""


@dataclass(frozen=True)
class CliSpec:
    """How a protocol appears in the ``repro`` command tree.

    Only protocols carrying a ``CliSpec`` get a standalone run
    subcommand; the hooks keep the *presentation* (argument names,
    printed report) next to the protocol declaration so ``cli.py``
    stays a generic loop over the registry.
    """

    help: str
    args: Tuple[CliArg, ...] = ()
    #: Build the graph from parsed args; ``None`` = positional spec.
    build_graph: Optional[Callable[[Any], Graph]] = None
    #: Map parsed args to protocol params (default: no params).
    collect: Optional[Callable[[Any], Dict[str, Any]]] = None
    #: Redirect to a sibling protocol based on args (e.g. ``girth``
    #: with ``--epsilon`` runs ``girth-approx``).
    select: Optional[Callable[[Any], str]] = None
    #: Print the report; may return an exit code.
    present: Optional[Callable[[Any, Graph, RunOutcome], Optional[int]]] = None
    #: Map ``repro trace run`` args to protocol params.
    trace_collect: Optional[Callable[[Any], Dict[str, Any]]] = None


@dataclass(frozen=True)
class Protocol:
    """One registered algorithm (see module docstring)."""

    name: str
    #: Dotted location of the public entry point, e.g.
    #: ``"core.run_apsp"`` — the hook static drift checks key on.
    entry_point: str
    #: Execute the validated request; returns the native summary.
    run: Callable[[RunRequest], Any]
    #: Native summary → JSON-pure result dict (not called for
    #: degraded runs).
    summarize: Callable[[Any, RunRequest], Dict[str, Any]]
    #: Native summary → :class:`RunMetrics` (default: ``.metrics``).
    metrics_of: Callable[[Any], RunMetrics] = default_metrics_of
    schema: Tuple[ParamSpec, ...] = ()
    capabilities: FrozenSet[str] = frozenset()
    #: Cross-parameter validation (e.g. "either sources or
    #: num_sources"); runs at spec-expansion *and* task time.
    check: Optional[Callable[[Dict[str, Any]], None]] = None
    #: Graph spec the completeness test drives a minimal run on.
    smoke_graph: str = "path:6"
    help: str = ""
    cli: Optional[CliSpec] = None
    #: Execute the validated request on the numpy round engine.  Set
    #: exactly when the ``vector`` capability is declared.
    vector_run: Optional[Callable[[RunRequest], Any]] = None
    #: Dotted location of the vector twin, e.g. ``"vector.run_apsp"``
    #: — the hook static drift checks key on.
    vector_entry_point: Optional[str] = None

    def __post_init__(self) -> None:
        extra = self.capabilities - CAPABILITIES
        if extra:
            raise ValueError(
                f"protocol {self.name!r}: unknown capabilities "
                f"{sorted(extra)}; expected a subset of "
                f"{sorted(CAPABILITIES)}"
            )
        has_vector = "vector" in self.capabilities
        if has_vector != (
            self.vector_run is not None
            and self.vector_entry_point is not None
        ):
            raise ValueError(
                f"protocol {self.name!r}: the 'vector' capability and "
                f"the vector_run/vector_entry_point hooks must be "
                f"declared together"
            )

    def available_backends(self) -> Tuple[str, ...]:
        """The backends this protocol can actually run on right now.

        ``vector`` is reported only when the protocol declares the
        capability *and* numpy imports — this is what the CLI and the
        capability listings surface.
        """
        if "vector" in self.capabilities and numpy_available():
            return ("object", "vector")
        return ("object",)

    def _check_backend(self, common: CommonParams) -> None:
        if common.backend != "vector":
            return
        if "vector" not in self.capabilities:
            vector_capable = sorted(
                p.name for p in _REGISTRY.values()
                if "vector" in p.capabilities
            )
            raise ParamError(
                f"{self.name}: backend 'vector' is not supported by "
                f"this protocol; vector-capable protocols: "
                f"{vector_capable}"
            )
        if not numpy_available():
            from ..vector import NUMPY_HINT

            raise ParamError(f"{self.name}: {NUMPY_HINT}")
        if common.faults is not None:
            raise ParamError(
                f"{self.name}: backend 'vector' does not support fault "
                f"injection; use backend 'object' for faulty networks"
            )
        if common.policy != "strict":
            raise ParamError(
                f"{self.name}: backend 'vector' supports only the "
                f"'strict' bandwidth policy, got {common.policy!r}; "
                f"use backend 'object'"
            )

    def request(
        self, graph: Graph, params: Optional[Mapping[str, Any]] = None
    ) -> RunRequest:
        """Validate raw params into a :class:`RunRequest`."""
        common, rest = split_common(self.name, params or {})
        self._check_backend(common)
        coerced = validate_params(self.name, self.schema, rest)
        if self.check is not None:
            self.check(coerced)
        return RunRequest(graph=graph, params=coerced, common=common)

    def check_params(self, params: Mapping[str, Any]) -> None:
        """Schema-validate ``params`` without running anything.

        This is the spec-expansion entry point: campaign specs call it
        for every expanded task so malformed parameters are rejected
        before any worker spawns.  The ``trace`` marker the harness
        merges into traced tasks is tolerated here (it is a pipeline
        flag, not an algorithm parameter).
        """
        rest = dict(params)
        rest.pop("trace", None)
        common, rest = split_common(self.name, rest)
        self._check_backend(common)
        coerced = validate_params(self.name, self.schema, rest)
        if self.check is not None:
            self.check(coerced)

    def execute(
        self, graph: Graph, params: Optional[Mapping[str, Any]] = None
    ) -> RunOutcome:
        """Run the full envelope: validate → run → summarize.

        When injected faults crashed or stalled nodes, the run's
        results are partial and the aggregate summaries undefined, so
        the result carries a ``degraded`` marker (with the counts)
        instead of possibly-wrong aggregates; ``summarize`` is only
        called for clean runs.
        """
        request = self.request(graph, params)
        if request.common.backend == "vector":
            summary = self.vector_run(request)
        else:
            summary = self.run(request)
        metrics = self.metrics_of(summary)
        if metrics.nodes_crashed or metrics.nodes_stalled:
            result: Dict[str, Any] = {
                "degraded": True,
                "nodes_crashed": metrics.nodes_crashed,
                "nodes_stalled": metrics.nodes_stalled,
            }
        else:
            result = self.summarize(summary, request)
        return RunOutcome(
            protocol=self.name, summary=summary, result=result,
            metrics=metrics,
        )


#: name → protocol, in registration order.
_REGISTRY: Dict[str, Protocol] = {}


def register(protocol: Protocol) -> Protocol:
    """Add a protocol to the registry (names must be unique)."""
    if protocol.name in _REGISTRY:
        raise ValueError(
            f"protocol {protocol.name!r} is already registered"
        )
    _REGISTRY[protocol.name] = protocol
    return protocol


def _ensure_builtin() -> None:
    from . import builtin  # noqa: F401  (import for side effects)


def get(name: str) -> Protocol:
    """Look up a protocol by name, or raise :class:`TaskError`."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise TaskError(
            f"unknown algorithm {name!r}; available: {names()}"
        )


def names() -> List[str]:
    """All registered protocol names, sorted."""
    _ensure_builtin()
    return sorted(_REGISTRY)


def protocols() -> Tuple[Protocol, ...]:
    """All registered protocols, in registration order."""
    _ensure_builtin()
    return tuple(_REGISTRY.values())


def run(
    name: str,
    graph: Graph,
    params: Optional[Mapping[str, Any]] = None,
    **common: Any,
) -> RunOutcome:
    """Convenience wrapper: ``run("apsp", g, seed=3)``.

    ``common`` keywords (``seed``/``policy``/``bandwidth_bits``/
    ``faults``) are merged over ``params``; experiments and benchmarks
    use this to invoke algorithms through the envelope without
    touching any hand-written dispatch table.
    """
    merged = dict(params or {})
    merged.update(common)
    return get(name).execute(graph, merged)
