"""Typed parameter schemas for registered protocols.

Each protocol declares its parameters once as a tuple of
:class:`ParamSpec`.  The same schema is used

* at **spec-expansion time** (``CampaignSpec.expand``) to reject
  malformed campaigns before any worker spawns,
* at **task time** (``execute_task`` / ``Protocol.execute``) to coerce
  raw JSON params into the types the core entry points expect, and
* by the CLI / docs tooling to describe what a protocol accepts.

Coercion is deliberately conservative: values are converted only
between obviously-compatible representations (``"3"`` → ``3``,
``[1, 2]`` → ``[1, 2]``), and every rejection carries an actionable
message naming the protocol, the parameter, and what was expected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from .errors import ParamError

#: Parameter kinds understood by :meth:`ParamSpec.coerce`.
KINDS = ("int", "float", "str", "bool", "int_list")

#: The execution backends a protocol run can request.  ``object`` is
#: the per-node generator engine (the reference); ``vector`` the numpy
#: round engine (:mod:`repro.vector`), available only on protocols
#: carrying the ``vector`` capability.
BACKENDS = ("object", "vector")


@dataclass(frozen=True)
class ParamSpec:
    """Declaration of one protocol parameter."""

    name: str
    kind: str = "str"
    #: Default applied when the parameter is absent (ignored when
    #: ``required``).  ``None`` means "absent stays absent".
    default: Any = None
    required: bool = False
    #: Allowed values (post-coercion), or ``None`` for unrestricted.
    choices: Optional[Tuple[Any, ...]] = None
    #: Inclusive lower bound for numeric kinds.
    minimum: Optional[float] = None
    #: A value the completeness test can use to drive a minimal run.
    example: Any = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"param {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {KINDS}"
            )

    def coerce(self, protocol: str, value: Any) -> Any:
        """Convert ``value`` to this parameter's type, or raise.

        Raises :class:`ParamError` with a message naming the protocol
        and parameter when the value cannot be interpreted.
        """

        def bad(expected: str):
            return ParamError(
                f"{protocol}: param {self.name!r} must be {expected}, "
                f"got {value!r}"
            )

        try:
            if self.kind == "int":
                if isinstance(value, bool) or not isinstance(
                    value, (int, str)
                ):
                    raise bad("an integer")
                coerced: Any = int(value)
            elif self.kind == "float":
                if isinstance(value, bool) or not isinstance(
                    value, (int, float, str)
                ):
                    raise bad("a number")
                coerced = float(value)
            elif self.kind == "bool":
                if not isinstance(value, bool):
                    raise bad("a boolean")
                coerced = value
            elif self.kind == "int_list":
                if isinstance(value, (str, bytes)) or not isinstance(
                    value, (list, tuple)
                ):
                    raise bad("a list of integers")
                items = []
                for item in value:
                    if isinstance(item, bool) or not isinstance(
                        item, (int, str)
                    ):
                        raise bad("a list of integers")
                    items.append(int(item))
                coerced = items
            else:  # "str"
                if not isinstance(value, str):
                    raise bad("a string")
                coerced = value
        except (TypeError, ValueError):
            raise bad(
                "an integer" if self.kind == "int"
                else "a number" if self.kind == "float"
                else "a list of integers" if self.kind == "int_list"
                else "a string"
            )
        if self.choices is not None and coerced not in self.choices:
            raise ParamError(
                f"{protocol}: param {self.name!r} must be one of "
                f"{list(self.choices)}, got {coerced!r}"
            )
        if self.minimum is not None:
            values = coerced if self.kind == "int_list" else [coerced]
            for item in values:
                if item < self.minimum:
                    raise ParamError(
                        f"{protocol}: param {self.name!r} must be "
                        f">= {self.minimum:g}, got {item!r}"
                    )
        return coerced


@dataclass(frozen=True)
class CommonParams:
    """The simulator-wide axes every protocol accepts.

    These are popped off the raw params before schema validation —
    they belong to the :class:`~repro.congest.network.Network`, not to
    any one algorithm.
    """

    seed: int = 0
    policy: str = "strict"
    bandwidth_bits: Optional[int] = None
    faults: Any = None
    #: Which engine executes the run.  Deliberately excluded from
    #: :meth:`kwargs` — the object entry points don't know about it;
    #: :meth:`~.registry.Protocol.execute` dispatches on it instead.
    backend: str = "object"

    def kwargs(self) -> Dict[str, Any]:
        """The axes as keyword arguments for a ``core.run_*`` call."""
        return {
            "seed": self.seed,
            "policy": self.policy,
            "bandwidth_bits": self.bandwidth_bits,
            "faults": self.faults,
        }


def split_common(
    protocol: str, params: Mapping[str, Any]
) -> Tuple[CommonParams, Dict[str, Any]]:
    """Separate the shared simulator axes from protocol params."""
    rest = dict(params)
    try:
        seed = int(rest.pop("seed", 0))
    except (TypeError, ValueError):
        raise ParamError(
            f"{protocol}: param 'seed' must be an integer"
        )
    policy = rest.pop("policy", "strict")
    if not isinstance(policy, str):
        raise ParamError(
            f"{protocol}: param 'policy' must be a string"
        )
    bandwidth = rest.pop("bandwidth_bits", None)
    if bandwidth is not None:
        try:
            bandwidth = int(bandwidth)
        except (TypeError, ValueError):
            raise ParamError(
                f"{protocol}: param 'bandwidth_bits' must be an "
                f"integer or null"
            )
    faults = rest.pop("faults", None)
    backend = rest.pop("backend", "object")
    if backend not in BACKENDS:
        raise ParamError(
            f"{protocol}: param 'backend' must be one of "
            f"{list(BACKENDS)}, got {backend!r}"
        )
    return CommonParams(
        seed=seed, policy=policy, bandwidth_bits=bandwidth, faults=faults,
        backend=backend,
    ), rest


def validate_params(
    protocol: str,
    schema: Tuple[ParamSpec, ...],
    params: Mapping[str, Any],
) -> Dict[str, Any]:
    """Validate and coerce ``params`` against ``schema``.

    Returns the coerced dict with defaults applied.  Unknown keys are
    rejected (the message intentionally matches the historical harness
    wording, which tests and users pattern-match on).
    """
    by_name = {spec.name: spec for spec in schema}
    unknown = set(params) - set(by_name)
    if unknown:
        raise ParamError(
            f"algorithm {protocol!r} got unknown params {sorted(unknown)}"
        )
    coerced: Dict[str, Any] = {}
    for spec in schema:
        if spec.name in params:
            coerced[spec.name] = spec.coerce(protocol, params[spec.name])
        elif spec.required:
            raise ParamError(
                f"{protocol}: required param {spec.name!r} is missing"
            )
        elif spec.default is not None:
            coerced[spec.name] = spec.default
    return coerced
