"""Errors raised by the protocol registry and run pipeline.

:class:`TaskError` is the umbrella "this run request cannot be
executed" error.  It historically lived in :mod:`repro.harness.runner`
(which still re-exports it); campaign error records store the exception
*class name*, so the name ``TaskError`` is part of the result-store
contract and must not change.
"""

from __future__ import annotations


class TaskError(RuntimeError):
    """A run request could not be executed (bad algorithm/params)."""


class ParamError(TaskError):
    """A parameter failed schema validation.

    A subclass of :class:`TaskError` so existing harness callers (and
    stored error records) see the same class name, while spec-time
    validators can still distinguish parameter problems.
    """
