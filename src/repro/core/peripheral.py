"""Peripheral vertices: exact (Lemma 6), ``(×,1+ε)``-flavoured set
approximation (Corollary 4) and the 0-round ``(×,2)`` answer
(Remark 2); thin wrappers over the property engines."""

from __future__ import annotations

from typing import FrozenSet, Tuple

from ..congest.metrics import RunMetrics
from ..graphs.graph import Graph
from .approx import remark2_center_peripheral, run_approx_properties
from .properties import run_graph_properties


def exact_peripheral(
    graph: Graph, *, seed: int = 0
) -> Tuple[FrozenSet[int], RunMetrics]:
    """Lemma 6: each node knows whether it is peripheral; ``O(n)``."""
    summary = run_graph_properties(graph, include_girth=False, seed=seed)
    return summary.peripheral(), summary.metrics


def approx_peripheral(
    graph: Graph, epsilon: float, *, seed: int = 0
) -> Tuple[FrozenSet[int], RunMetrics]:
    """Corollary 4: a superset of the peripheral set within ``2k``."""
    summary = run_approx_properties(graph, epsilon, seed=seed)
    return summary.peripheral_approx(), summary.metrics


def remark2_peripheral(graph: Graph) -> FrozenSet[int]:
    """Remark 2: the all-nodes (×,2) answer, zero rounds."""
    return remark2_center_peripheral(graph)
