"""Girth: exact in ``O(n)`` (Lemma 7) and ``(×, 1+ε)``-approximate in
``O(min{n/g + D·log(D/g), n})`` (Theorem 5).

**Exact (Lemma 7).**  Algorithm 1's BFS waves detect every non-tree
contact; a contact between depths ``d_u`` and ``d_w`` witnesses a cycle
of length ``≤ d_u + d_w + 1``, a minimal cycle is witnessed exactly by
the BFS from any of its nodes, and no contact ever claims less than the
girth (a closed walk using a non-tree edge once contains a cycle).  The
smallest candidate is min-aggregated over ``T_1``; a forest yields no
candidate, so the answer is ``∞`` (Definition 3), subsuming Claim 1's
tree test.

**Approximate (Theorem 5).**  The extended abstract sketches: "start
with a loose upper bound … for each improvement, run an instance of
S-SP on a k-dominating set, where k depends on the current estimate".
The full version being unavailable, this is a documented reconstruction
with the same interface and runtime shape:

* A ``k``-dominating source set ``DOM`` run through Algorithm 2 with
  cycle detection yields a global candidate ``m`` with
  ``g ≤ m ≤ g + 2k + 2``: a dominator sits within ``k`` of a minimal
  cycle, its wave's distances around that cycle differ from the exact-
  BFS case by at most ``k`` on each side, and candidates are never
  below ``g``.
* Iterate: start from ``k = ⌊D0/4⌋``; after each phase all nodes hold
  the same ``m`` (min-aggregated over ``T_1``) and deterministically
  shrink ``k`` toward ``Θ(ε·m)``.  Stop once ``2k + 2 ≤ ε·m/(1+ε)``,
  which forces ``m ≤ (1+ε)·g``; if ``k`` bottoms out at 1 first (tiny
  girth), fall back to the exact Lemma 7 computation — that is
  Theorem 5's ``min{·, n}`` branch.  The number of phases is
  ``O(log(D/g))``, each costing ``O(n/k + D)`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..congest.errors import GraphError
from ..congest.message import INFINITY
from ..congest.metrics import RunMetrics
from ..congest.faults import FaultsLike
from ..congest.node import NodeAlgorithm
from ..graphs.graph import Graph
from .apsp import ROOT, apsp_phase, validate_apsp_input
from .engine import execute
from .dominating import compute_dominating_set
from .properties import GIRTH_INFINITE, run_graph_properties
from .ssp import ssp_main_loop
from .subroutines import aggregate_and_share, build_bfs_tree, combine_min


@dataclass(frozen=True)
class GirthEstimate:
    """One node's output of a girth computation."""

    uid: int
    girth: float
    #: Whether the run ended in the exact (Lemma 7) branch.
    exact: bool
    #: Number of S-SP phases executed (0 for the pure exact algorithm).
    phases: int


@dataclass(frozen=True)
class GirthSummary:
    """All nodes' girth results plus run metrics."""

    results: Mapping[int, GirthEstimate]
    metrics: RunMetrics

    @property
    def rounds(self) -> int:
        """Number of communication rounds used."""
        return self.metrics.rounds

    @property
    def girth(self) -> float:
        """The girth value all nodes agreed on."""
        values = {r.girth for r in self.results.values()}
        if len(values) != 1:
            raise AssertionError("nodes disagree on the girth")
        return values.pop()


def run_exact_girth(graph: Graph, *, seed: int = 0,
                    bandwidth_bits: Optional[int] = None,
                    policy: str = "strict",
                    faults: FaultsLike = None) -> GirthSummary:
    """Lemma 7: exact girth in ``O(n)`` rounds."""
    summary = run_graph_properties(
        graph, include_girth=True, seed=seed,
        bandwidth_bits=bandwidth_bits, policy=policy, faults=faults,
    )
    results = {
        uid: GirthEstimate(uid=uid, girth=res.girth, exact=True, phases=0)
        for uid, res in summary.results.items()
    }
    return GirthSummary(results=results, metrics=summary.metrics)


class GirthApproxNode(NodeAlgorithm):
    """Per-node program of the Theorem 5 reconstruction.

    ``ctx.input_value`` is ``epsilon``.  The control flow is driven
    entirely by globally shared values (``D0`` from the ``T_1`` echo and
    the aggregated estimate ``m``), so every node takes the same branch
    in every phase without extra coordination.
    """

    def program(self):
        epsilon = float(self.ctx.input_value)
        tree = yield from build_bfs_tree(self, ROOT)
        d0 = tree.diameter_bound

        k = max(1, d0 // 4)
        phases = 0
        estimate: Optional[int] = None
        while True:
            phases += 1
            dom = yield from compute_dominating_set(self, tree, k)
            outcome = yield from ssp_main_loop(
                self, dom.in_dom, dom.size, dom.size + d0 + 2,
                detect_cycles=True,
            )
            local = (INFINITY if outcome.cycle_candidate is None
                     else outcome.cycle_candidate)
            shared = yield from aggregate_and_share(
                self, tree, local, combine_min
            )
            if shared == INFINITY:
                # No wave saw a non-tree edge: with DOM spanning trees
                # covering the whole graph this means m = n - 1, i.e. a
                # tree — girth ∞ (Definition 3).
                return GirthEstimate(uid=self.uid, girth=GIRTH_INFINITE,
                                     exact=True, phases=phases)
            estimate = shared
            if 2 * k + 2 <= epsilon * estimate / (1.0 + epsilon):
                # Estimate is certified within (1+ε): m ≤ g + 2k + 2 and
                # 2k + 2 ≤ ε·m/(1+ε) imply m ≤ (1+ε)·g.
                return GirthEstimate(uid=self.uid, girth=estimate,
                                     exact=False, phases=phases)
            if k == 1:
                break
            k = max(1, min(k - 1, int(epsilon * estimate / 8.0)))

        # Tiny girth: the min{·, n} branch — run the exact Lemma 7 path.
        outcome = yield from apsp_phase(self, tree, collect_girth=True)
        local = (INFINITY if outcome.girth_best is None
                 else outcome.girth_best)
        shared = yield from aggregate_and_share(self, tree, local,
                                                combine_min)
        girth = GIRTH_INFINITE if shared == INFINITY else shared
        return GirthEstimate(uid=self.uid, girth=girth, exact=True,
                             phases=phases)


def run_approx_girth(
    graph: Graph,
    epsilon: float,
    *,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    faults: FaultsLike = None,
) -> GirthSummary:
    """Theorem 5: ``(×, 1+ε)``-approximate girth."""
    validate_apsp_input(graph)
    if epsilon <= 0:
        raise GraphError("epsilon must be positive")
    inputs = {uid: epsilon for uid in graph.nodes}
    outcome = execute(
        graph, GirthApproxNode, validate=False, inputs=inputs, seed=seed,
        bandwidth_bits=bandwidth_bits, policy=policy, faults=faults,
    )
    return GirthSummary(results=outcome.results, metrics=outcome.metrics)
