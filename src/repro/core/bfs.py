"""Standalone BFS primitives: single BFS, partial k-BFS, Claim 1's
tree test, and the all-2-BFS-trees computation of Section 8.

These are thin per-node programs over the shared sub-protocols, exposed
because several experiments exercise them directly:

* :func:`run_bfs` — one BFS with echo (``O(D)``): every node learns its
  depth/parent, and everyone learns ``ecc(root)``.
* :func:`run_tree_check` — Claim 1: ``G`` is a tree iff no node
  receives the BFS wave more than once; ``O(D)`` rounds.
* :func:`run_k_bfs` — partial BFS trees of depth ``k`` from a source
  set (Definition 7), built on Algorithm 2 with a depth cut-off.
* :func:`run_all_two_bfs` — every node learns its 2-neighborhood (its
  2-BFS tree, Definition 7) by exchanging serialized adjacency lists.
  On the Theorem 8 gadget family this takes Θ(n/B) rounds — the
  demonstration that computing all 2-BFS trees can be as hard as
  deciding diameter 2 vs 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from ..congest.faults import FaultsLike
from ..congest.message import INFINITY, IdMessage, ValueMessage
from ..congest.metrics import RunMetrics
from ..congest.node import NodeAlgorithm
from ..graphs.graph import Graph
from .apsp import ROOT
from .engine import execute
from .messages import BfsToken
from .ssp import ssp_main_loop
from .subroutines import (
    TreeInfo,
    aggregate_and_share,
    build_bfs_tree,
    combine_max,
    combine_sum,
    wait_until_round,
)


@dataclass(frozen=True)
class BfsResult:
    """One node's view of a completed BFS with echo."""

    uid: int
    depth: int
    parent: Optional[int]
    children: Tuple[int, ...]
    ecc_root: int


class BfsNode(NodeAlgorithm):
    """Single BFS from node 1 with echo."""

    def program(self):
        tree: TreeInfo = yield from build_bfs_tree(self, ROOT)
        return BfsResult(
            uid=self.uid,
            depth=tree.depth,
            parent=tree.parent,
            children=tree.children,
            ecc_root=tree.ecc_root,
        )


def run_bfs(graph: Graph, *, seed: int = 0,
            bandwidth_bits: Optional[int] = None,
            policy: str = "strict", faults: FaultsLike = None):
    """One BFS + echo from node 1; returns ``(results, metrics)``."""
    outcome = execute(
        graph, BfsNode, seed=seed, bandwidth_bits=bandwidth_bits,
        policy=policy, faults=faults,
    )
    return outcome.results, outcome.metrics


class TreeCheckNode(NodeAlgorithm):
    """Claim 1: G is a tree iff nobody hears the BFS wave twice.

    During ``build_bfs_tree`` a node receiving the wave from several
    neighbors (at adoption or later) witnesses a cycle; an OR-aggregate
    of those witnesses decides tree-ness in ``O(D)`` rounds.
    """

    def program(self):
        # Run the standard construction but watch for duplicate tokens.
        duplicate_seen = 0
        original_program = build_bfs_tree(self, ROOT)
        # Wrap: we cannot easily hook into the subroutine, so replicate
        # the detection locally — every BfsToken beyond the first round
        # of receipt (or extra same-round senders) marks a cycle.
        token_rounds: Dict[int, int] = {}
        tree = None
        gen = original_program
        try:
            gen.send(None)
        except StopIteration as stop:  # pragma: no cover — n = 1
            tree = stop.value
        while tree is None:
            inbox = yield
            tokens = [
                (sender, msg) for sender, msg in inbox.items()
                if isinstance(msg, BfsToken) and msg.root == ROOT
            ]
            if tokens:
                first = self.round not in token_rounds.values()
                if len(tokens) > 1 or token_rounds:
                    duplicate_seen = 1
                token_rounds[self.round] = self.round
            try:
                gen.send(inbox)
            except StopIteration as stop:
                tree = stop.value
        verdict = yield from aggregate_and_share(
            self, tree, duplicate_seen, combine_max
        )
        return verdict == 0


def run_tree_check(graph: Graph, *, seed: int = 0,
                   bandwidth_bits: Optional[int] = None,
                   policy: str = "strict", faults: FaultsLike = None):
    """Claim 1's tree test; returns ``(is_tree: bool, metrics)``."""
    outcome = execute(
        graph, TreeCheckNode, seed=seed, bandwidth_bits=bandwidth_bits,
        policy=policy, faults=faults,
    )
    verdicts = set(outcome.results.values())
    if len(verdicts) != 1:
        raise AssertionError("nodes disagree on tree-ness")
    return verdicts.pop(), outcome.metrics


@dataclass(frozen=True)
class KBfsResult:
    """One node's truncated distance table (depth ≤ k sources only)."""

    uid: int
    k: int
    distances: Mapping[int, int]


class KBfsNode(NodeAlgorithm):
    """Partial k-BFS trees (Definition 7) from a source set.

    ``ctx.input_value`` is ``(k, in_s)``.  Implemented as Algorithm 2
    truncated: entries farther than ``k`` are dropped after the phase
    (wave *propagation* beyond depth k costs nothing extra here because
    the loop duration is bounded the same way; a production variant
    would also suppress forwarding at depth k — done here too).
    """

    def program(self):
        k, in_s = self.ctx.input_value
        tree = yield from build_bfs_tree(self, ROOT,
                                         mark=1 if in_s else 0)
        size_s = tree.marked_count
        duration = size_s + min(k, tree.diameter_bound) + 2
        outcome = yield from ssp_main_loop(
            self, in_s, size_s, duration, depth_limit=k
        )
        distances = {
            source: dist for source, dist in outcome.distances.items()
            if dist <= k
        }
        return KBfsResult(uid=self.uid, k=k, distances=distances)


def run_k_bfs(graph: Graph, sources: Iterable[int], k: int, *,
              seed: int = 0, bandwidth_bits: Optional[int] = None,
              policy: str = "strict", faults: FaultsLike = None):
    """Partial k-BFS from ``sources``; returns ``(results, metrics)``."""
    source_set = frozenset(sources)
    inputs = {uid: (k, uid in source_set) for uid in graph.nodes}
    outcome = execute(
        graph, KBfsNode, inputs=inputs, seed=seed,
        bandwidth_bits=bandwidth_bits, policy=policy, faults=faults,
    )
    return outcome.results, outcome.metrics


@dataclass(frozen=True)
class TwoBfsResult:
    """One node's 2-BFS tree (as its 2-neighborhood) plus the global
    verdict of the Section 8 question."""

    uid: int
    two_neighborhood: FrozenSet[int]
    #: True iff every node's 2-BFS tree spans the whole graph — i.e.
    #: the graph has diameter ≤ 2 (the Theorem 8 reduction).
    all_trees_complete: bool


class AllTwoBfsNode(NodeAlgorithm):
    """Every node learns its 2-neighborhood by neighbor-list exchange.

    Each node streams its adjacency list to every neighbor, a
    ``⌊B / id_bits⌋``-id chunk per round, preceded by a length header.
    A node of degree ``Δ`` therefore needs ``⌈Δ / C⌉`` rounds — on the
    Theorem 8 gadgets, Θ(n/B), matching the lower bound.
    """

    def program(self):
        tree = yield from build_bfs_tree(self, ROOT)
        # Everyone must stream for the same number of rounds, so agree
        # on the maximum degree first (one O(D) aggregate).
        max_degree = yield from aggregate_and_share(
            self, tree, self.ctx.degree, combine_max
        )
        model = self.ctx.size_model
        header_bits = ValueMessage(0).size_bits(model)
        id_msg_bits = IdMessage(uid=1).size_bits(model)
        chunk = max(1, (self.ctx.bandwidth_bits - header_bits)
                    // id_msg_bits)
        stream_rounds = (max_degree + chunk - 1) // chunk
        start = self.round
        my_list = list(self.neighbors)
        received: Dict[int, Set[int]] = {nb: set() for nb in self.neighbors}
        cursor = 0
        while self.round < start + stream_rounds + 1:
            if cursor < len(my_list):
                batch = my_list[cursor:cursor + chunk]
                for nb in self.neighbors:
                    if cursor == 0:
                        self.send(nb, ValueMessage(len(my_list)))
                    for uid in batch:
                        self.send(nb, IdMessage(uid))
                cursor += len(batch)
            inbox = yield
            for sender, msg in inbox.items():
                if isinstance(msg, IdMessage):
                    received[sender].add(msg.uid)
        two_hop = {self.uid}
        two_hop.update(self.neighbors)
        for ids in received.values():
            two_hop.update(ids)
        # Decide the Section 8 question: does anyone miss a node?
        incomplete = 0 if len(two_hop) == self.n else 1
        verdict = yield from aggregate_and_share(
            self, tree, incomplete, combine_max
        )
        return TwoBfsResult(
            uid=self.uid,
            two_neighborhood=frozenset(two_hop),
            all_trees_complete=(verdict == 0),
        )


def run_all_two_bfs(graph: Graph, *, seed: int = 0,
                    bandwidth_bits: Optional[int] = None,
                    policy: str = "strict", faults: FaultsLike = None):
    """Compute all 2-BFS trees; returns ``(results, metrics)``."""
    outcome = execute(
        graph, AllTwoBfsNode, seed=seed, bandwidth_bits=bandwidth_bits,
        policy=policy, faults=faults, max_rounds=40 * graph.n + 2000,
    )
    return outcome.results, outcome.metrics
