"""Algorithm 2: S-Shortest-Paths in ``O(|S| + D)`` rounds.

All ``|S|`` BFS waves start *simultaneously*; contention on an edge is
resolved by a priority rule and the loser retries.  The paper proves
(Theorem 3) that a wave is delayed at most once per higher-priority
source, so ``|S| + D0`` synchronous iterations suffice (``D0 =
2·ecc(1)``, computed and broadcast during the initialization phase,
Lines 7–12).

.. admonition:: Reproduction note — the priority rule

   The extended abstract resolves contention by **source id only**
   (smaller id wins, Lines 18–19).  As written, that rule admits
   counterexamples: on a 9-cycle with ``S = {2,3,4,5,7,8,9}``, wave 5 is
   delayed by 2, 3 and 4 along its shortest path to node 1 but sails
   around the other side (where all ids are larger) undelayed, so node
   1's *first* successful receipt of id 5 carries distance 5 instead of
   4 — the "same set of delaying ids on both paths" step of the
   Theorem 3 proof does not hold for waves that cross in opposite
   directions.  ``tests/core/test_ssp.py`` reproduces this.

   We therefore default to the **(distance, id) lexicographic**
   priority — the rule established as correct by Lenzen & Peleg's
   source-detection work (PODC'13), which this paper's S-SP directly
   inspired.  It preserves the ``O(|S| + D)`` bound (a wave is still
   delayed at most ``|S|`` times) and makes the first receipt carry the
   true distance.  The paper's literal rule remains available as
   ``priority="id"`` for the demonstration.

Implementation notes:

* The per-neighbor pending lists ``L_i`` and the accept/forward rules
  follow the pseudocode line by line (Lines 13–29); each edge carries at
  most one :class:`~repro.core.messages.OfferMsg` per direction per
  round — comfortably within ``B``.
* The initialization phase reuses
  :func:`~repro.core.subroutines.build_bfs_tree` with a membership mark,
  which simultaneously gives every node ``ecc(1)`` (hence ``D0``) **and**
  ``|S|`` — both needed for the loop bound — in ``O(D)`` rounds.
* ``detect_cycles=True`` adds the Lemma 7-style bookkeeping used by the
  girth approximation (Theorem 5): every received offer for an
  already-known source closes a walk of length ``δ[s] + offer.dist``
  through ``s``, a genuine cycle-length upper bound because a source is
  never offered back across its own tree edge (Line 22 excludes the
  parent's list; the parent removed the id after its successful send).

The whole main loop is exposed as the reusable sub-protocol
:func:`ssp_main_loop` so the approximation algorithms (Theorems 4 and 5)
can run S-SP phases over computed dominating sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..congest.errors import GraphError
from ..congest.faults import FaultsLike
from ..congest.node import NodeAlgorithm
from ..graphs.graph import Graph
from ..obs.tracer import active as obs_active
from .apsp import ROOT, validate_apsp_input
from .engine import execute
from .messages import OfferMsg
from .results import SspResult, SspSummary
from .subroutines import TreeInfo, build_bfs_tree

#: Priority rules for edge contention.
PRIORITY_DIST_ID = "dist_id"   # corrected rule (default)
PRIORITY_ID = "id"             # the paper's literal rule (demonstrably unsafe)


class SspPhaseOutcome:
    """Local outcome of one S-SP phase (plain mutable record)."""

    __slots__ = ("distances", "parents", "cycle_candidate")

    def __init__(self) -> None:
        self.distances: Dict[int, int] = {}
        self.parents: Dict[int, Optional[int]] = {}
        self.cycle_candidate: Optional[int] = None


def ssp_main_loop(
    node: NodeAlgorithm,
    in_s: bool,
    size_s: int,
    duration: int,
    *,
    detect_cycles: bool = False,
    priority: str = PRIORITY_DIST_ID,
    depth_limit: Optional[int] = None,
):
    """Lines 13–29 of Algorithm 2, as an aligned sub-protocol.

    All nodes must enter in the same round knowing the same ``size_s``
    and ``duration`` (≥ ``size_s + D`` for correctness; callers pass
    ``size_s + D0 + slack``).  Returns an :class:`SspPhaseOutcome`.
    """
    if priority not in (PRIORITY_DIST_ID, PRIORITY_ID):
        raise ValueError(f"unknown priority rule {priority!r}")
    tracer = obs_active()
    loop_span: Optional[int] = None
    if tracer is not None:
        # The aligned entry round is the r0 that Theorem 3's delay
        # accounting is measured from (see repro.obs.invariants).
        tracer.event("ssp_loop_start", node=node.uid, round_no=node.round,
                     size_s=size_s, duration=duration, in_s=in_s)
        loop_span = tracer.span_begin(
            "ssp_main_loop", node=node.uid, round_no=node.round,
            size_s=size_s, duration=duration,
        )
    outcome = SspPhaseOutcome()
    known: Set[int] = set()        # the set L
    pending: Dict[int, Set[int]] = {nb: set() for nb in node.neighbors}
    if in_s:
        known.add(node.uid)
        outcome.distances[node.uid] = 0
        outcome.parents[node.uid] = None
        for nb in node.neighbors:
            pending[nb].add(node.uid)

    def offer_key(source: int) -> Tuple[int, ...]:
        if priority == PRIORITY_ID:
            return (source,)
        return (outcome.distances[source] + 1, source)

    def wire_key(message: OfferMsg) -> Tuple[int, ...]:
        if priority == PRIORITY_ID:
            return (message.source,)
        return (message.dist, message.source)

    #: source -> sender -> smallest offered dist (cycle detection only).
    seen_offers: Dict[int, Dict[int, int]] = {}

    for _ in range(duration):
        # Lines 14–17: offer the highest-priority pending id per neighbor.
        offered: Dict[int, Optional[OfferMsg]] = {}
        for nb in node.neighbors:
            if pending[nb]:
                best = min(pending[nb], key=offer_key)
                message = OfferMsg(
                    source=best,
                    dist=outcome.distances[best] + 1,
                )
                offered[nb] = message
                node.send(nb, message)
            else:
                offered[nb] = None  # l_i = ∞: nothing on the wire
        inbox = yield
        received: Dict[int, OfferMsg] = {}
        for sender, msg in inbox.items():
            if isinstance(msg, OfferMsg):
                received[sender] = msg
        if priority == PRIORITY_DIST_ID:
            # Dequeue everything sent this round BEFORE processing any
            # receipt: an improvement arriving from one neighbor may
            # re-queue the same source for another, and that fresh entry
            # must not be swallowed by the post-send removal.
            for nb in node.neighbors:
                mine = offered[nb]
                if mine is not None:
                    pending[nb].discard(mine.source)
        # Lines 18–29, neighbors in ascending id order (the paper's
        # v_1 .. v_d(v) indexing).
        for nb in node.neighbors:
            incoming = received.get(nb)
            mine = offered[nb]
            if incoming is not None and detect_cycles:
                # Remember the best offer per (source, sender); cycle
                # candidates are assembled at the end of the phase from
                # *final* distances, excluding each source's final parent
                # edge (whose offer would describe a degenerate walk).
                per_sender = seen_offers.setdefault(incoming.source, {})
                old = per_sender.get(nb)
                if old is None or incoming.dist < old:
                    per_sender[nb] = incoming.dist

            if priority == PRIORITY_ID:
                # The paper's literal blocking semantics: the smaller id
                # wins the edge; the loser's content is DROPPED and the
                # loser retries (Lines 19 / 26).  Only the first receipt
                # of an id ever counts.
                if incoming is not None and (
                    mine is None or wire_key(incoming) < wire_key(mine)
                ):
                    if incoming.source not in known:
                        outcome.distances[incoming.source] = incoming.dist
                        outcome.parents[incoming.source] = nb
                        known.add(incoming.source)
                        if tracer is not None:
                            tracer.event("wave_adopt", node=node.uid,
                                         round_no=node.round,
                                         source=incoming.source,
                                         dist=incoming.dist)
                        if depth_limit is None or \
                                incoming.dist < depth_limit:
                            for other in node.neighbors:
                                if other != nb:
                                    pending[other].add(incoming.source)
                elif mine is not None:
                    pending[nb].discard(mine.source)
                continue

            # Corrected (Lenzen–Peleg) semantics: edges are full duplex
            # in CONGEST, so nothing blocks — every staged offer leaves
            # the queue (dequeued below, before any receipt processing),
            # and every received entry is min-merged.  A strict
            # improvement is re-queued for the other neighbors and
            # overtakes stale copies by its higher priority.
            if incoming is not None:
                best = outcome.distances.get(incoming.source)
                if best is None or incoming.dist < best:
                    outcome.distances[incoming.source] = incoming.dist
                    outcome.parents[incoming.source] = nb
                    known.add(incoming.source)
                    if tracer is not None:
                        tracer.event("wave_adopt", node=node.uid,
                                     round_no=node.round,
                                     source=incoming.source,
                                     dist=incoming.dist)
                    if depth_limit is None or incoming.dist < depth_limit:
                        # k-BFS truncation (Definition 7): nodes at the
                        # cut-off depth do not extend the wave further.
                        for other in node.neighbors:
                            if other != nb:
                                pending[other].add(incoming.source)

    if loop_span is not None:
        tracer.span_end(loop_span, round_no=node.round,
                        known=len(outcome.distances))
    if detect_cycles:
        # Walk: me → s (final δ[s]) + edge to sender + sender → s at the
        # time of the offer (dist - 1); genuine because the final parent
        # edge is excluded on both sides (the sender never offers across
        # its own parent edge, and we skip ours here).
        for source, per_sender in seen_offers.items():
            if source not in outcome.distances:
                continue
            base = outcome.distances[source]
            my_parent = outcome.parents.get(source)
            for sender, dist in per_sender.items():
                if sender == my_parent:
                    continue
                candidate = base + dist
                if outcome.cycle_candidate is None or \
                        candidate < outcome.cycle_candidate:
                    outcome.cycle_candidate = candidate
    return outcome


class SspNode(NodeAlgorithm):
    """Per-node program of Algorithm 2.

    ``ctx.input_value`` is truthy iff this node belongs to ``S``.
    """

    detect_cycles = False
    priority = PRIORITY_DIST_ID

    def program(self):
        in_s = bool(self.ctx.input_value)
        self.tree: TreeInfo = yield from build_bfs_tree(
            self, ROOT, mark=1 if in_s else 0
        )
        size_s = self.tree.marked_count
        duration = size_s + self.tree.diameter_bound + 2
        outcome = yield from ssp_main_loop(
            self, in_s, size_s, duration,
            detect_cycles=self.detect_cycles,
            priority=self.priority,
        )
        return SspResult(
            uid=self.uid,
            distances=dict(outcome.distances),
            parents=dict(outcome.parents),
        )


class SspPaperRuleNode(SspNode):
    """Algorithm 2 with the paper's literal id-only priority.

    Exists to *demonstrate* (in tests and EXPERIMENTS.md) that the
    extended abstract's rule can record non-shortest distances; do not
    use it for real computations.
    """

    priority = PRIORITY_ID


def run_ssp(
    graph: Graph,
    sources: Iterable[int],
    *,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    track_edges: bool = False,
    priority: str = PRIORITY_DIST_ID,
    faults: FaultsLike = None,
) -> SspSummary:
    """Run Algorithm 2 for source set ``sources`` and assemble results."""
    validate_apsp_input(graph)
    source_set = frozenset(sources)
    unknown = source_set - set(graph.nodes)
    if unknown:
        raise GraphError(f"sources {sorted(unknown)} are not graph nodes")
    inputs = {uid: (uid in source_set) for uid in graph.nodes}
    factory = SspPaperRuleNode if priority == PRIORITY_ID else SspNode
    result = execute(
        graph,
        factory,
        validate=False,  # checked above, before the source-set check
        inputs=inputs,
        seed=seed,
        bandwidth_bits=bandwidth_bits,
        policy=policy,
        track_edges=track_edges,
        faults=faults,
    )
    return SspSummary(
        sources=source_set,
        results=result.results,
        metrics=result.metrics,
    )
