"""Diameter: exact (Lemma 3), ``(×,1+ε)`` (Corollary 4), ``(×,2)`` in
``O(D)`` (Remark 1), ``(×,3/2)`` (Corollary 1) and 2-vs-4 (Theorem 7).

Thin problem-oriented wrappers; the algorithms live in
:mod:`repro.core.properties`, :mod:`repro.core.approx`,
:mod:`repro.core.prt` and :mod:`repro.core.two_vs_four`.
"""

from __future__ import annotations

from typing import Mapping, Tuple

from ..congest.metrics import RunMetrics
from ..graphs.graph import Graph
from .approx import run_approx_properties, run_remark1
from .properties import run_graph_properties
from .prt import combined_diameter_estimate, run_prt_diameter
from .two_vs_four import run_two_vs_four


def exact_diameter(graph: Graph, *, seed: int = 0) -> Tuple[int, RunMetrics]:
    """Lemma 3: the exact diameter, known to every node; ``O(n)``."""
    summary = run_graph_properties(graph, include_girth=False, seed=seed)
    return summary.diameter, summary.metrics


def approx_diameter(
    graph: Graph, epsilon: float, *, seed: int = 0
) -> Tuple[int, RunMetrics]:
    """Corollary 4: ``(×,1+ε)`` diameter in ``O(n/D + D)``."""
    summary = run_approx_properties(graph, epsilon, seed=seed)
    return summary.diameter_estimate, summary.metrics


def remark1_diameter(graph: Graph, *, seed: int = 0) -> Tuple[int, RunMetrics]:
    """Remark 1: the ``(×,2)`` estimate ``2·ecc(1)`` in ``O(D)``."""
    results, metrics = run_remark1(graph, seed=seed)
    return next(iter(results.values())).diameter_estimate, metrics


def prt_diameter(graph: Graph, *, seed: int = 0) -> Tuple[int, RunMetrics]:
    """Section 3.6: the (×,3/2) ACIM/PRT estimator."""
    summary = run_prt_diameter(graph, seed=seed)
    return summary.estimate, summary.metrics


def corollary1_diameter(graph: Graph, *, seed: int = 0) -> Mapping[str, object]:
    """Corollary 1: per-instance min-combination of the two above."""
    return combined_diameter_estimate(graph, seed=seed)


def two_vs_four(graph: Graph, *, seed: int = 0) -> Tuple[int, RunMetrics]:
    """Theorem 7: decide diameter 2 vs 4 in ``Õ(√n)`` (promise input)."""
    summary = run_two_vs_four(graph, seed=seed)
    return summary.diameter, summary.metrics
