"""Section 3.6 companions: the Peleg–Roditty–Tal ``(×,3/2)`` diameter
approximation and the Corollary 1 / Corollary 2 combinations.

Corollary 1 combines this paper's ``O(n/D + D)`` ``(×,1+ε)`` algorithm
(ε ≤ 1/2) with [33]'s ``(×,3/2)`` algorithm into a
``O(min{D·√n, n/D + D})`` estimator.  We implement the
Aingworth–Chekuri–Indyk–Motwani estimator that [33] distributes:

1. sample ``A`` of ``Θ(√(n·log n))`` nodes (node 1 always joins);
2. solve ``A``-SP; elect ``w``, the node farthest from ``A``;
3. BFS from ``w``; gather ``w``'s distance-``r*`` cluster, where ``r*``
   is the smallest radius whose ball around ``w`` holds ≥ ``|A|`` nodes
   (found by ``O(log D)`` aggregated counts);
4. solve ``(A ∪ cluster ∪ {w})``-SP; the estimate is the largest
   distance any node saw from any source — at most ``D`` and, w.h.p.,
   at least ``⌊2D/3⌋`` (ACIM Theorem 1.1 / [33]).

Because Algorithm 2 is available as a primitive here, each multi-source
phase costs ``O(√(n·log n) + D)`` rounds instead of [33]'s sequential
``O(D·√n)`` — strictly better than the Corollary 1 bound of
``O(n^{3/4} + D)``; the benchmark records both the measured rounds and
the would-have-been sequential cost.

Corollary 2 (girth): [33]'s ``(×, 2 - 1/g)`` girth routine needs
machinery from a paper we do not have; the corollary's *combination* is
exercised by :func:`combined_girth_estimate`, which picks between the
exact ``O(n)`` algorithm (Lemma 7) and the Theorem 5 ``(×,1+ε)``
approximation using the same ``min{·}`` rule.  The substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

from ..congest.faults import FaultsLike
from ..congest.message import INFINITY
from ..congest.metrics import RunMetrics
from ..congest.node import NodeAlgorithm
from ..graphs.graph import Graph
from .apsp import ROOT, validate_apsp_input
from .engine import execute
from .girth import GirthSummary, run_approx_girth, run_exact_girth
from .ssp import ssp_main_loop
from .subroutines import (
    aggregate_and_share,
    build_bfs_tree,
    combine_max,
    combine_min,
    combine_sum,
)


@dataclass(frozen=True)
class DiameterEstimate:
    """One node's output of the (×,3/2) diameter estimator."""

    uid: int
    estimate: int
    sample_size: int
    cluster_radius: int
    #: Rounds a sequential-BFS rendering ([33]'s schedule) would need.
    sequential_cost: int


@dataclass(frozen=True)
class DiameterEstimateSummary:
    results: Mapping[int, DiameterEstimate]
    metrics: RunMetrics

    @property
    def rounds(self) -> int:
        """Number of communication rounds used."""
        return self.metrics.rounds

    @property
    def estimate(self) -> int:
        """The shared diameter estimate (within [2D/3, D])."""
        values = {r.estimate for r in self.results.values()}
        if len(values) != 1:
            raise AssertionError("nodes disagree on the estimate")
        return values.pop()


class Prt32Node(NodeAlgorithm):
    """Per-node program of the distributed ACIM/PRT (×,3/2) estimator."""

    def program(self):
        tree = yield from build_bfs_tree(self, ROOT)
        d0 = tree.diameter_bound
        target = math.sqrt(self.n * math.log2(max(2, self.n)))

        # --- Step 1+2: sample A, solve A-SP, elect the farthest node.
        in_a = (self.uid == ROOT or
                self.ctx.rng.random() < target / self.n)
        size_a = yield from aggregate_and_share(
            self, tree, 1 if in_a else 0, combine_sum
        )
        a_sp = yield from ssp_main_loop(self, in_a, size_a,
                                        size_a + d0 + 2)
        my_gap = min(a_sp.distances.values())
        # Farthest-from-A node, ties to the smaller id: first share the
        # maximum gap, then elect the smallest id attaining it.
        max_gap = yield from aggregate_and_share(
            self, tree, my_gap, combine_max
        )
        candidate = self.uid if my_gap == max_gap else INFINITY
        w = yield from aggregate_and_share(
            self, tree, candidate, combine_min
        )
        is_w = self.uid == w

        # --- Step 3: BFS from w, then find the smallest radius whose
        # ball holds >= |A| nodes, via a logarithmic scan of aggregated
        # ball sizes.
        w_sp = yield from ssp_main_loop(self, is_w, 1, 1 + d0 + 2)
        dist_w = w_sp.distances[w]
        low, high = 0, d0
        while low < high:
            mid = (low + high) // 2
            ball = yield from aggregate_and_share(
                self, tree, 1 if dist_w <= mid else 0, combine_sum
            )
            if ball >= min(self.n, int(target)):
                high = mid
            else:
                low = mid + 1
        cluster_radius = low
        in_cluster = dist_w <= cluster_radius

        # --- Step 4: SP from A ∪ cluster ∪ {w}; estimate = max distance.
        in_final = in_a or in_cluster or is_w
        size_final = yield from aggregate_and_share(
            self, tree, 1 if in_final else 0, combine_sum
        )
        final_sp = yield from ssp_main_loop(self, in_final, size_final,
                                            size_final + d0 + 2)
        my_worst = max(final_sp.distances.values())
        estimate = yield from aggregate_and_share(
            self, tree, my_worst, combine_max
        )
        return DiameterEstimate(
            uid=self.uid,
            estimate=estimate,
            sample_size=size_a,
            cluster_radius=cluster_radius,
            sequential_cost=(size_a + size_final) * (d0 + 2),
        )


def run_prt_diameter(
    graph: Graph,
    *,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    faults: FaultsLike = None,
) -> DiameterEstimateSummary:
    """Run the (×,3/2) diameter estimator (Section 3.6 companion)."""
    outcome = execute(
        graph, Prt32Node, seed=seed, bandwidth_bits=bandwidth_bits,
        policy=policy, faults=faults,
    )
    return DiameterEstimateSummary(results=outcome.results,
                                   metrics=outcome.metrics)


def combined_diameter_estimate(
    graph: Graph,
    *,
    epsilon: float = 0.5,
    seed: int = 0,
) -> Mapping[str, object]:
    """Corollary 1's combination, resolved per-instance.

    Uses the cheap ``D0`` probe to decide which algorithm minimizes the
    *predicted* cost — ``√n``-flavoured (small D) vs ``n/D + D``
    (large D) — runs it, and reports estimate + measured rounds plus
    the branch taken.
    """
    from .approx import run_approx_properties

    validate_apsp_input(graph)
    from .bfs import run_bfs

    probe, probe_metrics = run_bfs(graph, seed=seed)
    ecc_root = next(iter(probe.values())).ecc_root
    d0 = max(1, 2 * ecc_root)
    n = graph.n
    prt_cost = math.sqrt(n * math.log2(max(2, n))) + d0
    ours_cost = n / max(1, d0) + d0
    if prt_cost <= ours_cost:
        summary = run_prt_diameter(graph, seed=seed)
        return {
            "branch": "prt-3/2",
            "estimate": summary.estimate,
            "rounds": probe_metrics.rounds + summary.rounds,
        }
    summary = run_approx_properties(graph, epsilon, seed=seed)
    return {
        "branch": "holzer-wattenhofer-1+eps",
        "estimate": summary.diameter_estimate,
        "rounds": probe_metrics.rounds + summary.rounds,
    }


def combined_girth_estimate(
    graph: Graph,
    *,
    epsilon: float = 0.5,
    seed: int = 0,
) -> Mapping[str, object]:
    """Corollary 2's ``min{·}`` rule over the two girth algorithms we
    have (exact O(n) vs Theorem 5); see the module docstring for the
    documented substitution of [33]'s routine."""
    from .bfs import run_bfs

    validate_apsp_input(graph)
    probe, probe_metrics = run_bfs(graph, seed=seed)
    ecc_root = next(iter(probe.values())).ecc_root
    d0 = max(1, 2 * ecc_root)
    n = graph.n
    # Calibrated against the measured per-phase costs: one Theorem 5
    # phase costs ≈ n/k + 8·D0 and a handful of phases run, while the
    # exact path costs ≈ 3n + 6·D0 — the approximation pays off once
    # the diameter bound is small relative to n.
    if d0 < n / 6:
        summary: GirthSummary = run_approx_girth(graph, epsilon, seed=seed)
        branch = "theorem5-approx"
    else:
        summary = run_exact_girth(graph, seed=seed)
        branch = "lemma7-exact"
    return {
        "branch": branch,
        "girth": summary.girth,
        "rounds": probe_metrics.rounds + summary.rounds,
    }
