"""Typed per-node and network-level result records.

Distributed results are *distributed*: after APSP every node holds its
own distance row (the paper stresses that collecting everything at one
node could take Ω(n²) time).  The ``*Summary`` classes assemble the
per-node records of a finished simulation for convenient inspection —
an operation a real deployment would not perform, used here only by
tests, examples and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..congest.metrics import RunMetrics


@dataclass(frozen=True)
class ApspResult:
    """One node's local output of Algorithm 1.

    ``distances[w]`` is this node's hop distance to ``w`` (complete for
    connected graphs).  ``parents[w]`` is this node's parent in the BFS
    tree ``T_w`` (Remark 4: shortest paths are implicitly stored via the
    BFS trees), ``None`` at ``w`` itself.
    """

    uid: int
    distances: Mapping[int, int]
    parents: Mapping[int, Optional[int]]
    #: Smallest cycle-length candidate this node observed (``None`` when
    #: girth bookkeeping was off or no non-tree contact happened).
    girth_candidate: Optional[int] = None

    @property
    def eccentricity(self) -> int:
        """Max distance recorded — ``ecc`` of this node (Lemma 2)."""
        return max(self.distances.values())

    def next_hop(self, target: int) -> Optional[int]:
        """First hop of a shortest path toward ``target``.

        This is exactly the routing-table entry the paper's introduction
        motivates: the parent in ``T_target``.
        """
        return self.parents.get(target)


@dataclass(frozen=True)
class ApspSummary:
    """All nodes' APSP results plus run metrics (test/benchmark view)."""

    results: Mapping[int, ApspResult]
    metrics: RunMetrics

    @property
    def rounds(self) -> int:
        """Number of communication rounds used."""
        return self.metrics.rounds

    def distance(self, u: int, v: int) -> int:
        """Distance between two nodes, read from the local tables."""
        return self.results[u].distances[v]

    def eccentricities(self) -> Dict[int, int]:
        """Per-node eccentricities (Lemma 2: local maxima)."""
        return {uid: res.eccentricity for uid, res in self.results.items()}

    def diameter(self) -> int:
        """The diameter (max eccentricity, Lemma 3)."""
        return max(self.eccentricities().values())

    def radius(self) -> int:
        """The radius (min eccentricity, Lemma 4)."""
        return min(self.eccentricities().values())


@dataclass(frozen=True)
class SspResult:
    """One node's local output of Algorithm 2 (S-SP).

    ``distances[s]`` for every ``s ∈ S`` — "each node in V knows its
    distances to every node in S" — and ``parents[s]`` the neighbor
    through which ``s``'s BFS tree reached this node (Line 23).
    """

    uid: int
    distances: Mapping[int, int]
    parents: Mapping[int, Optional[int]]

    def nearest_source(self) -> Tuple[Optional[int], Optional[int]]:
        """``(source, distance)`` of the closest member of ``S``."""
        if not self.distances:
            return None, None
        source = min(self.distances, key=lambda s: (self.distances[s], s))
        return source, self.distances[source]


@dataclass(frozen=True)
class SspSummary:
    """All nodes' S-SP results plus run metrics."""

    sources: FrozenSet[int]
    results: Mapping[int, SspResult]
    metrics: RunMetrics

    @property
    def rounds(self) -> int:
        """Number of communication rounds used."""
        return self.metrics.rounds

    def distance(self, source: int, node: int) -> int:
        """Distance between two nodes, read from the local tables."""
        return self.results[node].distances[source]


@dataclass(frozen=True)
class PropertyResult:
    """One node's output for the graph-property problems (Lemmas 2–7).

    Per Definition 6: every node ends up knowing its own eccentricity
    plus the same global values (diameter / radius / girth) and whether
    it belongs to the center / peripheral sets.
    """

    uid: int
    eccentricity: int
    diameter: int
    radius: int
    is_center: bool
    is_peripheral: bool
    girth: Optional[float] = None


@dataclass(frozen=True)
class PropertySummary:
    """All nodes' property results plus run metrics."""

    results: Mapping[int, PropertyResult]
    metrics: RunMetrics

    @property
    def rounds(self) -> int:
        """Number of communication rounds used."""
        return self.metrics.rounds

    @property
    def diameter(self) -> int:
        """The diameter (max eccentricity, Lemma 3)."""
        return self._unanimous("diameter")

    @property
    def radius(self) -> int:
        """The radius (min eccentricity, Lemma 4)."""
        return self._unanimous("radius")

    @property
    def girth(self) -> float:
        """The girth all nodes agreed on (Lemma 7)."""
        return self._unanimous("girth")

    def center(self) -> FrozenSet[int]:
        """Nodes that declared themselves center vertices (Lemma 5)."""
        return frozenset(
            uid for uid, res in self.results.items() if res.is_center
        )

    def peripheral(self) -> FrozenSet[int]:
        """Nodes that declared themselves peripheral (Lemma 6)."""
        return frozenset(
            uid for uid, res in self.results.items() if res.is_peripheral
        )

    def eccentricities(self) -> Dict[int, int]:
        """Per-node eccentricities (Lemma 2: local maxima)."""
        return {uid: res.eccentricity for uid, res in self.results.items()}

    def _unanimous(self, attribute: str):
        values = {getattr(res, attribute) for res in self.results.values()}
        if len(values) != 1:
            raise AssertionError(
                f"nodes disagree on {attribute}: {sorted(map(str, values))}"
            )
        return values.pop()
