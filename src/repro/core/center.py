"""Center vertices: exact (Lemma 5), ``(×,1+ε)``-flavoured set
approximation (Corollary 4) and the 0-round ``(×,2)`` answer
(Remark 2); thin wrappers over the property engines."""

from __future__ import annotations

from typing import FrozenSet, Tuple

from ..congest.metrics import RunMetrics
from ..graphs.graph import Graph
from .approx import remark2_center_peripheral, run_approx_properties
from .properties import run_graph_properties


def exact_center(graph: Graph, *, seed: int = 0) -> Tuple[FrozenSet[int], RunMetrics]:
    """Lemma 5: each node knows whether it is a center vertex; ``O(n)``."""
    summary = run_graph_properties(graph, include_girth=False, seed=seed)
    return summary.center(), summary.metrics


def approx_center(
    graph: Graph, epsilon: float, *, seed: int = 0
) -> Tuple[FrozenSet[int], RunMetrics]:
    """Corollary 4: a superset of the center within ``2k`` of optimal."""
    summary = run_approx_properties(graph, epsilon, seed=seed)
    return summary.center_approx(), summary.metrics


def remark2_center(graph: Graph) -> FrozenSet[int]:
    """Remark 2: the all-nodes (×,2) answer, zero rounds."""
    return remark2_center_peripheral(graph)
