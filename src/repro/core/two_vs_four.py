"""Algorithm 3 (2-vs-4): distinguish diameter 2 from diameter 4 in
``Õ(√n)`` rounds (Theorem 7).

The distributed rendering of Aingworth–Chekuri–Indyk–Motwani's 2-vs-4
test with threshold ``s = √(n · log n)``:

* If some node has degree below ``s`` (the set ``L(V)`` is non-empty),
  pick one such node ``v`` (smallest id, found by an ``O(D)``
  aggregate) and compute a BFS tree from **every vertex of**
  ``N_1(v)``.  In a diameter-2 graph, ``N_1(v)`` of *any* node
  dominates the graph, so if all those trees have depth ≤ 2 the
  diameter is 2; if the diameter is 4 some tree must reach depth ≥ 3.
* Otherwise every node has degree ≥ s, and a uniformly random set of
  ``Θ(√(n·log n))`` nodes dominates the graph w.h.p. (Remark 6); BFS
  from each of them and apply the same depth test.

The paper runs the ≤ s BFS computations sequentially (``O(s·D)``, fine
because ``D ≤ 4``); having Algorithm 2 available we run them as one
S-SP phase in ``O(s + D)`` rounds — same verdict, no slower.  Node 1
always joins the sampled set so it is never empty.

The test is one-sided only under the promise ``D ∈ {2, 4}``; the runner
checks nothing beyond the paper's assumptions and simply reports the
verdict, which tests validate against the oracle on promise inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

from ..congest.message import INFINITY
from ..congest.metrics import RunMetrics
from ..congest.faults import FaultsLike
from ..congest.node import NodeAlgorithm
from ..graphs.graph import Graph
from ..obs.tracer import active as obs_active
from .apsp import ROOT
from .engine import execute
from .ssp import ssp_main_loop
from .subroutines import (
    aggregate_and_share,
    build_bfs_tree,
    combine_max,
    combine_min,
    combine_sum,
)


def degree_threshold(n: int) -> float:
    """The paper's ``s = √(n · log n)`` (base-2 logarithm)."""
    return math.sqrt(n * math.log2(max(2, n)))


@dataclass(frozen=True)
class TwoVsFourResult:
    """One node's output of Algorithm 3."""

    uid: int
    diameter: int              # 2 or 4
    branch: str                # "low-degree" or "sampled"
    source_count: int


@dataclass(frozen=True)
class TwoVsFourSummary:
    results: Mapping[int, TwoVsFourResult]
    metrics: RunMetrics

    @property
    def rounds(self) -> int:
        """Number of communication rounds used."""
        return self.metrics.rounds

    @property
    def diameter(self) -> int:
        """The unanimous 2-or-4 verdict."""
        values = {r.diameter for r in self.results.values()}
        if len(values) != 1:
            raise AssertionError("nodes disagree on the 2-vs-4 verdict")
        return values.pop()

    @property
    def branch(self) -> str:
        """Which branch ran: ``low-degree`` or ``sampled``."""
        return next(iter(self.results.values())).branch


class TwoVsFourNode(NodeAlgorithm):
    """Per-node program of Algorithm 3."""

    def program(self):
        threshold = degree_threshold(self.n)
        in_low = self.ctx.degree < threshold
        tree = yield from build_bfs_tree(self, ROOT,
                                         mark=1 if in_low else 0)
        low_count = tree.marked_count
        d0 = tree.diameter_bound

        tracer = obs_active()
        if tracer is not None:
            tracer.event("two_vs_four_branch", node=self.uid,
                         round_no=self.round, low_count=low_count)
        if low_count > 0:
            # Line 1–3: some low-degree node exists; pick the smallest.
            chosen = yield from aggregate_and_share(
                self, tree,
                self.uid if in_low else INFINITY,
                combine_min,
            )
            branch = "low-degree"
            in_s = (self.uid == chosen) or (chosen in self.neighbors)
        else:
            # Line 5: every degree ≥ s; sample ~√(n·log n) dominators.
            probability = math.sqrt(
                math.log2(max(2, self.n)) / self.n
            )
            branch = "sampled"
            in_s = (self.uid == ROOT or
                    self.ctx.rng.random() < probability)

        size_s = yield from aggregate_and_share(
            self, tree, 1 if in_s else 0, combine_sum
        )
        outcome = yield from ssp_main_loop(
            self, in_s, size_s, size_s + d0 + 2
        )
        my_worst = max(outcome.distances.values())
        worst = yield from aggregate_and_share(
            self, tree, my_worst, combine_max
        )
        # Lines 8–12: all trees depth ≤ 2 → diameter 2, else 4.
        verdict = 2 if worst <= 2 else 4
        if tracer is not None:
            tracer.event("two_vs_four_verdict", node=self.uid,
                         round_no=self.round, branch=branch,
                         worst_depth=worst, verdict=verdict)
        return TwoVsFourResult(
            uid=self.uid,
            diameter=verdict,
            branch=branch,
            source_count=size_s,
        )


def run_two_vs_four(
    graph: Graph,
    *,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    faults: FaultsLike = None,
) -> TwoVsFourSummary:
    """Run Algorithm 3 on a graph promised to have diameter 2 or 4."""
    outcome = execute(
        graph, TwoVsFourNode, seed=seed, bandwidth_bits=bandwidth_bits,
        policy=policy, faults=faults,
    )
    return TwoVsFourSummary(results=outcome.results,
                            metrics=outcome.metrics)
