"""Algorithm 1: All Pairs Shortest Paths in ``O(n)`` rounds.

The paper's algorithm, verbatim (Section 4.1):

1. build the BFS tree ``T_1`` rooted at node 1;
2. send a pebble on a DFS traversal of ``T_1``, one edge per round;
3. every time the pebble *first* enters a node ``v``, it waits one time
   slot and then starts a breadth-first search ``BFS_v`` over the edges
   of ``G``.

Lemma 1 guarantees that the one-slot wait plus the pebble's travel time
keeps all ``n`` BFS waves congestion-free — no node ever forwards two
waves in the same round, so every message fits the ``B``-bit budget.
The simulator's strict bandwidth policy re-verifies this on every edge
of every round, and the node program additionally counts would-be
violations (``lemma1_violations`` must come out zero in the property
tests).

Distances are recorded as in Remark 4: when ``BFS_v`` reaches node
``u``, the wave's depth is ``d(u, v)``, and the first sender is ``u``'s
parent in ``T_v`` — the implicit shortest-path routing table.

Termination bookkeeping (the paper leaves it implicit): ``T_1`` is built
with an echo, so node 1 knows ``ecc(1)`` and hence the bound
``D0 = 2 · ecc(1) ≥ D`` (Fact 1).  When the pebble returns home
exhausted, node 1 broadcasts a finish round ``D0 + 2`` rounds out — far
enough for the broadcast to arrive everywhere *and* for the last BFS to
complete — and all nodes stop together, aligned, so follow-up
aggregation phases (Lemmas 2–7) can run over ``T_1`` directly.  Total:
``O(D) + 2(n-1) + n + O(D) = O(n)`` rounds (Theorem 1).

With ``collect_girth=True`` the BFS waves also perform the cycle
detection of Lemma 7, at zero extra message cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..congest.faults import FaultsLike
from ..congest.node import NodeAlgorithm, NodeContext
from ..graphs.graph import Graph
from ..obs.tracer import active as obs_active
from .engine import ROOT, execute, validate_apsp_input
from .messages import BfsToken, DownMsg, PebbleMsg
from .results import ApspResult, ApspSummary
from .subroutines import build_bfs_tree


class ApspPhaseOutcome:
    """Local outcome of the pebble/BFS phase (plain mutable record)."""

    __slots__ = ("distances", "parents", "girth_best", "lemma1_violations")

    def __init__(self) -> None:
        self.distances: Dict[int, int] = {}
        self.parents: Dict[int, Optional[int]] = {}
        self.girth_best: Optional[int] = None
        self.lemma1_violations: int = 0

    def note_cycle(self, candidate: int) -> None:
        """Record a cycle-length candidate (Lemma 7 bookkeeping)."""
        if self.girth_best is None or candidate < self.girth_best:
            self.girth_best = candidate


def apsp_phase(node: NodeAlgorithm, tree, *, collect_girth: bool = False):
    """The pebble traversal + n BFS waves of Algorithm 1 (Lines 2–8).

    An aligned sub-protocol over an already-built ``T_1``
    (:class:`~repro.core.subroutines.TreeInfo`): all nodes must enter in
    the same round and all leave together in the root-announced finish
    round.  Returns an :class:`ApspPhaseOutcome`.  Exposed separately so
    the girth approximation's exact fallback (Theorem 5) can run a full
    APSP mid-program.
    """
    outcome = ApspPhaseOutcome()
    children: Tuple[int, ...] = tree.children
    next_child = 0
    visited = False
    pebble_here = tree.is_root
    start_bfs_pending = tree.is_root
    finish_round: Optional[int] = None
    tracer = obs_active()
    wave_span: Optional[int] = None

    while finish_round is None or node.round < finish_round:
        inbox = yield
        _process_waves(node, inbox, outcome, collect_girth, tracer)

        # ---- finish broadcast ----
        for _, msg in inbox.items():
            if isinstance(msg, DownMsg) and msg.root == tree.root:
                finish_round = msg.value
                for child in children:
                    node.send(child, msg)

        # ---- pebble ----
        pebble_received = any(
            isinstance(msg, PebbleMsg) for _, msg in inbox.items()
        )
        move_now = False
        if pebble_received:
            pebble_here = True
            if visited:
                move_now = True           # revisit: pass along at once
            else:
                start_bfs_pending = True  # first visit: wait (Line 5)
        elif pebble_here and start_bfs_pending:
            # The round after first arrival: start BFS_v (Line 6) and
            # move the pebble onward in the same slot.
            start_bfs_pending = False
            visited = True
            outcome.distances[node.uid] = 0
            outcome.parents[node.uid] = None
            node.send_all(BfsToken(root=node.uid, dist=0))
            if tracer is not None:
                wave_span = tracer.span_begin(
                    "bfs_wave", node=node.uid, round_no=node.round,
                    src=node.uid,
                )
            move_now = True

        if move_now:
            visited = True
            if next_child < len(children):
                node.send(children[next_child], PebbleMsg())
                if tracer is not None:
                    tracer.event("pebble_move", node=node.uid,
                                 round_no=node.round,
                                 to=children[next_child])
                next_child += 1
                pebble_here = False
            elif tree.parent is not None:
                node.send(tree.parent, PebbleMsg())
                if tracer is not None:
                    tracer.event("pebble_move", node=node.uid,
                                 round_no=node.round, to=tree.parent)
                pebble_here = False
            else:
                # Root, traversal exhausted: announce the finish round.
                finish_round = node.round + tree.diameter_bound + 2
                for child in children:
                    node.send(child, DownMsg(root=tree.root,
                                             value=finish_round))

    # All nodes leave the loop in round ``finish_round`` — aligned.
    if wave_span is not None:
        tracer.span_end(wave_span, round_no=node.round)
    return outcome


def _process_waves(node: NodeAlgorithm, inbox, outcome: ApspPhaseOutcome,
                   collect_girth: bool, tracer=None) -> None:
    """Adopt/forward BFS waves; collect girth candidates (Lemma 7)."""
    arrivals: Dict[int, List[Tuple[int, int]]] = {}
    for sender, msg in inbox.items():
        if isinstance(msg, BfsToken):
            arrivals.setdefault(msg.root, []).append((sender, msg.dist))
    forwarded = 0
    for wave_root in sorted(arrivals):
        entries = arrivals[wave_root]
        if wave_root in outcome.distances:
            # Late contact over a non-tree edge: cycle of length
            # d(me, root) + d(sender, root) + 1 (Lemma 7).
            if collect_girth:
                my_depth = outcome.distances[wave_root]
                for _, sender_depth in entries:
                    outcome.note_cycle(my_depth + sender_depth + 1)
            continue
        # Adoption: depth = sender depth + 1; parent = least id among
        # this round's senders (Section 6.1's tie rule).
        depth = entries[0][1] + 1
        senders = [sender for sender, _ in entries]
        outcome.distances[wave_root] = depth
        outcome.parents[wave_root] = min(senders)
        if tracer is not None:
            tracer.event("bfs_adopt", node=node.uid, round_no=node.round,
                         root=wave_root, dist=depth)
        if collect_girth and len(senders) > 1:
            # Two same-round senders close a cycle through the root.
            outcome.note_cycle(2 * depth)
        suppressed = set(senders)
        for neighbor in node.neighbors:
            if neighbor not in suppressed:
                node.send(neighbor, BfsToken(root=wave_root, dist=depth))
        forwarded += 1
    if forwarded > 1:
        # Lemma 1 says this never happens; count it so tests can assert
        # the invariant directly.
        outcome.lemma1_violations += forwarded - 1


class ApspNode(NodeAlgorithm):
    """Per-node program of Algorithm 1.

    Subclass hooks: :attr:`collect_girth` turns on the Lemma 7 cycle
    bookkeeping; :meth:`epilogue` lets the property algorithms
    (Lemmas 2–7) append aligned aggregation phases over ``T_1``; and
    :meth:`make_result` shapes the node's local output.
    """

    collect_girth = False

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.distances: Dict[int, int] = {}
        self.parents: Dict[int, Optional[int]] = {}
        self.girth_best: Optional[int] = None
        self.lemma1_violations: int = 0
        self.tree = None

    def program(self):
        self.tree = yield from build_bfs_tree(self, ROOT)
        outcome = yield from apsp_phase(
            self, self.tree, collect_girth=self.collect_girth
        )
        self.distances = outcome.distances
        self.parents = outcome.parents
        self.girth_best = outcome.girth_best
        self.lemma1_violations = outcome.lemma1_violations
        yield from self.epilogue()
        return self.make_result()

    # -- hooks ------------------------------------------------------------

    def epilogue(self):
        """Aligned post-APSP phase; the base algorithm has none."""
        return
        yield  # noqa: unreachable — marks this method as a generator

    def make_result(self) -> ApspResult:
        """Assemble this node's local result (override to post-process)."""
        return ApspResult(
            uid=self.uid,
            distances=dict(self.distances),
            parents=dict(self.parents),
            girth_candidate=self.girth_best if self.collect_girth else None,
        )


class ApspGirthNode(ApspNode):
    """Algorithm 1 with the Lemma 7 girth bookkeeping switched on."""

    collect_girth = True


def run_apsp(
    graph: Graph,
    *,
    collect_girth: bool = False,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    track_edges: bool = False,
    faults: FaultsLike = None,
) -> ApspSummary:
    """Run Algorithm 1 on ``graph`` and assemble all local results.

    Requires a connected graph containing node 1 (the paper's
    assumptions; every generator in :mod:`repro.graphs` satisfies them).
    With ``faults`` set the run may degrade gracefully to partial
    results (see :mod:`repro.congest.faults`).
    """
    factory = ApspGirthNode if collect_girth else ApspNode
    outcome = execute(
        graph,
        factory,
        seed=seed,
        bandwidth_bits=bandwidth_bits,
        policy=policy,
        track_edges=track_edges,
        faults=faults,
    )
    return ApspSummary(results=outcome.results, metrics=outcome.metrics)
