"""Radius: exact (Lemma 4), ``(×,1+ε)`` (Corollary 4) and ``(×,2)`` in
``O(D)`` (Remark 1); thin wrappers over the property engines."""

from __future__ import annotations

from typing import Tuple

from ..congest.metrics import RunMetrics
from ..graphs.graph import Graph
from .approx import run_approx_properties, run_remark1
from .properties import run_graph_properties


def exact_radius(graph: Graph, *, seed: int = 0) -> Tuple[int, RunMetrics]:
    """Lemma 4: the exact radius, known to every node; ``O(n)``."""
    summary = run_graph_properties(graph, include_girth=False, seed=seed)
    return summary.radius, summary.metrics


def approx_radius(
    graph: Graph, epsilon: float, *, seed: int = 0
) -> Tuple[int, RunMetrics]:
    """Corollary 4: ``(×,1+ε)`` radius in ``O(n/D + D)``."""
    summary = run_approx_properties(graph, epsilon, seed=seed)
    return summary.radius_estimate, summary.metrics


def remark1_radius(graph: Graph, *, seed: int = 0) -> Tuple[int, RunMetrics]:
    """Remark 1: ``ecc(1) ∈ [rad, 2·rad]`` in ``O(D)``."""
    results, metrics = run_remark1(graph, seed=seed)
    return next(iter(results.values())).radius_estimate, metrics
