"""Distributed k-dominating sets (Lemma 10 / Kutten–Peleg ``Diam_DOM``).

The approximation algorithms (Theorems 4 and 5, Corollary 4) need, for a
given ``k``, a set ``DOM`` with

* every node within ``k`` hops of some member (Definition 9), and
* ``|DOM| ≤ 1 + ⌊n / (k+1)⌋`` members,

computed in ``O(D + k)`` rounds.  The paper imports the Kutten–Peleg
machinery for this; we implement the classic BFS-tree residue
construction that achieves the same bounds (size differs by at most the
``+1`` for the root, absorbed by the O(·)):

1. every node knows its depth in ``T_1``; its *residue* is
   ``depth mod (k+1)``;
2. a **pipelined convergecast** counts each residue class — wave ``j``
   carries the class-``j`` census, waves are staggered so each tree edge
   carries one message per round, finishing in ``O(D + k)`` rounds;
3. the root picks the smallest class ``r*`` (≤ ``n/(k+1)`` by
   averaging) and announces it; ``DOM`` = the class ``r*`` plus the
   root;
4. every node adopts its nearest ``DOM`` ancestor as *dominator* via a
   pipelined downcast — walking up from depth ``d``, some ancestor
   within ``k`` steps has residue ``r*`` (any ``k+1`` consecutive depths
   cover all residues) or is the root, so the dominator is within ``k``
   hops, giving the partition of Definition 9.

The sub-protocol assumes an already-built
:class:`~repro.core.subroutines.TreeInfo` and the usual aligned
entry/exit convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..congest.errors import GraphError
from ..congest.faults import FaultsLike
from ..congest.node import NodeAlgorithm
from ..graphs.graph import Graph
from .apsp import ROOT
from .engine import execute
from .messages import CensusMsg, DomAnnounceMsg, DominatorMsg
from .subroutines import TreeInfo, build_bfs_tree, wait_until_round


@dataclass(frozen=True)
class DomInfo:
    """What a node knows after the dominating-set computation."""

    k: int
    residue: int
    selected_residue: int
    in_dom: bool
    size: int
    #: Nearest dominator (== uid when ``in_dom``); within ``k`` hops.
    dominator: int


def compute_dominating_set(node: NodeAlgorithm, tree: TreeInfo, k: int):
    """Aligned sub-protocol computing a k-dominating set over ``tree``.

    All nodes must enter in the same round with identical ``k``;
    returns a :class:`DomInfo` at every node, all exiting together after
    ``O(ecc_root + k)`` rounds.
    """
    if k < 1:
        raise GraphError("k-dominating set needs k >= 1")
    start = node.round
    classes = k + 1
    residue = tree.depth % classes

    # --- Phase A: pipelined residue census up the tree -------------------
    counts: List[int] = [1 if j == residue else 0 for j in range(classes)]
    reported: List[int] = [0] * classes           # children done per wave
    next_wave = 0
    census_end = start + tree.ecc_root + classes + 3
    while node.round < census_end:
        if (next_wave < classes
                and reported[next_wave] == len(tree.children)
                and not tree.is_root):
            node.send(tree.parent, CensusMsg(
                root=tree.root, wave=next_wave, value=counts[next_wave],
            ))
            next_wave += 1
        inbox = yield
        for sender, msg in inbox.items():
            if isinstance(msg, CensusMsg) and msg.root == tree.root:
                counts[msg.wave] += msg.value
                reported[msg.wave] += 1

    # --- Phase B: root selects the smallest class and announces ----------
    announce_end = census_end + tree.ecc_root + 2
    if tree.is_root:
        selected = min(range(classes), key=lambda j: (counts[j], j))
        size = counts[selected] + (1 if selected != 0 else 0)
        announce = DomAnnounceMsg(root=tree.root, residue=selected,
                                  size=size)
        for child in tree.children:
            node.send(child, announce)
    else:
        announce = None
        while announce is None:
            inbox = yield
            for _, msg in inbox.items():
                if isinstance(msg, DomAnnounceMsg) and msg.root == tree.root:
                    announce = msg
                    break
        for child in tree.children:
            node.send(child, announce)
        selected = announce.residue
        size = announce.size
    yield from wait_until_round(node, announce_end)

    in_dom = tree.is_root or residue == selected

    # --- Phase C: dominator assignment down the tree ---------------------
    assign_end = announce_end + tree.ecc_root + 2
    if in_dom:
        dominator = node.uid
        for child in tree.children:
            node.send(child, DominatorMsg(dominator=node.uid))
    else:
        dominator = None
        while dominator is None:
            inbox = yield
            for _, msg in inbox.items():
                if isinstance(msg, DominatorMsg):
                    dominator = msg.dominator
                    break
        for child in tree.children:
            node.send(child, DominatorMsg(dominator=dominator))
    yield from wait_until_round(node, assign_end)

    return DomInfo(
        k=k,
        residue=residue,
        selected_residue=selected,
        in_dom=in_dom,
        size=size,
        dominator=dominator,
    )


class DominatingSetNode(NodeAlgorithm):
    """Standalone runner: build ``T_1`` then compute a k-dominating set.

    ``ctx.input_value`` carries ``k`` (same at every node).
    """

    def program(self):
        k = int(self.ctx.input_value)
        tree = yield from build_bfs_tree(self, ROOT)
        info = yield from compute_dominating_set(self, tree, k)
        return info


def run_dominating_set(
    graph: Graph,
    k: int,
    *,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    faults: FaultsLike = None,
):
    """Run the standalone k-dominating-set computation.

    Returns ``(per-node DomInfo dict, RunMetrics)``.
    """
    if int(k) < 1:
        raise GraphError(f"k must be a positive integer, got {k!r}")
    inputs = {uid: k for uid in graph.nodes}
    outcome = execute(
        graph,
        DominatingSetNode,
        inputs=inputs,
        seed=seed,
        bandwidth_bits=bandwidth_bits,
        policy=policy,
        faults=faults,
    )
    return outcome.results, outcome.metrics
