"""Leader election: discharging the "there is a node with ID 1"
assumption.

Section 2 of the paper assumes a distinguished node 1 exists, noting
that "the time to compute n or to find the node with smallest ID and
rename it to 1 would not affect the asymptotic runtime".  This module
makes that remark executable: a minimum-id flood elects the smallest
identifier in ``O(D)`` rounds, after which any of the package's
algorithms can treat the winner as the paper's node 1.

The protocol is the classic synchronous min-flood with a termination
echo:

1. every node floods the smallest id it has heard (its own at first);
   re-flooding happens only on improvement, so each edge carries at
   most ``O(1)`` candidate messages per *improvement chain* and the
   wave of the global minimum sweeps the graph in ``ecc(min)`` rounds;
2. because nodes do not know ``D``, termination uses the doubling
   trick: in phase ``k`` the current local minimum runs a BFS-with-echo
   of radius ``2^k``; when the echo confirms that the tree stopped
   growing (count repeats) and no smaller id interfered, the minimum
   declares victory and broadcasts it.

For simplicity and because every algorithm here is ``Ω(D)`` anyway, we
implement the variant the paper alludes to: nodes know ``n`` (also a
stated model assumption), so a single ``n``-round min-flood is already
correct and tight up to constants; the echo phase then informs the
minimum that it won and aligns everyone.  ``elect_leader`` is the
sub-protocol; :func:`run_leader_election` the standalone runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..congest.message import IdMessage
from ..congest.metrics import RunMetrics
from ..congest.faults import FaultsLike
from ..congest.node import NodeAlgorithm
from ..graphs.graph import Graph
from .engine import execute


@dataclass(frozen=True)
class LeaderInfo:
    """What a node knows once election finished."""

    uid: int
    leader: int

    @property
    def is_leader(self) -> bool:
        """Whether this node won the election."""
        return self.uid == self.leader


def elect_leader(node: NodeAlgorithm, *, rounds: Optional[int] = None):
    """Aligned sub-protocol: min-id flood for a fixed number of rounds.

    All nodes must enter in the same round; they exit together
    ``rounds`` rounds later (default ``n``, always sufficient since
    ``D ≤ n - 1``), each knowing the globally smallest id.  An
    improvement is re-flooded the round it is learned, so the winner's
    wave crosses each edge exactly once — one ``IdMessage`` of
    ``O(log n)`` bits, comfortably within ``B`` alongside anything else
    a caller overlaps.
    """
    horizon = node.n if rounds is None else rounds
    best = node.uid
    node.send_all(IdMessage(uid=best))
    for _ in range(horizon):
        inbox = yield
        improved = False
        for _, msg in inbox.items():
            if isinstance(msg, IdMessage) and msg.uid < best:
                best = msg.uid
                improved = True
        if improved:
            node.send_all(IdMessage(uid=best))
    return best


class LeaderElectionNode(NodeAlgorithm):
    """Standalone min-id leader election."""

    def program(self):
        leader = yield from elect_leader(self)
        return LeaderInfo(uid=self.uid, leader=leader)


def run_leader_election(
    graph: Graph,
    *,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    faults: FaultsLike = None,
) -> Tuple[Mapping[int, LeaderInfo], RunMetrics]:
    """Elect the minimum id; returns ``(per-node LeaderInfo, metrics)``.

    Works on any connected graph — node ids need not include 1.
    """
    if not graph.is_connected():
        from ..congest.errors import GraphError

        raise GraphError("leader election requires a connected graph")
    outcome = execute(
        graph, LeaderElectionNode, validate=False, seed=seed,
        bandwidth_bits=bandwidth_bits, policy=policy, faults=faults,
    )
    return outcome.results, outcome.metrics


def relabel_for_apsp(graph: Graph) -> Tuple[Graph, Dict[int, int]]:
    """Prepare an arbitrary-id graph for the paper's algorithms.

    Returns ``(relabeled graph with ids 1..n, old → new mapping)``; the
    elected leader (the globally smallest id) becomes node 1, matching
    what the distributed renaming the paper alludes to would produce.
    """
    return graph.relabeled()
