"""Composable per-node sub-protocols.

These are generator functions designed for ``yield from`` inside a
:meth:`~repro.congest.node.NodeAlgorithm.program`.  Each one assumes all
nodes of the network enter it **in the same round** (phase alignment) and
each one leaves all nodes aligned again on exit — the invariant that lets
multi-phase algorithms like Algorithm 1 compose without per-phase
termination detection.  Alignment is achieved the way the paper implies:
the tree root learns its exact eccentricity during construction and
announces globally valid round numbers.

Provided building blocks:

* :func:`build_bfs_tree` — distributed BFS tree with echo (the paper's
  ``T_1``/``T_v`` construction, Definition 8 + Claim 1), returning a
  :class:`TreeInfo` at every node.  The root's eccentricity and a
  marked-node census ride along on the echo.
* :func:`aligned_broadcast` — root value to everyone over the tree.
* :func:`aligned_convergecast` — combine values up the tree.
* :func:`aggregate_and_share` — convergecast + broadcast: everyone ends
  up with the combined value (used for the max/min aggregations of
  Lemmas 3–6).
* :func:`wait_until_round` — idle until a globally known round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional, Set, Tuple

from ..congest.errors import ProtocolError
from ..congest.mailbox import Inbox
from ..congest.message import INFINITY
from ..congest.node import NodeAlgorithm
from ..obs.tracer import active as obs_active
from .messages import BfsToken, DownMsg, EchoMsg, JoinMsg, SyncMsg, UpMsg

Subroutine = Generator[None, Inbox, object]
Combine = Callable[[int, int], int]


@dataclass(frozen=True)
class TreeInfo:
    """What every node knows about a constructed BFS tree.

    ``ecc_root`` is exact (learned via echo + sync broadcast), so every
    node can locally compute the paper's diameter bound
    ``D0 = 2 · ecc_root ≥ D`` (Fact 1).  ``start_round`` is the first
    round of the phase following construction; all nodes leave
    :func:`build_bfs_tree` exactly then.
    """

    root: int
    depth: int
    parent: Optional[int]
    children: Tuple[int, ...]
    ecc_root: int
    marked_count: int
    start_round: int

    @property
    def is_root(self) -> bool:
        """Whether this node is the tree root."""
        return self.parent is None

    @property
    def diameter_bound(self) -> int:
        """``D0 = 2 · ecc(root)``, an upper bound on the diameter."""
        return max(1, 2 * self.ecc_root)


# ---------------------------------------------------------------------------
# Combine helpers (INFINITY-aware).
# ---------------------------------------------------------------------------


def combine_min(a: int, b: int) -> int:
    """Minimum where :data:`INFINITY` acts as +∞."""
    if a == INFINITY:
        return b
    if b == INFINITY:
        return a
    return min(a, b)


def combine_max(a: int, b: int) -> int:
    """Maximum where :data:`INFINITY` acts as +∞ (and therefore wins)."""
    if a == INFINITY or b == INFINITY:
        return INFINITY
    return max(a, b)


def combine_sum(a: int, b: int) -> int:
    """Sum of finite values (callers must not feed INFINITY)."""
    if a == INFINITY or b == INFINITY:
        raise ProtocolError("combine_sum received INFINITY")
    return a + b


def wait_until_round(node: NodeAlgorithm, target: int) -> Subroutine:
    """Idle (yielding once per round) until ``node.round == target``.

    Entering at a round past ``target`` is a protocol bug and raises.
    """
    if node.round > target:
        raise ProtocolError(
            f"node {node.uid} missed alignment round {target} "
            f"(now at {node.round})"
        )
    while node.round < target:
        yield
    return None


def build_bfs_tree(
    node: NodeAlgorithm,
    root: int,
    *,
    mark: int = 1,
    slack: int = 1,
) -> Subroutine:
    """Construct the BFS tree ``T_root`` with echo; returns :class:`TreeInfo`.

    All nodes must enter in the same round.  The protocol is the paper's
    Claim 1 BFS plus standard bookkeeping:

    1. the root floods :class:`~repro.core.messages.BfsToken`; a node
       adopting depth ``t`` re-floods to all neighbors it did *not* hear
       from in its adoption round, and tells its chosen parent (smallest
       id among the first senders) via :class:`JoinMsg`;
    2. once a node knows its children it waits for their
       :class:`EchoMsg` aggregates (max depth / mark census) and passes
       the combination up;
    3. the root, upon full echo, knows ``ecc(root)`` and the census, and
       broadcasts a :class:`SyncMsg` carrying them plus a ``start_round``
       far enough out (``ecc(root) + slack`` rounds) for everyone to
       receive it; all nodes exit together at ``start_round``.

    Total cost ≤ ``3 · ecc(root) + O(1)`` rounds, i.e. ``O(D)``.
    """
    is_root = node.uid == root
    depth: Optional[int] = 0 if is_root else None
    parent: Optional[int] = None
    first_senders: Tuple[int, ...] = ()
    mark_value = mark

    tracer = obs_active()
    tree_span = (
        tracer.span_begin("bfs_tree", node=node.uid,
                          round_no=node.round, root=root)
        if tracer is not None else None
    )

    if is_root:
        node.send_all(BfsToken(root=root, dist=0))
    # --- Phase 1: wave, adoption, child discovery -------------------------
    while depth is None:
        inbox = yield
        tokens = [
            (sender, msg)
            for sender, msg in inbox.items()
            if isinstance(msg, BfsToken) and msg.root == root
        ]
        if not tokens:
            continue
        depth = tokens[0][1].dist + 1
        first_senders = tuple(sender for sender, _ in tokens)
        parent = min(first_senders)
        node.send(parent, JoinMsg(root=root))
        suppressed = set(first_senders)
        for neighbor in node.neighbors:
            if neighbor not in suppressed:
                node.send(neighbor, BfsToken(root=root, dist=depth))

    # A child adopts one round after our flood and its JoinMsg needs one
    # more round to travel back, so joins land exactly two rounds after we
    # staged our tokens; scan both intervening inboxes.
    joined = []
    for _ in range(2):
        inbox = yield
        joined.extend(
            sender
            for sender, msg in inbox.items()
            if isinstance(msg, JoinMsg) and msg.root == root
        )
    children = tuple(sorted(joined))

    # --- Phase 2: echo ------------------------------------------------------
    pending: Set[int] = set(children)
    agg_depth = depth
    agg_marked = mark_value
    while pending:
        inbox = yield
        for sender, msg in inbox.items():
            if isinstance(msg, EchoMsg) and msg.root == root and sender in pending:
                pending.discard(sender)
                agg_depth = max(agg_depth, msg.primary)
                agg_marked += msg.secondary

    if not is_root:
        node.send(parent, EchoMsg(root=root, primary=agg_depth,
                                  secondary=agg_marked))
        # --- Phase 3 (non-root): await sync, forward, align ----------------
        sync: Optional[SyncMsg] = None
        while sync is None:
            inbox = yield
            for _, msg in inbox.items():
                if isinstance(msg, SyncMsg) and msg.root == root:
                    sync = msg
                    break
        for child in children:
            node.send(child, sync)
        yield from wait_until_round(node, sync.start_round)
        if tree_span is not None:
            tracer.span_end(tree_span, round_no=node.round, depth=depth,
                            children=len(children))
        return TreeInfo(
            root=root,
            depth=depth,
            parent=parent,
            children=children,
            ecc_root=sync.ecc_root,
            marked_count=sync.marked,
            start_round=sync.start_round,
        )

    # --- Phase 3 (root): announce -------------------------------------------
    ecc_root = agg_depth
    start_round = node.round + ecc_root + 1 + slack
    sync = SyncMsg(root=root, ecc_root=ecc_root, marked=agg_marked,
                   start_round=start_round)
    for child in children:
        node.send(child, sync)
    yield from wait_until_round(node, start_round)
    if tree_span is not None:
        tracer.span_end(tree_span, round_no=node.round, depth=0,
                        children=len(children), ecc_root=ecc_root)
    return TreeInfo(
        root=root,
        depth=0,
        parent=None,
        children=children,
        ecc_root=ecc_root,
        marked_count=agg_marked,
        start_round=start_round,
    )


def aligned_broadcast(
    node: NodeAlgorithm,
    tree: TreeInfo,
    value: Optional[int],
) -> Subroutine:
    """Push the root's ``value`` down ``tree``; everyone returns it.

    Nodes must enter aligned; they exit aligned ``ecc_root + 2`` rounds
    later.  Non-root callers pass ``value=None``.
    """
    start = node.round
    if tree.is_root:
        if value is None:
            raise ProtocolError("broadcast root must supply a value")
        received = value
        for child in tree.children:
            node.send(child, DownMsg(root=tree.root, value=value))
    else:
        received = None
        while received is None:
            inbox = yield
            for _, msg in inbox.items():
                if isinstance(msg, DownMsg) and msg.root == tree.root:
                    received = msg.value
                    break
        for child in tree.children:
            node.send(child, DownMsg(root=tree.root, value=received))
    yield from wait_until_round(node, start + tree.ecc_root + 2)
    return received


def aligned_convergecast(
    node: NodeAlgorithm,
    tree: TreeInfo,
    value: int,
    combine: Combine,
) -> Subroutine:
    """Combine everyone's ``value`` up ``tree``; the root returns the
    total, others return ``None``.

    Nodes must enter aligned; they exit aligned ``ecc_root + 2`` rounds
    later.
    """
    start = node.round
    pending = set(tree.children)
    accumulated = value
    while pending:
        inbox = yield
        for sender, msg in inbox.items():
            if isinstance(msg, UpMsg) and msg.root == tree.root and sender in pending:
                pending.discard(sender)
                accumulated = combine(accumulated, msg.value)
    if not tree.is_root:
        node.send(tree.parent, UpMsg(root=tree.root, value=accumulated))
        yield from wait_until_round(node, start + tree.ecc_root + 2)
        return None
    yield from wait_until_round(node, start + tree.ecc_root + 2)
    return accumulated


def aggregate_and_share(
    node: NodeAlgorithm,
    tree: TreeInfo,
    value: int,
    combine: Combine,
) -> Subroutine:
    """Convergecast then broadcast: everyone learns the combined value.

    Cost ``2 · (ecc_root + 2)`` rounds — the "aggregate using T1 in
    additional time O(D)" step of Lemmas 3–7.
    """
    total = yield from aligned_convergecast(node, tree, value, combine)
    shared = yield from aligned_broadcast(
        node, tree, total if tree.is_root else None
    )
    return shared
