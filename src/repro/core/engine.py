"""Shared run plumbing for every ``core.run_*`` entry point.

Each of the paper's entry points used to validate its input, build a
:class:`~repro.congest.network.Network` with the same half-dozen
keyword arguments, and call ``.run()`` — seventeen copies of the same
boilerplate, each one a place for a new cross-cutting kwarg (``policy``,
``faults``, ``bandwidth_bits``) to be forgotten.  :func:`execute` is the
single definition: input validation, Network construction and the run
itself happen here and nowhere else, so a new simulator-wide knob is
threaded through exactly once.

The structural checks (:func:`validate_apsp_input`) also live here —
they are shared by every algorithm that builds the paper's ``T_1`` —
and are re-exported from :mod:`repro.core.apsp` for compatibility.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..congest.errors import GraphError
from ..congest.faults import FaultsLike
from ..congest.network import AlgorithmFactory, Network, RunResult
from ..graphs.graph import Graph

#: The distinguished root (the paper assumes a node with ID 1 exists).
ROOT = 1


def validate_apsp_input(graph: Graph) -> None:
    """Check the structural assumptions shared by the paper's algorithms."""
    if not graph.has_node(ROOT):
        raise GraphError(
            "the paper assumes a node with ID 1 exists; relabel the graph "
            "(Graph.relabeled()) before running"
        )
    if not graph.is_connected():
        raise GraphError(
            "distances are undefined on a disconnected graph; APSP "
            "requires a connected input"
        )


def execute(
    graph: Graph,
    factory: AlgorithmFactory,
    *,
    inputs: Optional[Mapping[int, Any]] = None,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    track_edges: bool = False,
    faults: FaultsLike = None,
    max_rounds: Optional[int] = None,
    validate: bool = True,
) -> RunResult:
    """Validate, build the :class:`Network`, run it, return the outcome.

    This is the one place seed/policy/bandwidth/fault handling is
    defined; every ``run_*`` entry point routes through it.  Set
    ``validate=False`` for algorithms that do not require the paper's
    node-1 assumption (leader election does its own connectivity
    check).  All other keywords are forwarded verbatim to
    :class:`~repro.congest.network.Network`.
    """
    if validate:
        validate_apsp_input(graph)
    network = Network(
        graph,
        factory,
        inputs=inputs,
        seed=seed,
        bandwidth_bits=bandwidth_bits,
        policy=policy,
        track_edges=track_edges,
        faults=faults,
        max_rounds=max_rounds,
    )
    return network.run()
