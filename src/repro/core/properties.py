"""Lemmas 2–7: exact eccentricities, diameter, radius, center,
peripheral vertices and girth in ``O(n)`` rounds.

All six are corollaries of Algorithm 1 plus ``O(D)`` aggregation over
the already-built tree ``T_1``:

* **Lemma 2** — each node's eccentricity is the local maximum of its
  APSP distance row (zero extra communication).
* **Lemma 3 / 4** — diameter / radius are the max / min of all
  eccentricities, aggregated up ``T_1`` and broadcast back so *every*
  node knows them (Definition 6).
* **Lemma 5 / 6** — center / peripheral membership is then a local
  comparison.
* **Lemma 7** — girth: the BFS waves of Algorithm 1 already detected
  every non-tree contact (``collect_girth``); the smallest candidate is
  min-aggregated.  A forest yields no candidate at any node, so the
  aggregate stays infinite — exactly Definition 3's convention (this
  subsumes Claim 1's tree test).
"""

from __future__ import annotations

from typing import Optional

from ..congest.message import INFINITY
from ..congest.faults import FaultsLike
from ..graphs.graph import Graph
from .apsp import ApspNode
from .engine import execute
from .results import PropertyResult, PropertySummary
from .subroutines import aggregate_and_share, combine_max, combine_min

#: Marker mirroring Definition 3: the girth of a forest is infinite.
GIRTH_INFINITE = float("inf")


class PropertyNode(ApspNode):
    """Algorithm 1 plus the Lemma 2–7 aggregation epilogue."""

    collect_girth = True

    def epilogue(self):
        ecc = max(self.distances.values())
        self.ecc = ecc
        self.global_diameter = yield from aggregate_and_share(
            self, self.tree, ecc, combine_max
        )
        self.global_radius = yield from aggregate_and_share(
            self, self.tree, ecc, combine_min
        )
        if self.collect_girth:
            local = INFINITY if self.girth_best is None else self.girth_best
            self.global_girth = yield from aggregate_and_share(
                self, self.tree, local, combine_min_with_infinity
            )
        else:
            self.global_girth = None

    def make_result(self) -> PropertyResult:
        girth: Optional[float]
        if self.global_girth is None:
            girth = None
        elif self.global_girth == INFINITY:
            girth = GIRTH_INFINITE
        else:
            girth = self.global_girth
        return PropertyResult(
            uid=self.uid,
            eccentricity=self.ecc,
            diameter=self.global_diameter,
            radius=self.global_radius,
            is_center=(self.ecc == self.global_radius),
            is_peripheral=(self.ecc == self.global_diameter),
            girth=girth,
        )


class PropertyNodeNoGirth(PropertyNode):
    """Property computation without the girth bookkeeping."""

    collect_girth = False


def combine_min_with_infinity(a: int, b: int) -> int:
    """Minimum where :data:`INFINITY` loses to any finite value."""
    return combine_min(a, b)


def run_graph_properties(
    graph: Graph,
    *,
    include_girth: bool = True,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    track_edges: bool = False,
    faults: FaultsLike = None,
) -> PropertySummary:
    """Compute all Lemma 2–7 properties in one ``O(n)``-round run."""
    factory = PropertyNode if include_girth else PropertyNodeNoGirth
    outcome = execute(
        graph,
        factory,
        seed=seed,
        bandwidth_bits=bandwidth_bits,
        policy=policy,
        track_edges=track_edges,
        faults=faults,
    )
    return PropertySummary(results=outcome.results, metrics=outcome.metrics)
