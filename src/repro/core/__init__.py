"""The paper's algorithms (Holzer & Wattenhofer, PODC 2012).

Module map (see DESIGN.md §3.3 for the paper anchors):

* :mod:`~repro.core.apsp` — Algorithm 1 (APSP in O(n)).
* :mod:`~repro.core.ssp` — Algorithm 2 (S-SP in O(|S| + D)).
* :mod:`~repro.core.properties` — Lemmas 2–7 exact properties.
* :mod:`~repro.core.dominating` — Lemma 10 k-dominating sets.
* :mod:`~repro.core.approx` — Theorem 4 / Corollary 4 / Remarks 1–2.
* :mod:`~repro.core.girth` — Lemma 7 exact + Theorem 5 approx girth.
* :mod:`~repro.core.two_vs_four` — Algorithm 3 / Theorem 7.
* :mod:`~repro.core.prt` — Section 3.6 companions (Corollaries 1–2).
* :mod:`~repro.core.baselines` — Section 3.1 strawmen.
* :mod:`~repro.core.bfs` / :mod:`~repro.core.traversal` — primitives.
"""

from .approx import (
    ApproxPropertyResult,
    ApproxPropertySummary,
    Remark1Result,
    remark2_center_peripheral,
    run_approx_properties,
    run_remark1,
    smoothing_parameter,
)
from .apsp import (
    ROOT,
    ApspGirthNode,
    ApspNode,
    apsp_phase,
    run_apsp,
    validate_apsp_input,
)
from .baselines import (
    DistanceVectorApsp,
    LinkStateApsp,
    SequentialBfsApsp,
    run_baseline_apsp,
)
from .bfs import (
    run_all_two_bfs,
    run_bfs,
    run_k_bfs,
    run_tree_check,
)
from .center import approx_center, exact_center, remark2_center
from .diameter import (
    approx_diameter,
    corollary1_diameter,
    exact_diameter,
    prt_diameter,
    remark1_diameter,
    two_vs_four,
)
from .dominating import DomInfo, compute_dominating_set, run_dominating_set
from .engine import execute
from .eccentricity import (
    approx_eccentricities,
    exact_eccentricities,
    remark1_eccentricities,
)
from .girth import (
    GirthEstimate,
    GirthSummary,
    run_approx_girth,
    run_exact_girth,
)
from .leader import (
    LeaderInfo,
    elect_leader,
    relabel_for_apsp,
    run_leader_election,
)
from .peripheral import (
    approx_peripheral,
    exact_peripheral,
    remark2_peripheral,
)
from .properties import PropertyNode, run_graph_properties
from .prt import (
    combined_diameter_estimate,
    combined_girth_estimate,
    run_prt_diameter,
)
from .radius import approx_radius, exact_radius, remark1_radius
from .results import (
    ApspResult,
    ApspSummary,
    PropertyResult,
    PropertySummary,
    SspResult,
    SspSummary,
)
from .ssp import (
    PRIORITY_DIST_ID,
    PRIORITY_ID,
    SspNode,
    run_ssp,
    ssp_main_loop,
)
from .subroutines import (
    TreeInfo,
    aggregate_and_share,
    aligned_broadcast,
    aligned_convergecast,
    build_bfs_tree,
    combine_max,
    combine_min,
    combine_sum,
)
from .traversal import run_pebble_traversal
from .two_vs_four import TwoVsFourSummary, run_two_vs_four

__all__ = [
    "ApproxPropertyResult",
    "ApproxPropertySummary",
    "ApspGirthNode",
    "ApspNode",
    "ApspResult",
    "ApspSummary",
    "DistanceVectorApsp",
    "DomInfo",
    "GirthEstimate",
    "GirthSummary",
    "LeaderInfo",
    "LinkStateApsp",
    "PRIORITY_DIST_ID",
    "PRIORITY_ID",
    "PropertyNode",
    "PropertyResult",
    "PropertySummary",
    "ROOT",
    "Remark1Result",
    "SequentialBfsApsp",
    "SspNode",
    "SspResult",
    "SspSummary",
    "TreeInfo",
    "TwoVsFourSummary",
    "aggregate_and_share",
    "aligned_broadcast",
    "aligned_convergecast",
    "approx_center",
    "approx_diameter",
    "approx_eccentricities",
    "approx_peripheral",
    "approx_radius",
    "apsp_phase",
    "build_bfs_tree",
    "combine_max",
    "combine_min",
    "combine_sum",
    "combined_diameter_estimate",
    "combined_girth_estimate",
    "compute_dominating_set",
    "corollary1_diameter",
    "elect_leader",
    "exact_center",
    "exact_diameter",
    "exact_eccentricities",
    "exact_peripheral",
    "exact_radius",
    "execute",
    "prt_diameter",
    "relabel_for_apsp",
    "remark1_diameter",
    "remark1_eccentricities",
    "remark1_radius",
    "remark2_center",
    "remark2_center_peripheral",
    "remark2_peripheral",
    "run_all_two_bfs",
    "run_approx_girth",
    "run_approx_properties",
    "run_apsp",
    "run_baseline_apsp",
    "run_bfs",
    "run_dominating_set",
    "run_exact_girth",
    "run_graph_properties",
    "run_k_bfs",
    "run_leader_election",
    "run_pebble_traversal",
    "run_prt_diameter",
    "run_remark1",
    "run_ssp",
    "run_tree_check",
    "run_two_vs_four",
    "smoothing_parameter",
    "ssp_main_loop",
    "two_vs_four",
    "validate_apsp_input",
]
