"""Theorem 4 / Corollary 4: ``(×, 1+ε)``-approximations in ``O(n/D + D)``
rounds, plus the ``(×, 2)`` quickies of Remarks 1 and 2.

Theorem 4's algorithm:

1. compute ``D0 = 2 · ecc(1)`` (a ``(×,2)`` diameter bound, Fact 1) —
   free, it rides on the ``T_1`` echo;
2. ``k = ⌊ε · D0 / 4⌋``; if ``k = 0`` the graph is too shallow for
   sampling to help and we fall back to exact APSP (the ``O(n/D + D)``
   bound is ``O(n)`` there anyway);
3. compute a k-dominating set ``DOM`` with ``|DOM| ≤ 1 + ⌊n/(k+1)⌋``
   (Lemma 10) and solve ``DOM``-SP with Algorithm 2 in
   ``O(|DOM| + D) = O(n/(εD) + D)`` rounds;
4. every node estimates ``ecc̃(v) = k + max_{u ∈ DOM} d(u, v)``.
   Every node is within ``k`` of a dominator, so ``ecc̃(v) ≥ ecc(v)``;
   and ``k ≤ ε·ecc(1)/2 ≤ ε·ecc(v)`` (Fact 1), so
   ``ecc̃(v) ≤ (1 + ε)·ecc(v)``.

Corollary 4 aggregates the estimates over ``T_1``: diameter = max,
radius = min, and the center / peripheral sets become the local
comparisons ``ecc̃(v) ≤ rad̃ + k`` / ``ecc̃(v) ≥ diam̃ - k``, which
contain the true sets and only admit nodes within ``2k`` of optimal —
the set-approximation semantics of Definition 5.

Remark 1 (``(×,2)`` in ``O(D)``): one BFS with echo from node 1 gives
``diam̃ = 2·ecc(1) ∈ [D, 2D]`` and ``rad̃ = ecc(1) ∈ [rad, 2·rad]``;
the per-node estimate ``ecc̃(v) = d(v,1) + ecc(1)`` satisfies
``ecc(v) ≤ ecc̃(v) ≤ 3·ecc(v)`` (the Remark's statement is informal;
the guaranteed factor of this one-BFS estimator is 3 for eccentricities
and 2 for diameter/radius — asserted in tests).

Remark 2 (``(×,2)`` center/peripheral in 0 rounds): the answer "every
node" is, by Fact 1, within the 2-approximation semantics — provided as
:func:`remark2_center_peripheral` for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..congest.errors import GraphError
from ..congest.metrics import RunMetrics
from ..congest.faults import FaultsLike
from ..congest.node import NodeAlgorithm
from ..graphs.graph import Graph
from .apsp import ROOT, apsp_phase, validate_apsp_input
from .engine import execute
from .dominating import compute_dominating_set
from .ssp import ssp_main_loop
from .subroutines import (
    aggregate_and_share,
    build_bfs_tree,
    combine_max,
    combine_min,
)


@dataclass(frozen=True)
class ApproxPropertyResult:
    """One node's output of the Theorem 4 / Corollary 4 computation."""

    uid: int
    ecc_estimate: int
    diameter_estimate: int
    radius_estimate: int
    in_center_approx: bool
    in_peripheral_approx: bool
    #: The smoothing parameter actually used (0 = exact fallback ran).
    k: int
    dom_size: int


@dataclass(frozen=True)
class ApproxPropertySummary:
    """All nodes' approximation results plus run metrics."""

    epsilon: float
    results: Mapping[int, ApproxPropertyResult]
    metrics: RunMetrics

    @property
    def rounds(self) -> int:
        """Number of communication rounds used."""
        return self.metrics.rounds

    @property
    def diameter_estimate(self) -> int:
        """The shared diameter estimate (Corollary 4)."""
        return self._unanimous("diameter_estimate")

    @property
    def radius_estimate(self) -> int:
        """The shared radius estimate (Corollary 4)."""
        return self._unanimous("radius_estimate")

    def ecc_estimates(self) -> Dict[int, int]:
        """Per-node eccentricity estimates (Theorem 4)."""
        return {u: r.ecc_estimate for u, r in self.results.items()}

    def center_approx(self) -> FrozenSet[int]:
        """The approximate center set (contains the true center)."""
        return frozenset(
            u for u, r in self.results.items() if r.in_center_approx
        )

    def peripheral_approx(self) -> FrozenSet[int]:
        """The approximate peripheral set (contains the true set)."""
        return frozenset(
            u for u, r in self.results.items() if r.in_peripheral_approx
        )

    def _unanimous(self, attribute: str) -> int:
        values = {getattr(r, attribute) for r in self.results.values()}
        if len(values) != 1:
            raise AssertionError(f"nodes disagree on {attribute}")
        return values.pop()


def smoothing_parameter(epsilon: float, diameter_bound: int) -> int:
    """Theorem 4's ``k = ⌊ε · D0 / 4⌋`` (0 means: use the exact path)."""
    if epsilon <= 0:
        raise GraphError("epsilon must be positive")
    return int(epsilon * diameter_bound / 4)


class ApproxEccNode(NodeAlgorithm):
    """Per-node program for Theorem 4 + Corollary 4.

    ``ctx.input_value`` is ``epsilon`` (identical at every node, as the
    problem statement requires).
    """

    def program(self):
        epsilon = float(self.ctx.input_value)
        tree = yield from build_bfs_tree(self, ROOT)
        d0 = tree.diameter_bound
        k = smoothing_parameter(epsilon, d0)

        if k < 1:
            # Exact fallback: APSP is O(n) = O(n/D + D) for bounded D.
            outcome = yield from apsp_phase(self, tree)
            ecc_estimate = max(outcome.distances.values())
            k = 0
            dom_size = self.n
        else:
            dom = yield from compute_dominating_set(self, tree, k)
            duration = dom.size + d0 + 2
            ssp = yield from ssp_main_loop(
                self, dom.in_dom, dom.size, duration
            )
            ecc_estimate = k + max(ssp.distances.values())
            dom_size = dom.size

        diam_estimate = yield from aggregate_and_share(
            self, tree, ecc_estimate, combine_max
        )
        rad_estimate = yield from aggregate_and_share(
            self, tree, ecc_estimate, combine_min
        )
        return ApproxPropertyResult(
            uid=self.uid,
            ecc_estimate=ecc_estimate,
            diameter_estimate=diam_estimate,
            radius_estimate=rad_estimate,
            in_center_approx=(ecc_estimate <= rad_estimate + k),
            in_peripheral_approx=(ecc_estimate >= diam_estimate - k),
            k=k,
            dom_size=dom_size,
        )


def run_approx_properties(
    graph: Graph,
    epsilon: float,
    *,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    faults: FaultsLike = None,
) -> ApproxPropertySummary:
    """Run the Theorem 4 / Corollary 4 pipeline on ``graph``."""
    validate_apsp_input(graph)
    if epsilon <= 0:
        raise GraphError("epsilon must be positive")
    inputs = {uid: epsilon for uid in graph.nodes}
    outcome = execute(
        graph,
        ApproxEccNode,
        validate=False,  # checked above, before the epsilon check
        inputs=inputs,
        seed=seed,
        bandwidth_bits=bandwidth_bits,
        policy=policy,
        faults=faults,
    )
    return ApproxPropertySummary(
        epsilon=epsilon,
        results=outcome.results,
        metrics=outcome.metrics,
    )


# ---------------------------------------------------------------------------
# Remark 1: (×,2) via a single BFS in O(D).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Remark1Result:
    """One node's output of the Remark 1 single-BFS estimator."""

    uid: int
    depth: int
    ecc_root: int

    @property
    def diameter_estimate(self) -> int:
        """``2 · ecc(1) ∈ [D, 2D]`` — a (×,2) diameter approximation."""
        return 2 * self.ecc_root

    @property
    def radius_estimate(self) -> int:
        """``ecc(1) ∈ [rad, 2·rad]`` — a (×,2) radius approximation."""
        return self.ecc_root

    @property
    def ecc_estimate(self) -> int:
        """``d(v,1) + ecc(1) ∈ [ecc(v), 3·ecc(v)]`` (see module docs)."""
        return self.depth + self.ecc_root


class Remark1Node(NodeAlgorithm):
    """One BFS + echo from node 1; everything else is local."""

    def program(self):
        tree = yield from build_bfs_tree(self, ROOT)
        return Remark1Result(
            uid=self.uid,
            depth=tree.depth,
            ecc_root=tree.ecc_root,
        )


def run_remark1(
    graph: Graph,
    *,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    faults: FaultsLike = None,
) -> Tuple[Dict[int, Remark1Result], RunMetrics]:
    """Run the Remark 1 (×,2) estimator; ``O(D)`` rounds."""
    outcome = execute(
        graph, Remark1Node, seed=seed, bandwidth_bits=bandwidth_bits,
        policy=policy, faults=faults,
    )
    return outcome.results, outcome.metrics


def remark2_center_peripheral(graph: Graph) -> FrozenSet[int]:
    """Remark 2: the whole node set is a (×,2) center/peripheral answer.

    Every node "joins the set internally", costing zero rounds: by
    Fact 1, every eccentricity lies within a factor 2 of both the radius
    and the diameter, so the all-nodes answer meets the Definition 5
    set-approximation semantics for ratio 2.
    """
    return frozenset(graph.nodes)
