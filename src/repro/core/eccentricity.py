"""Eccentricities: exact (Lemma 2), ``(×,1+ε)`` (Theorem 4) and the
one-BFS ``(×,2)``-flavoured estimate (Remark 1).

Thin problem-oriented wrappers over :mod:`repro.core.properties` and
:mod:`repro.core.approx`; see those modules for the algorithms.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..graphs.graph import Graph
from .approx import ApproxPropertySummary, run_approx_properties, run_remark1
from .properties import run_graph_properties
from .results import PropertySummary


def exact_eccentricities(graph: Graph, *, seed: int = 0) -> PropertySummary:
    """Lemma 2: every node learns its exact eccentricity; ``O(n)``."""
    return run_graph_properties(graph, include_girth=False, seed=seed)


def approx_eccentricities(
    graph: Graph, epsilon: float, *, seed: int = 0
) -> ApproxPropertySummary:
    """Theorem 4: ``(×,1+ε)`` eccentricities in ``O(n/D + D)``."""
    return run_approx_properties(graph, epsilon, seed=seed)


def remark1_eccentricities(graph: Graph, *, seed: int = 0) -> Dict[int, int]:
    """Remark 1's one-BFS estimates ``d(v,1) + ecc(1)``; ``O(D)``."""
    results, _ = run_remark1(graph, seed=seed)
    return {uid: res.ecc_estimate for uid, res in results.items()}
