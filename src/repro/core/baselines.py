"""The Section 3.1 baselines: what APSP costs *without* the paper's
scheduling ideas.

The introduction argues that the two classic routing approaches, once
their messages are cut down to ``B = O(log n)`` bits, "need strictly
superlinear (and sometimes quadratic) time".  We implement all three
strawmen so the benchmarks can show exactly that against Algorithm 1:

* :class:`SequentialBfsApsp` — the unmodified textbook approach: one
  BFS at a time, each in its own ``D0 + 2``-round slot, ``O(n · D)``
  rounds total (the paper's remark before Section 4.1).
* :class:`DistanceVectorApsp` — RIP/BGP style: every node *cyclically
  retransmits its whole distance vector*, serialized to ``⌊B / entry⌋``
  entries per edge per round.  An improvement therefore waits up to a
  full table cycle (``Θ(n/B)`` rounds) before crossing each hop, giving
  the ``Θ(n·D / B)`` — up to quadratic — behaviour the paper describes.
* :class:`DeltaDistanceVectorApsp` — the event-driven variant that
  transmits only changed entries.  Interesting ablation: with a clean
  synchronous start it pipelines perfectly and is *linear*-round (it is
  essentially n concurrent BFS waves squeezed through B-bit links);
  the paper's superlinearity claim is about the periodic protocol
  above, not this one.
* :class:`LinkStateApsp` — OSPF/IS-IS style: flood every edge of the
  topology (serialized the same way), then compute shortest paths
  locally; ``Θ(m/B + D)`` rounds, quadratic on dense graphs.

The latter two run until *global quiescence*, detected with an
epoch-based convergecast over ``T_1`` (work ``E`` rounds, OR-aggregate
"anything changed or still queued?", stop on a silent epoch).  The
detection overhead is a constant factor of the work, so measured round
counts keep the algorithms' asymptotic shape.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional, Set, Tuple

from ..congest.errors import GraphError
from ..congest.faults import FaultsLike
from ..congest.node import NodeAlgorithm
from ..graphs.graph import Graph
from .apsp import ROOT, ApspPhaseOutcome, _process_waves, validate_apsp_input
from .engine import execute
from .messages import BfsToken, DvMsg, EdgeMsg
from .results import ApspResult, ApspSummary
from .subroutines import (
    TreeInfo,
    aggregate_and_share,
    build_bfs_tree,
    combine_max,
    wait_until_round,
)


def quiescent_epochs(node: NodeAlgorithm, tree: TreeInfo, worker):
    """Run ``worker`` until the whole network is silent.

    ``worker`` implements ``stage(node)`` (queue this round's sends),
    ``absorb(node, inbox) -> bool`` (process deliveries; True if local
    state changed) and ``backlog() -> bool`` (sends still queued).  All
    nodes enter aligned; epochs are ``E`` work rounds plus one aligned
    OR-aggregate; the loop ends after the first globally silent epoch.
    """
    epoch_len = max(4, tree.ecc_root + 2)
    while True:
        epoch_start = node.round
        changed = False
        while node.round < epoch_start + epoch_len:
            worker.stage(node)
            inbox = yield
            if worker.absorb(node, inbox):
                changed = True
        if worker.backlog():
            changed = True
        flag = yield from aggregate_and_share(
            node, tree, 1 if changed else 0, combine_max
        )
        if flag == 0:
            return


class _DistanceVectorWorker:
    """Bellman–Ford with per-edge serialization to ``B`` bits."""

    def __init__(self, node: NodeAlgorithm) -> None:
        entry_bits = DvMsg(target=1, dist=0).size_bits(node.ctx.size_model)
        self.per_round = max(1, node.ctx.bandwidth_bits // entry_bits)
        self.distances: Dict[int, int] = {node.uid: 0}
        self.queues: Dict[int, Deque[int]] = {
            nb: deque([node.uid]) for nb in node.neighbors
        }
        self.queued: Dict[int, Set[int]] = {
            nb: {node.uid} for nb in node.neighbors
        }

    def stage(self, node: NodeAlgorithm) -> None:
        for nb in node.neighbors:
            queue = self.queues[nb]
            for _ in range(min(self.per_round, len(queue))):
                target = queue.popleft()
                self.queued[nb].discard(target)
                node.send(nb, DvMsg(target=target,
                                    dist=self.distances[target]))

    def absorb(self, node: NodeAlgorithm, inbox) -> bool:
        changed = False
        for sender, msg in inbox.items():
            if not isinstance(msg, DvMsg):
                continue
            candidate = msg.dist + 1
            best = self.distances.get(msg.target)
            if best is None or candidate < best:
                self.distances[msg.target] = candidate
                changed = True
                for nb in node.neighbors:
                    if nb != sender and msg.target not in self.queued[nb]:
                        self.queues[nb].append(msg.target)
                        self.queued[nb].add(msg.target)
        return changed

    def backlog(self) -> bool:
        return any(self.queues.values())


class DeltaDistanceVectorApsp(NodeAlgorithm):
    """Event-driven (changed-entries-only) distance vector."""

    def program(self):
        tree = yield from build_bfs_tree(self, ROOT)
        worker = _DistanceVectorWorker(self)
        yield from quiescent_epochs(self, tree, worker)
        return ApspResult(
            uid=self.uid,
            distances=dict(worker.distances),
            parents={},
        )


class _PeriodicVectorWorker:
    """The classic periodic protocol: cycle through the whole table.

    Each neighbor link has a round-robin cursor over the node's current
    table; ``⌊B/entry⌋`` entries go out per round regardless of whether
    they changed.  Freshly learned/improved entries are *dirty* until
    the cursor passes them, which models the update latency of RIP-style
    periodic advertisement (bounded here by one table cycle rather than
    a wall-clock timer).
    """

    def __init__(self, node: NodeAlgorithm) -> None:
        entry_bits = DvMsg(target=1, dist=0).size_bits(node.ctx.size_model)
        self.per_round = max(1, node.ctx.bandwidth_bits // entry_bits)
        self.distances: Dict[int, int] = {node.uid: 0}
        self.order: list = [node.uid]          # stable table order
        self.cursors: Dict[int, int] = {nb: 0 for nb in node.neighbors}
        self.dirty: Dict[int, Set[int]] = {
            nb: {node.uid} for nb in node.neighbors
        }

    def stage(self, node: NodeAlgorithm) -> None:
        for nb in node.neighbors:
            cursor = self.cursors[nb]
            for _ in range(min(self.per_round, len(self.order))):
                target = self.order[cursor % len(self.order)]
                cursor += 1
                node.send(nb, DvMsg(target=target,
                                    dist=self.distances[target]))
                self.dirty[nb].discard(target)
            self.cursors[nb] = cursor % len(self.order)

    def absorb(self, node: NodeAlgorithm, inbox) -> bool:
        changed = False
        for _, msg in inbox.items():
            if not isinstance(msg, DvMsg):
                continue
            candidate = msg.dist + 1
            best = self.distances.get(msg.target)
            if best is None or candidate < best:
                if best is None:
                    self.order.append(msg.target)
                self.distances[msg.target] = candidate
                changed = True
                for nb in node.neighbors:
                    self.dirty[nb].add(msg.target)
        return changed

    def backlog(self) -> bool:
        return any(self.dirty.values())


class DistanceVectorApsp(NodeAlgorithm):
    """Serialized periodic distance-vector APSP (superlinear, by design)."""

    def program(self):
        tree = yield from build_bfs_tree(self, ROOT)
        worker = _PeriodicVectorWorker(self)
        yield from quiescent_epochs(self, tree, worker)
        return ApspResult(
            uid=self.uid,
            distances=dict(worker.distances),
            parents={},
        )


class _LinkStateWorker:
    """Topology flooding with per-edge serialization to ``B`` bits."""

    def __init__(self, node: NodeAlgorithm) -> None:
        entry_bits = EdgeMsg(u=1, v=1).size_bits(node.ctx.size_model)
        self.per_round = max(1, node.ctx.bandwidth_bits // entry_bits)
        own = {tuple(sorted((node.uid, nb))) for nb in node.neighbors}
        self.edges: Set[Tuple[int, int]] = set(own)
        self.queues: Dict[int, Deque[Tuple[int, int]]] = {
            nb: deque(sorted(own)) for nb in node.neighbors
        }

    def stage(self, node: NodeAlgorithm) -> None:
        for nb in node.neighbors:
            queue = self.queues[nb]
            for _ in range(min(self.per_round, len(queue))):
                u, v = queue.popleft()
                node.send(nb, EdgeMsg(u=u, v=v))

    def absorb(self, node: NodeAlgorithm, inbox) -> bool:
        changed = False
        for sender, msg in inbox.items():
            if not isinstance(msg, EdgeMsg):
                continue
            edge = tuple(sorted((msg.u, msg.v)))
            if edge not in self.edges:
                self.edges.add(edge)
                changed = True
                for nb in node.neighbors:
                    if nb != sender:
                        self.queues[nb].append(edge)
        return changed

    def backlog(self) -> bool:
        return any(self.queues.values())

    def local_distances(self, source: int) -> Dict[int, int]:
        adjacency: Dict[int, list] = {}
        for u, v in self.edges:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        distances = {source: 0}
        frontier = deque([source])
        while frontier:
            current = frontier.popleft()
            for neighbor in sorted(adjacency.get(current, ())):
                if neighbor not in distances:
                    distances[neighbor] = distances[current] + 1
                    frontier.append(neighbor)
        return distances


class LinkStateApsp(NodeAlgorithm):
    """Serialized link-state APSP: flood edges, then compute locally."""

    def program(self):
        tree = yield from build_bfs_tree(self, ROOT)
        worker = _LinkStateWorker(self)
        yield from quiescent_epochs(self, tree, worker)
        return ApspResult(
            uid=self.uid,
            distances=worker.local_distances(self.uid),
            parents={},
        )


class SequentialBfsApsp(NodeAlgorithm):
    """One BFS per node, in disjoint time slots: Θ(n · D) rounds.

    Node ``u``'s wave starts in round ``start + (u - 1)·(D0 + 2)``;
    forwarding reuses Algorithm 1's wave handler, so the only difference
    from the paper's APSP is the *schedule* — exactly the comparison the
    introduction draws.  Requires node ids to be ``1..n``.
    """

    def program(self):
        tree = yield from build_bfs_tree(self, ROOT)
        slot = tree.diameter_bound + 2
        start = self.round
        finish = start + self.n * slot + 1
        outcome = ApspPhaseOutcome()
        while self.round < finish:
            offset = self.round - start
            if offset % slot == 0 and offset // slot == self.uid - 1:
                outcome.distances[self.uid] = 0
                outcome.parents[self.uid] = None
                self.send_all(BfsToken(root=self.uid, dist=0))
            inbox = yield
            _process_waves(self, inbox, outcome, False)
        return ApspResult(
            uid=self.uid,
            distances=outcome.distances,
            parents=outcome.parents,
        )


_BASELINES = {
    "sequential-bfs": SequentialBfsApsp,
    "distance-vector": DistanceVectorApsp,
    "distance-vector-delta": DeltaDistanceVectorApsp,
    "link-state": LinkStateApsp,
}


def run_baseline_apsp(
    graph: Graph,
    algorithm: str,
    *,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    faults: FaultsLike = None,
) -> ApspSummary:
    """Run one of the Section 3.1 baselines end to end.

    ``algorithm`` is ``"sequential-bfs"``, ``"distance-vector"`` or
    ``"link-state"``.
    """
    validate_apsp_input(graph)
    if algorithm == "sequential-bfs" and \
            graph.nodes != tuple(range(1, graph.n + 1)):
        raise GraphError(
            "sequential-bfs scheduling needs node ids 1..n; relabel first"
        )
    try:
        factory = _BASELINES[algorithm]
    except KeyError:
        raise GraphError(
            f"unknown baseline {algorithm!r}; expected one of "
            f"{sorted(_BASELINES)}"
        )
    outcome = execute(
        graph, factory, validate=False, seed=seed,
        bandwidth_bits=bandwidth_bits, policy=policy,
        max_rounds=200 * graph.n + 20000, faults=faults,
    )
    return ApspSummary(results=outcome.results, metrics=outcome.metrics)
