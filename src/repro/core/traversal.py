"""Standalone pebble traversal (Remark 3).

"A spanning tree of G can be traversed in time O(n) by sending a pebble
over an edge in each time slot" — this module runs exactly that over
``T_1`` (without starting any BFS waves) so tests and examples can
inspect the DFS visit order and verify the 2(n-1) edge-move bound in
isolation from Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from ..congest.faults import FaultsLike
from ..congest.metrics import RunMetrics
from ..congest.node import NodeAlgorithm
from ..graphs.graph import Graph
from .apsp import ROOT
from .engine import execute
from .messages import DownMsg, PebbleMsg
from .subroutines import build_bfs_tree


@dataclass(frozen=True)
class TraversalResult:
    """One node's view of the completed traversal."""

    uid: int
    #: Round in which the pebble first arrived (the root reports the
    #: phase start round).
    first_visit_round: int
    depth: int
    parent: Optional[int]
    children: Tuple[int, ...]


class PebbleTraversalNode(NodeAlgorithm):
    """Build ``T_1``, then DFS-traverse it with a pebble (no waits)."""

    def program(self):
        tree = yield from build_bfs_tree(self, ROOT)
        children = tree.children
        next_child = 0
        first_visit: Optional[int] = tree.start_round if tree.is_root else None
        pebble_here = tree.is_root
        finish_round: Optional[int] = None

        while finish_round is None or self.round < finish_round:
            inbox = yield
            for _, msg in inbox.items():
                if isinstance(msg, DownMsg) and msg.root == ROOT:
                    finish_round = msg.value
                    for child in children:
                        self.send(child, msg)
            received = any(
                isinstance(msg, PebbleMsg) for _, msg in inbox.items()
            )
            if received:
                pebble_here = True
                if first_visit is None:
                    first_visit = self.round
            if pebble_here:
                if next_child < len(children):
                    self.send(children[next_child], PebbleMsg())
                    next_child += 1
                    pebble_here = False
                elif tree.parent is not None:
                    self.send(tree.parent, PebbleMsg())
                    pebble_here = False
                else:
                    finish_round = self.round + tree.ecc_root + 2
                    for child in children:
                        self.send(child,
                                  DownMsg(root=ROOT, value=finish_round))
                    pebble_here = False

        return TraversalResult(
            uid=self.uid,
            first_visit_round=first_visit,
            depth=tree.depth,
            parent=tree.parent,
            children=children,
        )


def run_pebble_traversal(
    graph: Graph,
    *,
    seed: int = 0,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    faults: FaultsLike = None,
) -> Tuple[Mapping[int, TraversalResult], RunMetrics]:
    """Traverse ``T_1`` with a pebble; returns ``(results, metrics)``."""
    outcome = execute(
        graph, PebbleTraversalNode, seed=seed,
        bandwidth_bits=bandwidth_bits, policy=policy, faults=faults,
    )
    return outcome.results, outcome.metrics
