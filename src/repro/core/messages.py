"""Protocol messages shared by the paper's algorithms.

Each message is a few identifiers/counters wide — ``O(log n)`` bits — so
any constant-size bundle of them fits the CONGEST budget ``B``.  The
strict bandwidth policy verifies that claim on every edge of every round
of every test run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Tuple

from ..congest.message import Message, register_message


@register_message
@dataclass(frozen=True)
class BfsToken(Message):
    """The BFS wave: "root ``root`` is at distance ``dist`` from me"."""

    root: int
    dist: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("root", "id"),
        ("dist", "dist"),
    )


@register_message
@dataclass(frozen=True)
class JoinMsg(Message):
    """Child → parent: "I joined your tree ``root``"."""

    root: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (("root", "id"),)


@register_message
@dataclass(frozen=True)
class EchoMsg(Message):
    """Convergecast during tree construction.

    ``primary`` aggregates the maximum depth seen in the subtree (the
    root learns its eccentricity); ``secondary`` sums per-node marks (the
    root learns how many marked nodes exist, e.g. ``|S|`` for S-SP).
    """

    root: int
    primary: int
    secondary: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("root", "id"),
        ("primary", "count"),
        ("secondary", "count"),
    )


@register_message
@dataclass(frozen=True)
class SyncMsg(Message):
    """Root → everyone: tree is complete; global phase parameters.

    ``ecc_root`` is the root's exact eccentricity (so every node can
    compute the paper's ``D0 = 2 · ecc(root) ≥ D``), ``marked`` the echo
    count, and ``start_round`` the globally agreed first round of the
    next phase.
    """

    root: int
    ecc_root: int
    marked: int
    start_round: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("root", "id"),
        ("ecc_root", "count"),
        ("marked", "count"),
        ("start_round", "round"),
    )


@register_message
@dataclass(frozen=True)
class PebbleMsg(Message):
    """The traversal pebble of Algorithm 1 (a bare token)."""

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = ()


@register_message
@dataclass(frozen=True)
class UpMsg(Message):
    """Generic convergecast payload (one combined value per subtree)."""

    root: int
    value: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("root", "id"),
        ("value", "round"),
    )


@register_message
@dataclass(frozen=True)
class DownMsg(Message):
    """Generic broadcast payload (root's value pushed down the tree)."""

    root: int
    value: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("root", "id"),
        ("value", "round"),
    )


@register_message
@dataclass(frozen=True)
class DvMsg(Message):
    """Distance-vector update: "my distance to ``target`` is ``dist``"."""

    target: int
    dist: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("target", "id"),
        ("dist", "dist"),
    )


@register_message
@dataclass(frozen=True)
class EdgeMsg(Message):
    """Link-state flooding: one edge of the topology."""

    u: int
    v: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("u", "id"),
        ("v", "id"),
    )


@register_message
@dataclass(frozen=True)
class CensusMsg(Message):
    """Pipelined convergecast for the k-dominating-set residue census.

    One wave per residue class ``0..k``; a node forwards wave ``j`` only
    after all children reported wave ``j`` and its own wave ``j-1`` went
    out, so each tree edge carries at most one census message per round.
    """

    root: int
    wave: int
    value: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("root", "id"),
        ("wave", "count"),
        ("value", "count"),
    )


@register_message
@dataclass(frozen=True)
class DomAnnounceMsg(Message):
    """Root → everyone: the selected residue class and ``|DOM|``."""

    root: int
    residue: int
    size: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("root", "id"),
        ("residue", "count"),
        ("size", "count"),
    )


@register_message
@dataclass(frozen=True)
class DominatorMsg(Message):
    """Parent → child: the id of your nearest dominator ancestor."""

    dominator: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (("dominator", "id"),)


@register_message
@dataclass(frozen=True)
class OfferMsg(Message):
    """Algorithm 2's per-edge offer: "(source id, its distance via me)".

    Line 17 of Algorithm 2: node ``v`` sends ``(l_i, δ[l_i] + 1)`` to
    neighbor ``i``; an empty list ``L_i`` sends nothing at all (the
    receiver reads a missing offer as ``l = ∞``).
    """

    source: int
    dist: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("source", "id"),
        ("dist", "dist"),
    )
