"""The CONGEST model simulator.

This package is the substrate everything else in :mod:`repro` runs on: a
deterministic, synchronous message-passing network with per-edge
bandwidth ``B = O(log n)`` bits per round, exactly the model of Holzer &
Wattenhofer (PODC 2012), Section 2.

Public surface:

* :class:`~repro.congest.network.Network` / :func:`~repro.congest.runner.run_algorithm`
  — build and run a simulation.
* :class:`~repro.congest.node.NodeAlgorithm` / :class:`~repro.congest.node.NodeContext`
  — the per-node programming model.
* :class:`~repro.congest.message.Message` and friends — bit-accounted messages.
* :class:`~repro.congest.metrics.RunMetrics` — rounds / messages / bits.
* :class:`~repro.congest.faults.FaultSpec` / :func:`~repro.congest.faults.resilient`
  — deterministic fault injection and loss-tolerant execution.
"""

from .bandwidth import (
    BandwidthPolicy,
    SerializingPolicy,
    StrictPolicy,
    UnlimitedPolicy,
    make_policy,
)
from .errors import (
    BandwidthExceededError,
    CongestError,
    EncodingError,
    GraphError,
    ProtocolError,
    RoundLimitExceededError,
)
from .faults import (
    FaultPlan,
    FaultReport,
    FaultSpec,
    LinkOutage,
    ResilientNode,
    resilient,
)
from .mailbox import Inbox, Outbox
from .message import (
    INFINITY,
    IdMessage,
    Message,
    SizeModel,
    Token,
    ValueMessage,
    register_message,
)
from .metrics import RunMetrics
from .network import Network, RunResult, default_bandwidth
from .node import NodeAlgorithm, NodeContext
from .runner import run_algorithm

__all__ = [
    "BandwidthExceededError",
    "BandwidthPolicy",
    "CongestError",
    "EncodingError",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "GraphError",
    "IdMessage",
    "INFINITY",
    "Inbox",
    "LinkOutage",
    "Message",
    "Network",
    "NodeAlgorithm",
    "NodeContext",
    "Outbox",
    "ProtocolError",
    "ResilientNode",
    "RoundLimitExceededError",
    "RunMetrics",
    "RunResult",
    "SerializingPolicy",
    "SizeModel",
    "StrictPolicy",
    "Token",
    "UnlimitedPolicy",
    "ValueMessage",
    "default_bandwidth",
    "make_policy",
    "register_message",
    "resilient",
    "run_algorithm",
]
