"""Convenience entry points for running one algorithm on one graph."""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..graphs.graph import Graph
from .faults import FaultPlan, FaultSpec
from .network import AlgorithmFactory, Network, RunResult


def run_algorithm(
    graph: Graph,
    factory: AlgorithmFactory,
    *,
    bandwidth_bits: Optional[int] = None,
    policy: str = "strict",
    inputs: Optional[Mapping[int, Any]] = None,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    track_edges: bool = False,
    faults: "FaultSpec | FaultPlan | Mapping[str, Any] | None" = None,
) -> RunResult:
    """Build a :class:`~repro.congest.network.Network` and run it to the end.

    This is the one-call form used throughout examples, tests and
    benchmarks; see :class:`~repro.congest.network.Network` for the
    parameter semantics.
    """
    network = Network(
        graph,
        factory,
        bandwidth_bits=bandwidth_bits,
        policy=policy,
        inputs=inputs,
        seed=seed,
        max_rounds=max_rounds,
        track_edges=track_edges,
        faults=faults,
    )
    return network.run()
