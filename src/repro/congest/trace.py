"""Round-by-round execution traces.

A :class:`TraceRecorder` observes every delivery the scheduler makes
and keeps a structured log — `(round, sender, receiver, message)` —
plus helpers to filter, summarize, and render an ASCII timeline.
Traces are the debugging instrument for distributed algorithms (ordering
bugs are invisible in end-state assertions) and power a handful of
white-box tests, e.g. "the pebble really moves one edge per round".

Attach with::

    network = Network(graph, factory)
    trace = TraceRecorder.attach(network)
    network.run()
    print(trace.timeline(kinds={"PebbleMsg"}))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .message import Message
from .network import Network


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message."""

    round_no: int
    sender: int
    receiver: int
    message: Message

    @property
    def kind(self) -> str:
        """Message type name (e.g. ``"BfsToken"``)."""
        return type(self.message).__name__


class TraceRecorder:
    """Collects every delivery of a :class:`Network` run."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    # -- attachment ----------------------------------------------------------

    @classmethod
    def attach(cls, network: Network) -> "TraceRecorder":
        """Wrap ``network``'s round step so deliveries are recorded.

        Attachment is non-invasive: it decorates the network's metrics
        recording path by wrapping ``Network.step``'s policy admission
        via the metrics hook — concretely, we wrap the bound
        ``policy.admit`` so every admitted batch is logged.

        Attaching also switches the network off its fault-free strict
        fast path (which inlines admission and never calls the policy):
        deliveries are identical either way — that equivalence is pinned
        by the golden tests — but only the policy-mediated path has a
        seam to observe them from.  Tracing is a debugging instrument,
        so the slowdown is deliberate and confined to traced runs.
        """
        recorder = cls()
        network._fast_path = False
        policy = network.policy
        original_admit = policy.admit
        original_drain = policy.drain

        def admit(edge, staged, round_no):
            delivered = original_admit(edge, staged, round_no)
            for message in delivered:
                recorder.events.append(
                    TraceEvent(round_no, edge[0], edge[1], message)
                )
            return delivered

        def drain(round_no, exclude=frozenset()):
            batches = original_drain(round_no, exclude=exclude)
            for edge, delivered in batches.items():
                for message in delivered:
                    recorder.events.append(
                        TraceEvent(round_no, edge[0], edge[1], message)
                    )
            return batches

        policy.admit = admit  # type: ignore[method-assign]
        policy.drain = drain  # type: ignore[method-assign]
        return recorder

    # -- queries ---------------------------------------------------------------

    def filter(
        self,
        *,
        kinds: Optional[Set[str]] = None,
        sender: Optional[int] = None,
        receiver: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events matching all given criteria, in delivery order."""
        out = []
        for event in self.events:
            if kinds is not None and event.kind not in kinds:
                continue
            if sender is not None and event.sender != sender:
                continue
            if receiver is not None and event.receiver != receiver:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def rounds(self) -> int:
        """Highest round with any delivery."""
        return max((e.round_no for e in self.events), default=0)

    def counts_by_kind(self) -> Dict[str, int]:
        """Message counts per message type."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def per_round(self) -> Dict[int, List[TraceEvent]]:
        """Events grouped by round."""
        grouped: Dict[int, List[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.round_no, []).append(event)
        return grouped

    # -- rendering ---------------------------------------------------------------

    def timeline(
        self,
        *,
        kinds: Optional[Set[str]] = None,
        max_rounds: Optional[int] = None,
    ) -> str:
        """A compact ASCII timeline: one line per round."""
        lines = []
        for round_no, events in sorted(self.per_round().items()):
            if max_rounds is not None and round_no > max_rounds:
                lines.append(f"... ({self.rounds() - max_rounds} more rounds)")
                break
            shown = [
                f"{e.sender}->{e.receiver}:{e.kind}"
                for e in events
                if kinds is None or e.kind in kinds
            ]
            if shown:
                lines.append(f"r{round_no:>4}  " + "  ".join(shown))
        return "\n".join(lines)
