"""A real binary wire format for :class:`~repro.congest.message.Message`.

The simulator never *needs* to serialize messages — Python objects travel
between node programs directly — but the bandwidth accounting must be
honest, so this module provides the encoding that the declared field
widths describe.  Tests round-trip every message type through it, which
guarantees that ``Message.size_bits`` matches an implementable format
rather than being an optimistic estimate.

Layout: ``tag`` (:func:`~repro.congest.message.tag_bits` bits, most
significant first) followed by each payload field in ``FIELDS`` order.
``dist`` fields encode :data:`~repro.congest.message.INFINITY` as the
all-ones code point.
"""

from __future__ import annotations

from typing import Tuple, Type

from .errors import EncodingError
from .message import (
    INFINITY,
    MESSAGE_REGISTRY,
    Message,
    SizeModel,
    message_tag,
    tag_bits,
)


def _encode_field(value: int, kind: str, width: int) -> int:
    """Map one field value into its unsigned code point."""
    if kind == "flag":
        code = 1 if value else 0
    elif kind == "id":
        code = value - 1  # ids are 1-based on the API, 0-based on the wire
    elif kind in ("dist", "count", "round"):
        code = (1 << width) - 1 if value == INFINITY else value
    else:
        raise EncodingError(f"unknown field kind {kind!r}")
    if not 0 <= code < (1 << width):
        raise EncodingError(
            f"value {value!r} does not fit in a {width}-bit {kind} field"
        )
    return code


def _decode_field(code: int, kind: str, width: int) -> int:
    """Inverse of :func:`_encode_field`."""
    if kind == "flag":
        return code
    if kind == "id":
        return code + 1
    if kind in ("dist", "count", "round"):
        return INFINITY if code == (1 << width) - 1 else code
    raise EncodingError(f"unknown field kind {kind!r}")


def encode(message: Message, model: SizeModel) -> Tuple[int, int]:
    """Encode ``message`` as ``(bits, width)``.

    ``bits`` is the wire word as an unsigned integer and ``width`` its
    exact length; ``width`` always equals ``message.size_bits(model)``.
    """
    word = message_tag(type(message))
    width = tag_bits()
    for (name, kind) in message.FIELDS:
        field_width = model.width_of(kind)
        code = _encode_field(getattr(message, name), kind, field_width)
        word = (word << field_width) | code
        width += field_width
    return word, width


def decode(word: int, width: int, model: SizeModel) -> Message:
    """Decode a wire word produced by :func:`encode`."""
    if word < 0 or width < tag_bits() or word >= (1 << width):
        raise EncodingError(f"malformed wire word ({word}, width {width})")
    payload_width = width - tag_bits()
    tag = word >> payload_width
    if tag >= len(MESSAGE_REGISTRY):
        raise EncodingError(f"unknown message tag {tag}")
    cls: Type[Message] = MESSAGE_REGISTRY[tag]
    values = []
    remaining = word & ((1 << payload_width) - 1)
    cursor = payload_width
    for (name, kind) in cls.FIELDS:
        field_width = model.width_of(kind)
        cursor -= field_width
        if cursor < 0:
            raise EncodingError(
                f"wire word too short for {cls.__name__}.{name}"
            )
        code = (remaining >> cursor) & ((1 << field_width) - 1)
        values.append(_decode_field(code, kind, field_width))
    if cursor != 0:
        raise EncodingError(
            f"wire word has {cursor} trailing bits for {cls.__name__}"
        )
    kwargs = {name: value
              for (name, _), value in zip(cls.FIELDS, values)}
    # Flags decode to ints; let the dataclass hold bools where declared.
    for (name, kind) in cls.FIELDS:
        if kind == "flag":
            kwargs[name] = bool(kwargs[name])
    return cls(**kwargs)
