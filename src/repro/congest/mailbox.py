"""Per-round message containers.

An :class:`Outbox` collects what a node stages for delivery in the next
round; an :class:`Inbox` is what a node receives at the start of a round.
Both keep messages grouped by the *neighbor* on the other end of the edge,
because the CONGEST bandwidth budget is per edge, not per node.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple

from .message import Message


class Outbox:
    """Messages staged by one node for the next communication round."""

    __slots__ = ("_by_receiver",)

    def __init__(self) -> None:
        self._by_receiver: Dict[int, List[Message]] = {}

    def add(self, receiver: int, message: Message) -> None:
        """Stage ``message`` for delivery to ``receiver`` next round."""
        self._by_receiver.setdefault(receiver, []).append(message)

    def items(self) -> Iterator[Tuple[int, List[Message]]]:
        """Iterate ``(receiver, messages)`` pairs in receiver order."""
        for receiver in sorted(self._by_receiver):
            yield receiver, self._by_receiver[receiver]

    def clear(self) -> None:
        """Drop all staged messages."""
        self._by_receiver.clear()

    def __len__(self) -> int:
        return sum(len(msgs) for msgs in self._by_receiver.values())

    def __bool__(self) -> bool:
        return bool(self._by_receiver)


class Inbox:
    """Messages delivered to one node at the start of a round.

    Iteration order is deterministic: senders ascending, then staging
    order within a sender.
    """

    __slots__ = ("_by_sender",)

    EMPTY: "Inbox"

    def __init__(self, by_sender: Mapping[int, Tuple[Message, ...]] = ()) -> None:
        self._by_sender: Dict[int, Tuple[Message, ...]] = dict(by_sender or {})

    @classmethod
    def _adopt(cls, by_sender: Dict[int, Tuple[Message, ...]]) -> "Inbox":
        """Wrap ``by_sender`` without copying (scheduler fast path).

        The caller must hand over ownership of the dict: inboxes are
        immutable from the node's side, so the scheduler builds one dict
        per receiver per round and adopts it directly instead of paying
        a defensive copy.  Idle nodes share :data:`Inbox.EMPTY` instead
        of allocating a fresh empty inbox every round.
        """
        box = cls.__new__(cls)
        box._by_sender = by_sender
        return box

    def from_neighbor(self, sender: int) -> Tuple[Message, ...]:
        """All messages received from ``sender`` this round."""
        return self._by_sender.get(sender, ())

    def senders(self) -> Tuple[int, ...]:
        """Neighbors that sent at least one message, ascending."""
        return tuple(sorted(self._by_sender))

    def items(self) -> Iterator[Tuple[int, Message]]:
        """Iterate ``(sender, message)`` pairs deterministically."""
        for sender in sorted(self._by_sender):
            for message in self._by_sender[sender]:
                yield sender, message

    def messages(self) -> List[Message]:
        """All received messages, deterministic order."""
        return [message for _, message in self.items()]

    def __len__(self) -> int:
        return sum(len(msgs) for msgs in self._by_sender.values())

    def __bool__(self) -> bool:
        return bool(self._by_sender)


Inbox.EMPTY = Inbox()
