"""Messages with honest bit-level size accounting.

The CONGEST model limits each node to ``B`` bits per incident edge per
round, so the simulator must know exactly how large every message is.
Rather than guessing, each :class:`Message` subclass declares its payload
through *field specs* — ``(name, kind)`` pairs whose widths are resolved
against a :class:`SizeModel` for the current network size ``n``.  The same
specs drive the real binary encoder in :mod:`repro.congest.encoding`, so
the sizes charged against the bandwidth budget are the sizes an actual
wire format would use.

Field kinds
-----------

``id``
    A node identifier in ``1..n`` (``ceil(log2(n + 1))`` bits).
``dist``
    A hop distance in ``0..n`` or the sentinel :data:`INFINITY`
    (``ceil(log2(n + 2))`` bits; the top code point encodes infinity).
``count``
    A non-negative counter bounded by ``n`` (same width as ``dist``).
``round``
    A round number; algorithms in this package finish within ``O(n)``
    rounds, so four extra bits over ``dist`` (values up to ``16 (n + 2)``)
    are always sufficient and stay ``O(log n)``.
``flag``
    A single bit (booleans).

Every concrete message type also pays a fixed *tag* overhead that
identifies its type on the wire; the tag width grows logarithmically with
the number of registered message types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields as dataclass_fields
from typing import ClassVar, Dict, List, Tuple, Type

from .errors import EncodingError

#: Sentinel used by ``dist`` fields to mean "unreachable / unknown".
INFINITY: int = -1

_FIELD_KINDS = ("id", "dist", "count", "round", "flag")

#: Registry of all concrete message types, in registration order.  The
#: position of a type in this list is its wire tag.
MESSAGE_REGISTRY: List[Type["Message"]] = []
_REGISTRY_INDEX: Dict[Type["Message"], int] = {}


def register_message(cls: Type["Message"]) -> Type["Message"]:
    """Class decorator: validate field specs and assign a wire tag."""
    for name, kind in cls.FIELDS:
        if kind not in _FIELD_KINDS:
            raise EncodingError(
                f"{cls.__name__}.{name}: unknown field kind {kind!r}"
            )
    declared = tuple(f.name for f in dataclass_fields(cls))
    spec_names = tuple(name for name, _ in cls.FIELDS)
    if declared != spec_names:
        raise EncodingError(
            f"{cls.__name__}: dataclass fields {declared} do not match "
            f"FIELDS spec {spec_names}"
        )
    _REGISTRY_INDEX[cls] = len(MESSAGE_REGISTRY)
    MESSAGE_REGISTRY.append(cls)
    return cls


def message_tag(cls: Type["Message"]) -> int:
    """Return the wire tag assigned to a registered message type."""
    try:
        return _REGISTRY_INDEX[cls]
    except KeyError:
        raise EncodingError(f"{cls.__name__} is not a registered message type")


def tag_bits() -> int:
    """Bits needed to distinguish all registered message types."""
    return max(1, math.ceil(math.log2(max(2, len(MESSAGE_REGISTRY)))))


@dataclass(frozen=True)
class SizeModel:
    """Resolves field kinds to bit widths for a network of ``n`` nodes."""

    n: int

    @property
    def id_bits(self) -> int:
        """Width of a node identifier in ``1..n``."""
        return max(1, math.ceil(math.log2(self.n + 1)))

    @property
    def dist_bits(self) -> int:
        """Width of a distance in ``0..n`` plus an infinity code point."""
        return max(1, math.ceil(math.log2(self.n + 2)))

    def width_of(self, kind: str) -> int:
        """Bit width of one field of the given kind."""
        if kind == "id":
            return self.id_bits
        if kind == "dist" or kind == "count":
            return self.dist_bits
        if kind == "round":
            return self.dist_bits + 4
        if kind == "flag":
            return 1
        raise EncodingError(f"unknown field kind {kind!r}")

    def size_bits(self, message: "Message") -> int:
        """Total wire size of ``message``: tag plus all payload fields."""
        payload = sum(self.width_of(kind) for _, kind in message.FIELDS)
        return tag_bits() + payload


@dataclass(frozen=True)
class Message:
    """Base class for everything that travels over an edge.

    Subclasses are frozen dataclasses whose attributes match their
    ``FIELDS`` spec in order, and must be decorated with
    :func:`register_message`.
    """

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = ()

    def size_bits(self, model: SizeModel) -> int:
        """Wire size of this message under ``model``."""
        return model.size_bits(self)

    def field_values(self) -> Tuple[int, ...]:
        """Payload values in FIELDS order (flags as 0/1 ints)."""
        return tuple(
            int(getattr(self, name)) for name, _ in self.FIELDS
        )


# ---------------------------------------------------------------------------
# Generic messages shared by many protocols.
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class Token(Message):
    """A bare token message (e.g. a wake-up signal); payload-free."""

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = ()


@register_message
@dataclass(frozen=True)
class IdMessage(Message):
    """Carries a single node identifier."""

    uid: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (("uid", "id"),)


@register_message
@dataclass(frozen=True)
class ValueMessage(Message):
    """Carries a single bounded counter value (e.g. an aggregate)."""

    value: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (("value", "count"),)
