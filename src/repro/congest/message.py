"""Messages with honest bit-level size accounting.

The CONGEST model limits each node to ``B`` bits per incident edge per
round, so the simulator must know exactly how large every message is.
Rather than guessing, each :class:`Message` subclass declares its payload
through *field specs* — ``(name, kind)`` pairs whose widths are resolved
against a :class:`SizeModel` for the current network size ``n``.  The same
specs drive the real binary encoder in :mod:`repro.congest.encoding`, so
the sizes charged against the bandwidth budget are the sizes an actual
wire format would use.

Field kinds
-----------

``id``
    A node identifier in ``1..n`` (``ceil(log2(n + 1))`` bits).
``dist``
    A hop distance in ``0..n`` or the sentinel :data:`INFINITY`
    (``ceil(log2(n + 2))`` bits; the top code point encodes infinity).
``count``
    A non-negative counter bounded by ``n`` (same width as ``dist``).
``round``
    A round number; algorithms in this package finish within ``O(n)``
    rounds, so four extra bits over ``dist`` (values up to ``16 (n + 2)``)
    are always sufficient and stay ``O(log n)``.
``flag``
    A single bit (booleans).

Every concrete message type also pays a fixed *tag* overhead that
identifies its type on the wire; the tag width grows logarithmically with
the number of registered message types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields as dataclass_fields
from typing import ClassVar, Dict, List, Optional, Tuple, Type

from .errors import EncodingError

#: Sentinel used by ``dist`` fields to mean "unreachable / unknown".
INFINITY: int = -1

_FIELD_KINDS = ("id", "dist", "count", "round", "flag")

#: Registry of all concrete message types, in registration order.  The
#: position of a type in this list is its wire tag.
MESSAGE_REGISTRY: List[Type["Message"]] = []
_REGISTRY_INDEX: Dict[Type["Message"], int] = {}

#: Memoized :func:`tag_bits` — the tag width depends only on the registry
#: size, yet used to be re-derived with ``math.log2`` on *every* size
#: query.  Invalidated by :func:`register_message`.
_TAG_BITS: Optional[int] = None

#: Memoized per-class wire sizes keyed ``(n, cls)``: a message's size
#: depends only on its type (via ``FIELDS``), the network size ``n`` and
#: the registry state — never on the instance.  Shared across
#: :class:`SizeModel` instances (the model is a frozen value object) and
#: invalidated whenever a registration changes the tag width.
_CLASS_SIZE_CACHE: Dict[Tuple[int, Type["Message"]], int] = {}


def register_message(cls: Type["Message"]) -> Type["Message"]:
    """Class decorator: validate field specs and assign a wire tag."""
    global _TAG_BITS
    for name, kind in cls.FIELDS:
        if kind not in _FIELD_KINDS:
            raise EncodingError(
                f"{cls.__name__}.{name}: unknown field kind {kind!r}"
            )
    declared = tuple(f.name for f in dataclass_fields(cls))
    spec_names = tuple(name for name, _ in cls.FIELDS)
    if declared != spec_names:
        raise EncodingError(
            f"{cls.__name__}: dataclass fields {declared} do not match "
            f"FIELDS spec {spec_names}"
        )
    _REGISTRY_INDEX[cls] = len(MESSAGE_REGISTRY)
    MESSAGE_REGISTRY.append(cls)
    # A new registration may widen the wire tag, which is baked into
    # every cached size; drop both memos.
    _TAG_BITS = None
    _CLASS_SIZE_CACHE.clear()
    return cls


def message_tag(cls: Type["Message"]) -> int:
    """Return the wire tag assigned to a registered message type."""
    try:
        return _REGISTRY_INDEX[cls]
    except KeyError:
        raise EncodingError(f"{cls.__name__} is not a registered message type")


def tag_bits() -> int:
    """Bits needed to distinguish all registered message types.

    Computed once per registry state; :func:`register_message`
    invalidates the memo.
    """
    global _TAG_BITS
    if _TAG_BITS is None:
        _TAG_BITS = max(
            1, math.ceil(math.log2(max(2, len(MESSAGE_REGISTRY))))
        )
    return _TAG_BITS


@dataclass(frozen=True)
class SizeModel:
    """Resolves field kinds to bit widths for a network of ``n`` nodes.

    All widths are fixed by ``n`` alone, so they are derived once at
    construction (the ``ceil(log2(...))`` arithmetic used to run on
    every query) and per-class totals are memoized in
    ``_CLASS_SIZE_CACHE`` — the hot path of the simulator's bandwidth
    accounting is a single dict lookup per message.
    """

    n: int

    def __post_init__(self) -> None:
        id_bits = max(1, math.ceil(math.log2(self.n + 1)))
        dist_bits = max(1, math.ceil(math.log2(self.n + 2)))
        # Frozen dataclass: precomputed widths go in via object.__setattr__.
        object.__setattr__(self, "_id_bits", id_bits)
        object.__setattr__(self, "_dist_bits", dist_bits)
        object.__setattr__(self, "_widths", {
            "id": id_bits,
            "dist": dist_bits,
            "count": dist_bits,
            "round": dist_bits + 4,
            "flag": 1,
        })

    @property
    def id_bits(self) -> int:
        """Width of a node identifier in ``1..n``."""
        return self._id_bits

    @property
    def dist_bits(self) -> int:
        """Width of a distance in ``0..n`` plus an infinity code point."""
        return self._dist_bits

    def width_of(self, kind: str) -> int:
        """Bit width of one field of the given kind."""
        try:
            return self._widths[kind]
        except KeyError:
            raise EncodingError(f"unknown field kind {kind!r}")

    def class_size_bits(self, cls: Type["Message"]) -> int:
        """Wire size of any instance of ``cls``: tag plus payload fields.

        Size is a pure function of ``(n, cls)`` and the registry state,
        memoized module-wide; :func:`register_message` invalidates.
        """
        key = (self.n, cls)
        size = _CLASS_SIZE_CACHE.get(key)
        if size is None:
            widths = self._widths
            payload = 0
            for _, kind in cls.FIELDS:
                try:
                    payload += widths[kind]
                except KeyError:
                    raise EncodingError(f"unknown field kind {kind!r}")
            size = tag_bits() + payload
            _CLASS_SIZE_CACHE[key] = size
        return size

    def size_bits(self, message: "Message") -> int:
        """Total wire size of ``message``: tag plus all payload fields."""
        # Inlined cache hit: this is the single hottest call in the
        # simulator (once per message per round).
        size = _CLASS_SIZE_CACHE.get((self.n, type(message)))
        if size is not None:
            return size
        return self.class_size_bits(type(message))


@dataclass(frozen=True)
class Message:
    """Base class for everything that travels over an edge.

    Subclasses are frozen dataclasses whose attributes match their
    ``FIELDS`` spec in order, and must be decorated with
    :func:`register_message`.
    """

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = ()

    def size_bits(self, model: SizeModel) -> int:
        """Wire size of this message under ``model``."""
        return model.size_bits(self)

    def field_values(self) -> Tuple[int, ...]:
        """Payload values in FIELDS order (flags as 0/1 ints)."""
        return tuple(
            int(getattr(self, name)) for name, _ in self.FIELDS
        )


# ---------------------------------------------------------------------------
# Generic messages shared by many protocols.
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class Token(Message):
    """A bare token message (e.g. a wake-up signal); payload-free."""

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = ()


@register_message
@dataclass(frozen=True)
class IdMessage(Message):
    """Carries a single node identifier."""

    uid: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (("uid", "id"),)


@register_message
@dataclass(frozen=True)
class ValueMessage(Message):
    """Carries a single bounded counter value (e.g. an aggregate)."""

    value: int

    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = (("value", "count"),)
