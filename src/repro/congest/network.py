"""The synchronous round scheduler.

:class:`Network` drives one :class:`~repro.congest.node.NodeAlgorithm`
per graph node in lockstep:

1. **Round 0 (wake-up).**  Every node program runs until its first
   ``yield``, staging messages for round 1.  No inbox is delivered.
2. **Round r ≥ 1.**  All messages staged in round ``r - 1`` are policed
   by the bandwidth policy and delivered simultaneously; every still-
   running node program is resumed with its inbox and runs until its next
   ``yield`` (staging messages for round ``r + 1``) or until it returns.
3. The run ends when every node program has returned and no backlog
   remains on any link.  A program's return value is the node's local
   output.

The scheduler is deterministic: nodes are processed in ascending id
order, per-node randomness is seeded from ``(seed, uid)`` and public
randomness from ``seed`` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..graphs.graph import Graph
from .bandwidth import BandwidthPolicy, StrictPolicy, make_policy
from .errors import (
    BandwidthExceededError,
    GraphError,
    ProtocolError,
    RoundLimitExceededError,
)
from .faults import FaultPlan, FaultReport, FaultSpec, ensure_plan
from .mailbox import Inbox, Outbox
from .message import Message, SizeModel
from .metrics import RunMetrics
from .node import NodeAlgorithm, NodeContext, NodeState, PublicRandomness

#: Builds the per-node algorithm object from its context.
AlgorithmFactory = Callable[[NodeContext], NodeAlgorithm]

#: Optional callable invoked with every newly constructed network — the
#: seam the observability layer (:mod:`repro.obs`) uses to auto-attach
#: its recorders to networks created deep inside ``repro.core`` entry
#: points.  ``None`` (the default) costs one global read per *network
#: construction*, never per round, so the disabled path stays free.
_network_observer: Optional[Callable[["Network"], None]] = None


def set_network_observer(
    observer: Optional[Callable[["Network"], None]],
) -> Optional[Callable[["Network"], None]]:
    """Install (or clear, with ``None``) the network-construction hook.

    Returns the previously installed observer so callers can restore
    it — the contract :func:`repro.obs.capture` relies on for nesting.
    """
    global _network_observer
    previous = _network_observer
    _network_observer = observer
    return previous


def default_bandwidth(n: int) -> int:
    """The default per-edge budget ``B`` for an ``n``-node network.

    The paper takes ``B = O(log n)`` — enough for "a constant number of
    node or edge IDs per message".  We allocate six id-widths (at least
    48 bits), which fits the largest bundle any of the paper's algorithms
    ever places on one edge in one round (a BFS token plus a broadcast
    payload), and nothing more.
    """
    model = SizeModel(n)
    return max(48, 6 * model.id_bits)


@dataclass
class RunResult:
    """Outcome of a completed simulation.

    Under fault injection ``results`` may be *partial*: crash-stopped
    nodes and nodes still stalled when the round-limit guard stopped
    the run have no entry, and ``fault_report`` describes what
    happened.  Without faults every node has a result and
    ``fault_report`` is ``None``.
    """

    #: Per-node return values of the node programs that halted normally.
    results: Dict[int, Any]
    #: Round/message/bit statistics.
    metrics: RunMetrics
    #: Structured fault outcome; set iff fault injection was configured.
    fault_report: Optional[FaultReport] = None

    @property
    def rounds(self) -> int:
        """Number of communication rounds used (the paper's cost measure)."""
        return self.metrics.rounds


class Network:
    """A synchronous CONGEST network executing one algorithm.

    Parameters
    ----------
    graph:
        The communication topology.
    factory:
        Called once per node with its :class:`NodeContext`; returns the
        node's algorithm instance.
    bandwidth_bits:
        Per-edge per-round budget ``B``; default :func:`default_bandwidth`.
    policy:
        ``"strict"`` (default), ``"serialize"`` or ``"unlimited"``; see
        :mod:`repro.congest.bandwidth`.
    inputs:
        Optional per-node problem input, exposed as ``ctx.input_value``.
    seed:
        Seed for private and public randomness.
    max_rounds:
        Safety limit; default ``20 * n + 1000`` which every algorithm in
        this package stays well under.  With faults configured, hitting
        the limit stops the run gracefully (partial results) instead of
        raising.
    track_edges:
        Record cumulative per-edge bits (needed for cut audits).
    faults:
        Optional deterministic fault injection: a
        :class:`~repro.congest.faults.FaultSpec`, a compiled
        :class:`~repro.congest.faults.FaultPlan`, or a plain mapping in
        ``FaultSpec.to_dict`` form.  ``None`` (default) simulates the
        paper's perfectly reliable network.
    """

    def __init__(
        self,
        graph: Graph,
        factory: AlgorithmFactory,
        *,
        bandwidth_bits: Optional[int] = None,
        policy: str = "strict",
        inputs: Optional[Mapping[int, Any]] = None,
        seed: int = 0,
        max_rounds: Optional[int] = None,
        track_edges: bool = False,
        faults: "FaultSpec | FaultPlan | Mapping[str, Any] | None" = None,
    ) -> None:
        if graph.n == 0:
            raise GraphError("cannot simulate an empty graph")
        self.graph = graph
        self.size_model = SizeModel(graph.n)
        self.bandwidth_bits = (
            default_bandwidth(graph.n) if bandwidth_bits is None else bandwidth_bits
        )
        self.policy: BandwidthPolicy = make_policy(
            policy, self.bandwidth_bits, self.size_model
        )
        self.max_rounds = (
            20 * graph.n + 1000 if max_rounds is None else max_rounds
        )
        self.metrics = RunMetrics(edge_bits={} if track_edges else None)
        self.round_no = 0
        self.fault_plan: Optional[FaultPlan] = ensure_plan(faults)
        self.fault_report: Optional[FaultReport] = (
            FaultReport() if self.fault_plan is not None else None
        )
        self._stopped = False
        inputs = inputs or {}

        #: Node ids in scheduling order (ascending), fixed once — the
        #: round loop must never re-derive or re-sort this.
        self._node_order: Tuple[int, ...] = graph.nodes
        #: Public randomness is seeded once and cloned per node — see
        #: :class:`~repro.congest.node.PublicRandomness` for semantics.
        public = PublicRandomness(f"{seed}|public")
        self._states: Dict[int, NodeState] = {}
        for uid in self._node_order:
            ctx = NodeContext(
                uid=uid,
                neighbors=graph.neighbors(uid),
                n=graph.n,
                bandwidth_bits=self.bandwidth_bits,
                size_model=self.size_model,
                rng=random.Random(f"{seed}|node|{uid}"),
                public_rng=public.view(),
                input_value=inputs.get(uid),
            )
            self._states[uid] = NodeState(algorithm=factory(ctx))
        self._started = False
        #: messages staged for the next round, keyed by directed edge.
        #: Insertion order is deterministic (nodes resume in ascending id
        #: order; each outbox lists receivers ascending).
        self._staged: Dict[Tuple[int, int], List[Message]] = {}
        #: Node ids still running (not halted, not crashed), ascending;
        #: maintained incrementally so idle rounds never scan dead nodes.
        self._active: List[int] = list(self._node_order)
        #: The fault-free strict fast path: bandwidth policing, metrics
        #: accounting and delivery run in one inlined pass per round,
        #: skipping the fault/backlog branches entirely.  Only the exact
        #: StrictPolicy qualifies (it is stateless and never backlogs).
        self._fast_path = (
            self.fault_plan is None and type(self.policy) is StrictPolicy
        )
        #: Memoized per-class size lookup bound once for the hot loop.
        self._sizeof = self.size_model.size_bits
        if _network_observer is not None:
            _network_observer(self)

    # -- lifecycle ------------------------------------------------------------

    def _start(self) -> None:
        """Round 0: run every program to its first yield."""
        fault_plan = self.fault_plan
        active: List[int] = []
        for uid in self._node_order:
            state = self._states[uid]
            if fault_plan is not None and self._crash_if_due(uid, state, 0):
                continue
            generator = state.algorithm.program()
            state.generator = generator
            try:
                next(generator)
            except StopIteration as stop:
                self._halt(state, stop.value)
            except TypeError:
                raise ProtocolError(
                    f"node {uid}: program() must return a generator "
                    f"(write it with at least one 'yield')"
                )
            self._collect_outbox(uid, state)
            if not state.halted:
                active.append(uid)
        self._active = active
        self._started = True

    def _halt(self, state: NodeState, result: Any) -> None:
        state.halted = True
        state.result = result
        state.generator = None
        state.algorithm._mark_halted()

    def _collect_outbox(self, uid: int, state: NodeState) -> None:
        """Move a node's staged messages into the per-edge staging map.

        Adopts the outbox's internal lists directly (each node is
        collected exactly once per round, so a ``(uid, receiver)`` key
        cannot pre-exist; the defensive merge below keeps that
        assumption honest).  Receiver order is the node's send order —
        per-edge grouping makes cross-edge order irrelevant everywhere
        it could be observed (policing sorts, inboxes sort senders).
        """
        algorithm = state.algorithm
        by_receiver = algorithm._outbox._by_receiver
        if not by_receiver:
            return
        algorithm._outbox = Outbox()
        staged = self._staged
        for receiver, messages in by_receiver.items():
            key = (uid, receiver)
            existing = staged.get(key)
            if existing is None:
                staged[key] = messages
            else:
                existing.extend(messages)

    def _crash_if_due(self, uid: int, state: NodeState, round_no: int) -> bool:
        """Apply a scheduled crash-stop; returns whether ``uid`` is down."""
        if self.fault_plan is None or state.halted:
            return False
        if state.crashed:
            return True
        if not self.fault_plan.is_crashed(uid, round_no):
            return False
        state.crashed = True
        state.generator = None
        crash_round = self.fault_plan.crash_round(uid)
        self.fault_report.crashed[uid] = crash_round
        self.metrics.nodes_crashed += 1
        return True

    def _filter_faults(
        self, deliveries: Dict[Tuple[int, int], List[Message]]
    ) -> Dict[Tuple[int, int], List[Message]]:
        """Apply the fault plan to this round's deliveries.

        Suppression (link down / crashed receiver) and random drops
        happen *at delivery time*, after bandwidth policing, so lost
        traffic still consumed link budget but never counts as
        delivered.
        """
        plan, report = self.fault_plan, self.fault_report
        sizeof = self._sizeof
        filtered: Dict[Tuple[int, int], List[Message]] = {}
        for edge in sorted(deliveries):
            sender, receiver = edge
            messages = deliveries[edge]
            if (
                plan.link_down(sender, receiver, self.round_no)
                or plan.is_crashed(receiver, self.round_no)
            ):
                bits = sum(sizeof(message) for message in messages)
                self.metrics.record_suppressed(len(messages), bits)
                report.messages_suppressed += len(messages)
                continue
            if not plan.has_drops:
                filtered[edge] = messages
                continue
            kept: List[Message] = []
            for index, message in enumerate(messages):
                if plan.drops(sender, receiver, self.round_no, index):
                    self.metrics.record_dropped(1, sizeof(message))
                    report.messages_dropped += 1
                else:
                    kept.append(message)
            if kept:
                filtered[edge] = kept
        return filtered

    @property
    def running(self) -> bool:
        """Whether any node program is still live or backlog remains."""
        if self._stopped:
            return False
        if not self._started:
            return True
        # ``_active`` is maintained incrementally (nodes leave on halt or
        # crash), so this is O(1) instead of a scan over every node.
        return (
            bool(self._active)
            or bool(self._staged)
            or self.policy.has_backlog
        )

    def _raise_overflow(self, staged: Dict[Tuple[int, int], List[Message]]):
        """Re-scan an overflowing round in sorted edge order and raise.

        The fast path polices edges in (deterministic) staging order for
        speed; on the failure path we pay a sorted re-scan so the error
        names the same edge the policy-based slow path would have named.
        """
        sizeof = self._sizeof
        for edge in sorted(staged):
            used = sum(sizeof(message) for message in staged[edge])
            if used > self.bandwidth_bits:
                sender, receiver = edge
                raise BandwidthExceededError(
                    sender, receiver, self.round_no, used,
                    self.bandwidth_bits,
                )
        raise AssertionError("overflow vanished on re-scan")  # pragma: no cover

    def _deliver_fast(
        self, staged: Dict[Tuple[int, int], List[Message]]
    ) -> Dict[int, Dict[int, Tuple[Message, ...]]]:
        """Fault-free strict delivery: police, account and route in one pass.

        Equivalent to ``StrictPolicy.admit`` on every edge followed by
        ``metrics.record_round`` — but wire sizes come from the per-class
        cache, aggregates accumulate inline, and no intermediate
        ``deliveries`` dict or per-edge tuple list is materialized.
        Edge iteration is staging order, which is deterministic and
        order-independent for every recorded quantity.
        """
        sizeof = self._sizeof
        budget = self.bandwidth_bits
        track = self.metrics.edge_bits is not None
        edge_entries = [] if track else None
        round_messages = 0
        round_bits = 0
        max_bits = 0
        max_messages = 0
        inbox_map: Dict[int, Dict[int, Tuple[Message, ...]]] = {}
        for edge, messages in staged.items():
            bits = 0
            for message in messages:
                bits += sizeof(message)
            if bits > budget:
                self._raise_overflow(staged)
            count = len(messages)
            round_messages += count
            round_bits += bits
            if bits > max_bits:
                max_bits = bits
            if count > max_messages:
                max_messages = count
            if track:
                edge_entries.append((edge, bits))
            sender, receiver = edge
            box = inbox_map.get(receiver)
            if box is None:
                inbox_map[receiver] = {sender: tuple(messages)}
            else:
                box[sender] = tuple(messages)
        self.metrics.record_round_totals(
            round_messages, round_bits, max_bits, max_messages, edge_entries
        )
        return inbox_map

    def _deliver_general(
        self, staged: Dict[Tuple[int, int], List[Message]]
    ) -> Dict[int, Dict[int, Tuple[Message, ...]]]:
        """Policy-mediated delivery with backlog and fault handling."""
        deliveries: Dict[Tuple[int, int], List[Message]] = {}
        for edge in sorted(staged):
            admitted = self.policy.admit(edge, staged[edge], self.round_no)
            if admitted:
                deliveries[edge] = admitted
        if self.policy.has_backlog:
            serviced = frozenset(staged)
            drained = self.policy.drain(self.round_no, exclude=serviced)
            for edge, admitted in drained.items():
                if edge in deliveries:
                    deliveries[edge].extend(admitted)
                elif admitted:
                    deliveries[edge] = admitted

        if self.fault_plan is not None:
            deliveries = self._filter_faults(deliveries)

        sizeof = self._sizeof
        self.metrics.record_round(
            (
                edge,
                len(messages),
                sum(sizeof(message) for message in messages),
            )
            for edge, messages in sorted(deliveries.items())
        )

        inbox_map: Dict[int, Dict[int, Tuple[Message, ...]]] = {}
        for (sender, receiver), messages in deliveries.items():
            inbox_map.setdefault(receiver, {})[sender] = tuple(messages)
        return inbox_map

    def step(self) -> bool:
        """Execute one communication round; returns :attr:`running`."""
        if not self._started:
            self._start()
            return self.running
        if not self.running:
            return False
        if self.round_no >= self.max_rounds:
            unfinished = list(self._active)
            if self.fault_plan is not None:
                # Graceful degradation: a fault-injected run never
                # hangs and never hard-fails — it stops here with
                # partial results and a report naming the stalled nodes.
                self.fault_report.stalled = tuple(unfinished)
                self.fault_report.round_limit = self.max_rounds
                self.metrics.nodes_stalled = len(unfinished)
                self._stopped = True
                return False
            raise RoundLimitExceededError(self.max_rounds, len(unfinished))
        self.round_no += 1

        # Police staged traffic, account the round, and build inboxes.
        staged, self._staged = self._staged, {}
        if self._fast_path:
            inbox_map = self._deliver_fast(staged)
        else:
            inbox_map = self._deliver_general(staged)

        # Resume every live node program with its inbox.  ``_active``
        # holds exactly the non-halted, non-crashed nodes in ascending
        # id order; idle receivers share the empty-inbox singleton.
        fault_plan = self.fault_plan
        round_no = self.round_no
        states = self._states
        adopt = Inbox._adopt
        next_active: List[int] = []
        for uid in self._active:
            state = states[uid]
            if fault_plan is not None and self._crash_if_due(
                uid, state, round_no
            ):
                continue
            by_sender = inbox_map.get(uid)
            inbox = Inbox.EMPTY if by_sender is None else adopt(by_sender)
            state.algorithm.round = round_no
            try:
                state.generator.send(inbox)
            except StopIteration as stop:
                self._halt(state, stop.value)
                self._collect_outbox(uid, state)
                continue
            self._collect_outbox(uid, state)
            next_active.append(uid)
        self._active = next_active
        return self.running

    def run(self) -> RunResult:
        """Run to completion and return per-node results plus metrics.

        Fault-free runs finish with every node halted; fault-injected
        runs may return partial results (crashed or stalled nodes have
        no entry) plus a :class:`~repro.congest.faults.FaultReport`.
        """
        while self.step():
            pass
        results = {
            uid: state.result
            for uid, state in self._states.items()
            if state.halted
        }
        return RunResult(
            results=results,
            metrics=self.metrics,
            fault_report=self.fault_report,
        )
