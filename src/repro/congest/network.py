"""The synchronous round scheduler.

:class:`Network` drives one :class:`~repro.congest.node.NodeAlgorithm`
per graph node in lockstep:

1. **Round 0 (wake-up).**  Every node program runs until its first
   ``yield``, staging messages for round 1.  No inbox is delivered.
2. **Round r ≥ 1.**  All messages staged in round ``r - 1`` are policed
   by the bandwidth policy and delivered simultaneously; every still-
   running node program is resumed with its inbox and runs until its next
   ``yield`` (staging messages for round ``r + 1``) or until it returns.
3. The run ends when every node program has returned and no backlog
   remains on any link.  A program's return value is the node's local
   output.

The scheduler is deterministic: nodes are processed in ascending id
order, per-node randomness is seeded from ``(seed, uid)`` and public
randomness from ``seed`` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..graphs.graph import Graph
from .bandwidth import BandwidthPolicy, make_policy
from .errors import GraphError, ProtocolError, RoundLimitExceededError
from .faults import FaultPlan, FaultReport, FaultSpec, ensure_plan
from .mailbox import Inbox
from .message import Message, SizeModel
from .metrics import RunMetrics
from .node import NodeAlgorithm, NodeContext, NodeState

#: Builds the per-node algorithm object from its context.
AlgorithmFactory = Callable[[NodeContext], NodeAlgorithm]


def default_bandwidth(n: int) -> int:
    """The default per-edge budget ``B`` for an ``n``-node network.

    The paper takes ``B = O(log n)`` — enough for "a constant number of
    node or edge IDs per message".  We allocate six id-widths (at least
    48 bits), which fits the largest bundle any of the paper's algorithms
    ever places on one edge in one round (a BFS token plus a broadcast
    payload), and nothing more.
    """
    model = SizeModel(n)
    return max(48, 6 * model.id_bits)


@dataclass
class RunResult:
    """Outcome of a completed simulation.

    Under fault injection ``results`` may be *partial*: crash-stopped
    nodes and nodes still stalled when the round-limit guard stopped
    the run have no entry, and ``fault_report`` describes what
    happened.  Without faults every node has a result and
    ``fault_report`` is ``None``.
    """

    #: Per-node return values of the node programs that halted normally.
    results: Dict[int, Any]
    #: Round/message/bit statistics.
    metrics: RunMetrics
    #: Structured fault outcome; set iff fault injection was configured.
    fault_report: Optional[FaultReport] = None

    @property
    def rounds(self) -> int:
        """Number of communication rounds used (the paper's cost measure)."""
        return self.metrics.rounds


class Network:
    """A synchronous CONGEST network executing one algorithm.

    Parameters
    ----------
    graph:
        The communication topology.
    factory:
        Called once per node with its :class:`NodeContext`; returns the
        node's algorithm instance.
    bandwidth_bits:
        Per-edge per-round budget ``B``; default :func:`default_bandwidth`.
    policy:
        ``"strict"`` (default), ``"serialize"`` or ``"unlimited"``; see
        :mod:`repro.congest.bandwidth`.
    inputs:
        Optional per-node problem input, exposed as ``ctx.input_value``.
    seed:
        Seed for private and public randomness.
    max_rounds:
        Safety limit; default ``20 * n + 1000`` which every algorithm in
        this package stays well under.  With faults configured, hitting
        the limit stops the run gracefully (partial results) instead of
        raising.
    track_edges:
        Record cumulative per-edge bits (needed for cut audits).
    faults:
        Optional deterministic fault injection: a
        :class:`~repro.congest.faults.FaultSpec`, a compiled
        :class:`~repro.congest.faults.FaultPlan`, or a plain mapping in
        ``FaultSpec.to_dict`` form.  ``None`` (default) simulates the
        paper's perfectly reliable network.
    """

    def __init__(
        self,
        graph: Graph,
        factory: AlgorithmFactory,
        *,
        bandwidth_bits: Optional[int] = None,
        policy: str = "strict",
        inputs: Optional[Mapping[int, Any]] = None,
        seed: int = 0,
        max_rounds: Optional[int] = None,
        track_edges: bool = False,
        faults: "FaultSpec | FaultPlan | Mapping[str, Any] | None" = None,
    ) -> None:
        if graph.n == 0:
            raise GraphError("cannot simulate an empty graph")
        self.graph = graph
        self.size_model = SizeModel(graph.n)
        self.bandwidth_bits = (
            default_bandwidth(graph.n) if bandwidth_bits is None else bandwidth_bits
        )
        self.policy: BandwidthPolicy = make_policy(
            policy, self.bandwidth_bits, self.size_model
        )
        self.max_rounds = (
            20 * graph.n + 1000 if max_rounds is None else max_rounds
        )
        self.metrics = RunMetrics(edge_bits={} if track_edges else None)
        self.round_no = 0
        self.fault_plan: Optional[FaultPlan] = ensure_plan(faults)
        self.fault_report: Optional[FaultReport] = (
            FaultReport() if self.fault_plan is not None else None
        )
        self._stopped = False
        inputs = inputs or {}

        self._states: Dict[int, NodeState] = {}
        for uid in graph.nodes:
            ctx = NodeContext(
                uid=uid,
                neighbors=graph.neighbors(uid),
                n=graph.n,
                bandwidth_bits=self.bandwidth_bits,
                size_model=self.size_model,
                rng=random.Random(f"{seed}|node|{uid}"),
                public_rng=random.Random(f"{seed}|public"),
                input_value=inputs.get(uid),
            )
            self._states[uid] = NodeState(algorithm=factory(ctx))
        self._started = False
        #: messages staged for the next round, keyed by directed edge.
        self._staged: Dict[Tuple[int, int], List[Message]] = {}

    # -- lifecycle ------------------------------------------------------------

    def _start(self) -> None:
        """Round 0: run every program to its first yield."""
        for uid in self.graph.nodes:
            state = self._states[uid]
            if self._crash_if_due(uid, state, 0):
                continue
            generator = state.algorithm.program()
            state.generator = generator
            try:
                next(generator)
            except StopIteration as stop:
                self._halt(state, stop.value)
            except TypeError:
                raise ProtocolError(
                    f"node {uid}: program() must return a generator "
                    f"(write it with at least one 'yield')"
                )
            self._collect_outbox(uid, state)
        self._started = True

    def _halt(self, state: NodeState, result: Any) -> None:
        state.halted = True
        state.result = result
        state.generator = None
        state.algorithm._mark_halted()

    def _collect_outbox(self, uid: int, state: NodeState) -> None:
        outbox = state.algorithm._take_outbox()
        for receiver, messages in outbox.items():
            self._staged.setdefault((uid, receiver), []).extend(messages)

    def _crash_if_due(self, uid: int, state: NodeState, round_no: int) -> bool:
        """Apply a scheduled crash-stop; returns whether ``uid`` is down."""
        if self.fault_plan is None or state.halted:
            return False
        if state.crashed:
            return True
        if not self.fault_plan.is_crashed(uid, round_no):
            return False
        state.crashed = True
        state.generator = None
        crash_round = self.fault_plan.crash_round(uid)
        self.fault_report.crashed[uid] = crash_round
        self.metrics.nodes_crashed += 1
        return True

    def _filter_faults(
        self, deliveries: Dict[Tuple[int, int], List[Message]]
    ) -> Dict[Tuple[int, int], List[Message]]:
        """Apply the fault plan to this round's deliveries.

        Suppression (link down / crashed receiver) and random drops
        happen *at delivery time*, after bandwidth policing, so lost
        traffic still consumed link budget but never counts as
        delivered.
        """
        plan, report = self.fault_plan, self.fault_report
        filtered: Dict[Tuple[int, int], List[Message]] = {}
        for edge in sorted(deliveries):
            sender, receiver = edge
            messages = deliveries[edge]
            bits = sum(msg.size_bits(self.size_model) for msg in messages)
            if (
                plan.link_down(sender, receiver, self.round_no)
                or plan.is_crashed(receiver, self.round_no)
            ):
                self.metrics.record_suppressed(len(messages), bits)
                report.messages_suppressed += len(messages)
                continue
            kept: List[Message] = []
            for index, message in enumerate(messages):
                if plan.drops(sender, receiver, self.round_no, index):
                    self.metrics.record_dropped(
                        1, message.size_bits(self.size_model)
                    )
                    report.messages_dropped += 1
                else:
                    kept.append(message)
            if kept:
                filtered[edge] = kept
        return filtered

    @property
    def running(self) -> bool:
        """Whether any node program is still live or backlog remains."""
        if self._stopped:
            return False
        if not self._started:
            return True
        if any(
            not state.halted and not state.crashed
            for state in self._states.values()
        ):
            return True
        return bool(self._staged) or self.policy.has_backlog

    def step(self) -> bool:
        """Execute one communication round; returns :attr:`running`."""
        if not self._started:
            self._start()
            return self.running
        if not self.running:
            return False
        if self.round_no >= self.max_rounds:
            unfinished = sorted(
                uid for uid, state in self._states.items()
                if not state.halted and not state.crashed
            )
            if self.fault_plan is not None:
                # Graceful degradation: a fault-injected run never
                # hangs and never hard-fails — it stops here with
                # partial results and a report naming the stalled nodes.
                self.fault_report.stalled = tuple(unfinished)
                self.fault_report.round_limit = self.max_rounds
                self.metrics.nodes_stalled = len(unfinished)
                self._stopped = True
                return False
            raise RoundLimitExceededError(self.max_rounds, len(unfinished))
        self.round_no += 1

        # Police staged traffic and build inboxes.
        staged, self._staged = self._staged, {}
        deliveries: Dict[Tuple[int, int], List[Message]] = {}
        for edge in sorted(staged):
            admitted = self.policy.admit(edge, staged[edge], self.round_no)
            if admitted:
                deliveries[edge] = admitted
        if self.policy.has_backlog:
            serviced = frozenset(staged)
            drained = self.policy.drain(self.round_no, exclude=serviced)
            for edge, admitted in drained.items():
                if edge in deliveries:
                    deliveries[edge].extend(admitted)
                elif admitted:
                    deliveries[edge] = admitted

        if self.fault_plan is not None:
            deliveries = self._filter_faults(deliveries)

        self.metrics.record_round(
            (
                edge,
                len(messages),
                sum(msg.size_bits(self.size_model) for msg in messages),
            )
            for edge, messages in sorted(deliveries.items())
        )

        inbox_map: Dict[int, Dict[int, Tuple[Message, ...]]] = {}
        for (sender, receiver), messages in deliveries.items():
            inbox_map.setdefault(receiver, {})[sender] = tuple(messages)

        # Resume every live node program with its inbox.
        for uid in self.graph.nodes:
            state = self._states[uid]
            if state.halted or state.crashed:
                continue
            if self._crash_if_due(uid, state, self.round_no):
                continue
            inbox = Inbox(inbox_map.get(uid, {}))
            state.algorithm.round = self.round_no
            try:
                state.generator.send(inbox)
            except StopIteration as stop:
                self._halt(state, stop.value)
            self._collect_outbox(uid, state)
        return self.running

    def run(self) -> RunResult:
        """Run to completion and return per-node results plus metrics.

        Fault-free runs finish with every node halted; fault-injected
        runs may return partial results (crashed or stalled nodes have
        no entry) plus a :class:`~repro.congest.faults.FaultReport`.
        """
        while self.step():
            pass
        results = {
            uid: state.result
            for uid, state in self._states.items()
            if state.halted
        }
        return RunResult(
            results=results,
            metrics=self.metrics,
            fault_report=self.fault_report,
        )
