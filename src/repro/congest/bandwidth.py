"""Bandwidth policies: what happens to the bits a node pushes onto an edge.

The CONGEST model allows ``B`` bits per directed edge per round.  The
paper's algorithms are *proven* to respect that budget, so the default
policy (:class:`StrictPolicy`) treats any overflow as a bug and raises.
Two further policies exist for experiments:

:class:`SerializingPolicy`
    Models a real link with a FIFO queue: per round, the oldest staged
    messages that fit in ``B`` bits are delivered, the rest wait.  This is
    the "serialize the long messages" semantics of Section 3.1, used to
    show why unmodified link-state / distance-vector algorithms go
    superlinear.

:class:`UnlimitedPolicy`
    The LOCAL model — no budget.  Useful as a reference when separating
    "rounds needed for information to travel" from "rounds needed because
    of congestion".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from .errors import BandwidthExceededError
from .message import Message, SizeModel

#: A directed edge as an ordered pair of node ids.
DirectedEdge = Tuple[int, int]


class BandwidthPolicy:
    """Strategy deciding, per directed edge and round, what is delivered."""

    def __init__(self, budget_bits: int, model: SizeModel) -> None:
        self.budget_bits = budget_bits
        self.model = model

    def admit(
        self,
        edge: DirectedEdge,
        staged: List[Message],
        round_no: int,
    ) -> List[Message]:
        """Return the messages actually delivered over ``edge`` this round."""
        raise NotImplementedError

    @property
    def has_backlog(self) -> bool:
        """Whether undelivered messages are still queued on some edge."""
        return False

    def drain(
        self,
        round_no: int,
        exclude: frozenset = frozenset(),
    ) -> Dict[DirectedEdge, List[Message]]:
        """Deliveries for edges with queued backlog but no new sends.

        ``exclude`` lists edges already serviced via :meth:`admit` this
        round, which must not deliver twice.
        """
        return {}


class StrictPolicy(BandwidthPolicy):
    """Raise if an algorithm exceeds the per-edge budget (default).

    Note the fault-free scheduler inlines this check on its fast path
    (see ``Network.step``); this class remains the policing strategy
    whenever faults or a non-default policy are configured.
    """

    def admit(
        self,
        edge: DirectedEdge,
        staged: List[Message],
        round_no: int,
    ) -> List[Message]:
        size_bits = self.model.size_bits
        used = sum(size_bits(message) for message in staged)
        if used > self.budget_bits:
            sender, receiver = edge
            raise BandwidthExceededError(
                sender, receiver, round_no, used, self.budget_bits
            )
        return staged


class UnlimitedPolicy(BandwidthPolicy):
    """Deliver everything (the LOCAL model)."""

    def admit(
        self,
        edge: DirectedEdge,
        staged: List[Message],
        round_no: int,
    ) -> List[Message]:
        return staged


class SerializingPolicy(BandwidthPolicy):
    """FIFO-queue each directed edge; deliver at most ``B`` bits per round.

    A message larger than ``B`` on its own is delivered alone after
    ``ceil(size / B)`` rounds of link time — the closest round-based
    analogue of cutting one long message into ``B``-bit fragments.
    """

    def __init__(self, budget_bits: int, model: SizeModel) -> None:
        super().__init__(budget_bits, model)
        self._queues: Dict[DirectedEdge, Deque[Message]] = {}
        self._debt: Dict[DirectedEdge, int] = {}

    def admit(
        self,
        edge: DirectedEdge,
        staged: List[Message],
        round_no: int,
    ) -> List[Message]:
        queue = self._queues.setdefault(edge, deque())
        queue.extend(staged)
        return self._deliver(edge, queue)

    def _deliver(self, edge: DirectedEdge, queue: Deque[Message]) -> List[Message]:
        delivered: List[Message] = []
        capacity = self.budget_bits
        # Continue paying off an oversized message from earlier rounds.
        debt = self._debt.get(edge, 0)
        if debt > 0:
            if debt > capacity:
                self._debt[edge] = debt - capacity
                return delivered
            capacity -= debt
            self._debt[edge] = 0
            delivered.append(queue.popleft())
        while queue:
            size = self.model.size_bits(queue[0])
            if size <= capacity:
                capacity -= size
                delivered.append(queue.popleft())
            elif size > self.budget_bits and capacity == self.budget_bits:
                # Oversized message at the head of an otherwise idle link:
                # start streaming it; it pops once fully paid for.
                self._debt[edge] = size - capacity
                break
            else:
                break
        if not queue and edge in self._queues and not self._debt.get(edge):
            del self._queues[edge]
            self._debt.pop(edge, None)
        return delivered

    @property
    def has_backlog(self) -> bool:
        return any(self._queues.values())

    def drain(
        self,
        round_no: int,
        exclude: frozenset = frozenset(),
    ) -> Dict[DirectedEdge, List[Message]]:
        deliveries: Dict[DirectedEdge, List[Message]] = {}
        for edge in sorted(self._queues):
            if edge in exclude:
                continue
            queue = self._queues.get(edge)
            if not queue:
                continue
            delivered = self._deliver(edge, queue)
            if delivered:
                deliveries[edge] = delivered
        return deliveries


_POLICIES = {
    "strict": StrictPolicy,
    "serialize": SerializingPolicy,
    "unlimited": UnlimitedPolicy,
}


def make_policy(name: str, budget_bits: int, model: SizeModel) -> BandwidthPolicy:
    """Construct a policy by name: ``strict``, ``serialize`` or ``unlimited``."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown bandwidth policy {name!r}; "
            f"expected one of {sorted(_POLICIES)}"
        )
    return cls(budget_bits, model)
