"""Run metrics: the quantities the paper's Table 1 is about.

The primary cost measure is the number of synchronous rounds; we also
track message and bit totals (for the Elkin bit-complexity comparison in
Section 3.2) and, optionally, per-edge cumulative bits so lower-bound
experiments can audit how much information crossed a graph cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

DirectedEdge = Tuple[int, int]


@dataclass
class RunMetrics:
    """Aggregate statistics of one simulation run."""

    rounds: int = 0
    messages_total: int = 0
    bits_total: int = 0
    #: Largest number of bits any single directed edge carried in one round.
    max_edge_bits_in_round: int = 0
    #: Largest number of messages any single directed edge carried in one round.
    max_edge_messages_in_round: int = 0
    #: Messages delivered per round (index 0 = round 1).
    messages_per_round: List[int] = field(default_factory=list)
    #: Bits delivered per round (index 0 = round 1).
    bits_per_round: List[int] = field(default_factory=list)
    #: Cumulative bits per directed edge; populated only if edge tracking
    #: was requested (it costs memory proportional to the edge count).
    edge_bits: Optional[Dict[DirectedEdge, int]] = None

    def record_round(
        self,
        deliveries: Iterable[Tuple[DirectedEdge, int, int]],
    ) -> None:
        """Record one round; ``deliveries`` yields ``(edge, msgs, bits)``."""
        round_messages = 0
        round_bits = 0
        for edge, msg_count, bit_count in deliveries:
            round_messages += msg_count
            round_bits += bit_count
            if bit_count > self.max_edge_bits_in_round:
                self.max_edge_bits_in_round = bit_count
            if msg_count > self.max_edge_messages_in_round:
                self.max_edge_messages_in_round = msg_count
            if self.edge_bits is not None:
                self.edge_bits[edge] = self.edge_bits.get(edge, 0) + bit_count
        self.rounds += 1
        self.messages_total += round_messages
        self.bits_total += round_bits
        self.messages_per_round.append(round_messages)
        self.bits_per_round.append(round_bits)

    def to_dict(self) -> Dict[str, object]:
        """JSON-pure rendering (harness records, result stores).

        ``edge_bits`` becomes a sorted ``[sender, receiver, bits]``
        list (JSON has no tuple keys) and is omitted entirely when edge
        tracking was off, matching the ``Optional`` semantics.
        """
        data: Dict[str, object] = {
            "rounds": self.rounds,
            "messages_total": self.messages_total,
            "bits_total": self.bits_total,
            "max_edge_bits_in_round": self.max_edge_bits_in_round,
            "max_edge_messages_in_round": self.max_edge_messages_in_round,
            "messages_per_round": list(self.messages_per_round),
            "bits_per_round": list(self.bits_per_round),
        }
        if self.edge_bits is not None:
            data["edge_bits"] = [
                [sender, receiver, bits]
                for (sender, receiver), bits in sorted(self.edge_bits.items())
            ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunMetrics":
        """Inverse of :meth:`to_dict` (accepts its exact shape)."""
        edge_bits = None
        if "edge_bits" in data:
            edge_bits = {
                (int(sender), int(receiver)): int(bits)
                for sender, receiver, bits in data["edge_bits"]  # type: ignore[union-attr]
            }
        return cls(
            rounds=int(data.get("rounds", 0)),
            messages_total=int(data.get("messages_total", 0)),
            bits_total=int(data.get("bits_total", 0)),
            max_edge_bits_in_round=int(
                data.get("max_edge_bits_in_round", 0)
            ),
            max_edge_messages_in_round=int(
                data.get("max_edge_messages_in_round", 0)
            ),
            messages_per_round=[
                int(x) for x in data.get("messages_per_round", [])
            ],
            bits_per_round=[
                int(x) for x in data.get("bits_per_round", [])
            ],
            edge_bits=edge_bits,
        )

    def bits_across_cut(self, side_a: FrozenSet[int]) -> int:
        """Total bits that crossed the cut ``(side_a, V - side_a)``.

        Requires edge tracking.  Used by the lower-bound experiments to
        measure the information flow through the bit-gadget bottleneck.
        """
        if self.edge_bits is None:
            raise ValueError(
                "edge tracking was not enabled for this run; "
                "pass track_edges=True to the network"
            )
        return sum(
            bits
            for (sender, receiver), bits in self.edge_bits.items()
            if (sender in side_a) != (receiver in side_a)
        )
