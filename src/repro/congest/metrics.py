"""Run metrics: the quantities the paper's Table 1 is about.

The primary cost measure is the number of synchronous rounds; we also
track message and bit totals (for the Elkin bit-complexity comparison in
Section 3.2) and, optionally, per-edge cumulative bits so lower-bound
experiments can audit how much information crossed a graph cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

DirectedEdge = Tuple[int, int]


@dataclass
class RunMetrics:
    """Aggregate statistics of one simulation run."""

    rounds: int = 0
    messages_total: int = 0
    bits_total: int = 0
    #: Largest number of bits any single directed edge carried in one round.
    max_edge_bits_in_round: int = 0
    #: Largest number of messages any single directed edge carried in one round.
    max_edge_messages_in_round: int = 0
    #: Messages delivered per round (index 0 = round 1).
    messages_per_round: List[int] = field(default_factory=list)
    #: Bits delivered per round (index 0 = round 1).
    bits_per_round: List[int] = field(default_factory=list)
    #: Cumulative bits per directed edge; populated only if edge tracking
    #: was requested (it costs memory proportional to the edge count).
    edge_bits: Optional[Dict[DirectedEdge, int]] = None
    #: Messages/bits lost to random per-message drops (fault injection).
    messages_dropped: int = 0
    bits_dropped: int = 0
    #: Messages/bits suppressed by link outages or crashed receivers.
    messages_suppressed: int = 0
    bits_suppressed: int = 0
    #: Nodes that crash-stopped during the run.
    nodes_crashed: int = 0
    #: Nodes still live when a faulty run hit the round-limit guard.
    nodes_stalled: int = 0

    def record_round(
        self,
        deliveries: Iterable[Tuple[DirectedEdge, int, int]],
    ) -> None:
        """Record one round; ``deliveries`` yields ``(edge, msgs, bits)``."""
        round_messages = 0
        round_bits = 0
        max_bits = 0
        max_messages = 0
        edge_entries = None if self.edge_bits is None else []
        for edge, msg_count, bit_count in deliveries:
            round_messages += msg_count
            round_bits += bit_count
            if bit_count > max_bits:
                max_bits = bit_count
            if msg_count > max_messages:
                max_messages = msg_count
            if edge_entries is not None:
                edge_entries.append((edge, bit_count))
        self.record_round_totals(
            round_messages, round_bits, max_bits, max_messages, edge_entries
        )

    def record_round_totals(
        self,
        round_messages: int,
        round_bits: int,
        max_edge_bits: int,
        max_edge_messages: int,
        edge_entries: Optional[Iterable[Tuple[DirectedEdge, int]]] = None,
    ) -> None:
        """Batched round accounting (the scheduler's single-pass path).

        The scheduler already walks every delivered edge once to police
        bandwidth, so it accumulates these aggregates in that same pass
        and commits them here in O(1) instead of handing over per-edge
        tuples to re-reduce.  ``edge_entries`` carries ``(edge, bits)``
        pairs and is only consulted when edge tracking is on.
        """
        if max_edge_bits > self.max_edge_bits_in_round:
            self.max_edge_bits_in_round = max_edge_bits
        if max_edge_messages > self.max_edge_messages_in_round:
            self.max_edge_messages_in_round = max_edge_messages
        if self.edge_bits is not None and edge_entries is not None:
            edge_bits = self.edge_bits
            for edge, bit_count in edge_entries:
                edge_bits[edge] = edge_bits.get(edge, 0) + bit_count
        self.rounds += 1
        self.messages_total += round_messages
        self.bits_total += round_bits
        self.messages_per_round.append(round_messages)
        self.bits_per_round.append(round_bits)

    def record_dropped(self, msg_count: int, bit_count: int) -> None:
        """Count traffic lost to random per-message drops."""
        self.messages_dropped += msg_count
        self.bits_dropped += bit_count

    def record_suppressed(self, msg_count: int, bit_count: int) -> None:
        """Count traffic suppressed by link outages / crashed receivers."""
        self.messages_suppressed += msg_count
        self.bits_suppressed += bit_count

    @property
    def fault_counters_active(self) -> bool:
        """Whether any fault-injection counter is nonzero."""
        return bool(
            self.messages_dropped or self.bits_dropped
            or self.messages_suppressed or self.bits_suppressed
            or self.nodes_crashed or self.nodes_stalled
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-pure rendering (harness records, result stores).

        ``edge_bits`` becomes a sorted ``[sender, receiver, bits]``
        list (JSON has no tuple keys) and is omitted entirely when edge
        tracking was off, matching the ``Optional`` semantics.  The
        fault counters appear only when at least one is nonzero, so
        fault-free records keep their historical shape and old cache
        entries remain byte-comparable with fresh runs.
        """
        data: Dict[str, object] = {
            "rounds": self.rounds,
            "messages_total": self.messages_total,
            "bits_total": self.bits_total,
            "max_edge_bits_in_round": self.max_edge_bits_in_round,
            "max_edge_messages_in_round": self.max_edge_messages_in_round,
            "messages_per_round": list(self.messages_per_round),
            "bits_per_round": list(self.bits_per_round),
        }
        if self.fault_counters_active:
            data["messages_dropped"] = self.messages_dropped
            data["bits_dropped"] = self.bits_dropped
            data["messages_suppressed"] = self.messages_suppressed
            data["bits_suppressed"] = self.bits_suppressed
            data["nodes_crashed"] = self.nodes_crashed
            data["nodes_stalled"] = self.nodes_stalled
        if self.edge_bits is not None:
            data["edge_bits"] = [
                [sender, receiver, bits]
                for (sender, receiver), bits in sorted(self.edge_bits.items())
            ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunMetrics":
        """Inverse of :meth:`to_dict` (accepts its exact shape)."""
        edge_bits = None
        if "edge_bits" in data:
            edge_bits = {
                (int(sender), int(receiver)): int(bits)
                for sender, receiver, bits in data["edge_bits"]  # type: ignore[union-attr]
            }
        return cls(
            rounds=int(data.get("rounds", 0)),
            messages_total=int(data.get("messages_total", 0)),
            bits_total=int(data.get("bits_total", 0)),
            max_edge_bits_in_round=int(
                data.get("max_edge_bits_in_round", 0)
            ),
            max_edge_messages_in_round=int(
                data.get("max_edge_messages_in_round", 0)
            ),
            messages_per_round=[
                int(x) for x in data.get("messages_per_round", [])
            ],
            bits_per_round=[
                int(x) for x in data.get("bits_per_round", [])
            ],
            edge_bits=edge_bits,
            messages_dropped=int(data.get("messages_dropped", 0)),
            bits_dropped=int(data.get("bits_dropped", 0)),
            messages_suppressed=int(data.get("messages_suppressed", 0)),
            bits_suppressed=int(data.get("bits_suppressed", 0)),
            nodes_crashed=int(data.get("nodes_crashed", 0)),
            nodes_stalled=int(data.get("nodes_stalled", 0)),
        )

    def bits_across_cut(self, side_a: FrozenSet[int]) -> int:
        """Total bits that crossed the cut ``(side_a, V - side_a)``.

        Requires edge tracking.  Used by the lower-bound experiments to
        measure the information flow through the bit-gadget bottleneck.
        """
        if self.edge_bits is None:
            raise ValueError(
                "edge tracking was not enabled for this run; "
                "pass track_edges=True to the network"
            )
        return sum(
            bits
            for (sender, receiver), bits in self.edge_bits.items()
            if (sender in side_a) != (receiver in side_a)
        )
