"""Exception hierarchy for the CONGEST simulator.

Every error raised by :mod:`repro.congest` derives from :class:`CongestError`
so callers can catch simulator problems without masking ordinary Python
errors (``TypeError`` and friends still propagate unchanged).
"""

from __future__ import annotations


class CongestError(Exception):
    """Base class for all simulator errors."""


class GraphError(CongestError):
    """The input graph violates a structural requirement.

    Raised e.g. for self-loops, duplicate edges, non-positive node
    identifiers, or when an algorithm requires a connected graph and the
    input is not connected.
    """


class BandwidthExceededError(CongestError):
    """A node tried to push more than ``B`` bits over one edge in one round.

    Under the ``strict`` bandwidth policy this is a *bug in the algorithm*:
    the CONGEST model forbids it, and every algorithm from the paper is
    proven to stay within budget.  The error message names the offending
    directed edge, the round, and the bit totals so the failure is
    actionable.
    """

    def __init__(self, sender: int, receiver: int, round_no: int,
                 used_bits: int, budget_bits: int) -> None:
        self.sender = sender
        self.receiver = receiver
        self.round_no = round_no
        self.used_bits = used_bits
        self.budget_bits = budget_bits
        super().__init__(
            f"edge {sender}->{receiver} carries {used_bits} bits in round "
            f"{round_no}, exceeding the bandwidth budget of {budget_bits} bits"
        )


class RoundLimitExceededError(CongestError):
    """The simulation passed ``max_rounds`` without every node halting.

    This usually means a distributed algorithm deadlocked or its
    termination bookkeeping is wrong; the limit exists so such bugs fail
    fast instead of spinning forever.
    """

    def __init__(self, max_rounds: int, unfinished: int) -> None:
        self.max_rounds = max_rounds
        self.unfinished = unfinished
        super().__init__(
            f"{unfinished} node(s) still running after {max_rounds} rounds"
        )


class ProtocolError(CongestError):
    """An algorithm misused the node API.

    Examples: sending to a non-neighbor, sending after halting, or a node
    program that never yields.
    """


class EncodingError(CongestError):
    """A message could not be encoded into / decoded from its bit layout."""
