"""The per-node programming model.

Algorithms are written as *node programs*: Python generators that run one
segment of local computation per round, stage outgoing messages with
:meth:`NodeAlgorithm.send`, and then ``yield`` to receive the next round's
:class:`~repro.congest.mailbox.Inbox`.  The canonical shape is::

    class MyAlgorithm(NodeAlgorithm):
        def program(self):
            self.send(neighbor, Token())       # staged for round 1
            inbox = yield                      # round 1 delivery
            ...
            return local_result                # halts this node

Multi-phase algorithms compose sub-protocols with ``yield from`` — see
:mod:`repro.core.subroutines`.  The generator's return value becomes the
node's result in the :class:`~repro.congest.network.RunResult`.

Synchrony is exactly the paper's: all nodes wake simultaneously in round
0 (no inbox), and a message staged during round ``r`` is delivered at the
start of round ``r + 1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Generator, Optional, Tuple

from .errors import ProtocolError
from .mailbox import Inbox, Outbox
from .message import Message, SizeModel

#: Type alias for node programs.
NodeProgram = Generator[None, Inbox, Any]


class PublicRandomness:
    """One shared public-coin stream, handed out as per-node views.

    Sharing semantics
    -----------------
    The paper's "(public) randomness" (Definition 1) is a *common random
    string*: every node reads the same coin flips.  We model that by
    giving every node a ``random.Random`` whose stream is identical —
    node ``u``'s ``k``-th draw equals node ``v``'s ``k``-th draw — while
    private randomness (``ctx.rng``) stays per-node.

    The network used to realize this by string-seeding a fresh
    ``random.Random(f"{seed}|public")`` *per node*, paying the SHA-512
    seeding cost ``n`` times for ``n`` copies of the same stream.  This
    class seeds the underlying Mersenne Twister exactly once and
    :meth:`view` clones the resulting state into each node's instance,
    which is observationally identical (same stream per node, streams
    advance independently) but shares the expensive seeding.
    """

    __slots__ = ("_state",)

    def __init__(self, seed_key: str) -> None:
        self._state = random.Random(seed_key).getstate()

    def view(self) -> random.Random:
        """A fresh ``random.Random`` positioned at the shared stream's start."""
        rng = random.Random()
        rng.setstate(self._state)
        return rng


@dataclass(frozen=True)
class NodeContext:
    """Everything a node is allowed to know at wake-up.

    Mirrors the paper's assumptions: a node knows its own identifier, the
    identifiers of its immediate neighbors, the network size ``n``, and
    the bandwidth ``B``.  It does *not* know anything else about the
    topology.

    ``rng`` is the node's private randomness; ``public_rng`` is shared
    randomness — every node's ``public_rng`` yields the identical stream,
    matching the paper's "(public) randomness" in Definition 1.  The
    streams are views of one :class:`PublicRandomness` object (seeded
    once per network, cloned per node — see its docstring for the
    sharing semantics); each view advances independently, so one node's
    draws never perturb another's.  ``input_value`` carries per-node
    problem input (e.g. membership in the set ``S`` for S-SP).
    """

    uid: int
    neighbors: Tuple[int, ...]
    n: int
    bandwidth_bits: int
    size_model: SizeModel
    rng: random.Random = field(compare=False, repr=False)
    public_rng: random.Random = field(compare=False, repr=False)
    input_value: Any = None

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self.neighbors)


class NodeAlgorithm:
    """Base class for per-node programs.

    Subclasses implement :meth:`program`.  The framework instantiates one
    object per node, drives its generator in lockstep with all others, and
    collects the generator's return value as the node's local output.
    """

    def __init__(self, ctx: NodeContext) -> None:
        self.ctx = ctx
        self.round: int = 0
        self._outbox = Outbox()
        self._neighbor_set = frozenset(ctx.neighbors)
        self._halted = False

    # -- the API available to node programs --------------------------------

    @property
    def uid(self) -> int:
        """This node's identifier."""
        return self.ctx.uid

    @property
    def neighbors(self) -> Tuple[int, ...]:
        """Identifiers of adjacent nodes, ascending."""
        return self.ctx.neighbors

    @property
    def n(self) -> int:
        """Number of nodes in the network (globally known)."""
        return self.ctx.n

    def send(self, receiver: int, message: Message) -> None:
        """Stage ``message`` for delivery to neighbor ``receiver``.

        Delivery happens at the start of the next round.  Sending to a
        non-neighbor is a :class:`~repro.congest.errors.ProtocolError`
        (the model has no routing — only direct links).
        """
        if receiver not in self._neighbor_set:
            raise ProtocolError(
                f"node {self.uid} tried to send to non-neighbor {receiver}"
            )
        if self._halted:
            raise ProtocolError(f"node {self.uid} sent after halting")
        if not isinstance(message, Message):
            raise ProtocolError(
                f"node {self.uid} tried to send non-Message {message!r}"
            )
        self._outbox.add(receiver, message)

    def send_all(self, message: Message) -> None:
        """Stage the same ``message`` to every neighbor (a local broadcast)."""
        for neighbor in self.ctx.neighbors:
            self.send(neighbor, message)

    # -- to be provided by subclasses ---------------------------------------

    def program(self) -> NodeProgram:
        """The node's behaviour; must be a generator (see module docs)."""
        raise NotImplementedError

    # -- framework plumbing --------------------------------------------------

    def _take_outbox(self) -> Outbox:
        outbox, self._outbox = self._outbox, Outbox()
        return outbox

    def _mark_halted(self) -> None:
        self._halted = True


@dataclass
class NodeState:
    """Framework-side bookkeeping for one running node (not public API)."""

    algorithm: NodeAlgorithm
    generator: Optional[NodeProgram] = None
    halted: bool = False
    result: Any = None
    #: Set when fault injection crash-stopped this node (see
    #: :mod:`repro.congest.faults`); a crashed node never resumes.
    crashed: bool = False
