"""Deterministic fault injection for the CONGEST simulator.

The paper's algorithms are proven correct in a perfectly reliable
synchronous network.  This module lets experiments ask what happens when
that assumption breaks, without giving up reproducibility:

* :class:`FaultSpec` — a JSON-pure description of the faults to inject:
  a per-message drop probability, scheduled link down/up intervals, and
  node crash-stops at fixed rounds.
* :class:`FaultPlan` — the compiled, *fully deterministic* decision
  procedure the :class:`~repro.congest.network.Network` consults during
  delivery.  Every decision is a pure function of
  ``(spec.seed, round, sender, receiver, message index)`` — independent
  of iteration order, process, or platform — so the same
  ``(FaultSpec, seed)`` always produces byte-identical runs.
* :class:`FaultReport` — the structured outcome attached to
  :class:`~repro.congest.network.RunResult`: which nodes crash-stopped,
  which stalled when the round-limit guard tripped, and how much
  traffic was lost.
* :func:`resilient` — a generic ack-free retransmit wrapper turning any
  :class:`~repro.congest.node.NodeAlgorithm` into one that survives
  bounded message loss at a constant-factor round overhead.

Fault semantics (all applied at delivery time, before metrics are
recorded, so dropped traffic never counts as delivered):

``drop_rate``
    Each message crossing an edge in a round is lost independently with
    this probability (a lossy link).  Decisions are derived from a keyed
    hash, not a shared RNG stream, so they do not depend on the order in
    which edges are processed.
``links``
    ``(u, v, down, up)`` intervals: the *undirected* link ``{u, v}``
    delivers nothing in any round ``r`` with ``down <= r < up``.
``crashes``
    ``uid -> round``: the node crash-stops at the *start* of that round.
    It does not execute that round or any later one, stages no further
    messages, and everything delivered to it from then on is suppressed.
    Messages it staged while still alive are delivered normally (they
    were already in flight).

A crash can leave the remaining nodes waiting forever; the network's
``max_rounds`` guard then stops the run *gracefully* (partial results
plus a :class:`FaultReport` naming the stalled nodes) instead of raising
:class:`~repro.congest.errors.RoundLimitExceededError` — faulty runs
never hang and never hard-fail.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from typing import Union

from .mailbox import Inbox
from .message import Message
from .node import NodeAlgorithm, NodeContext


@dataclass(frozen=True)
class LinkOutage:
    """One scheduled outage of the undirected link ``{u, v}``.

    The link is down for every round ``r`` with ``down <= r < up``
    (half-open, like a Python range).
    """

    u: int
    v: int
    down: int
    up: int

    def covers(self, round_no: int) -> bool:
        """Whether the link is down in ``round_no``."""
        return self.down <= round_no < self.up

    def to_list(self) -> List[int]:
        """JSON-pure rendering as ``[u, v, down, up]``."""
        return [self.u, self.v, self.down, self.up]


@dataclass(frozen=True)
class FaultSpec:
    """Declarative, JSON-pure description of the faults to inject.

    All randomness derives from ``seed`` (independent of the algorithm
    seed), so a spec plus a topology pins down every fault decision.
    The spec is hashable and round-trips through :meth:`to_dict` /
    :meth:`from_dict`, which is what lets campaign tasks carry it.
    """

    #: Independent per-message loss probability in ``[0, 1]``.
    drop_rate: float = 0.0
    #: Seed for the drop decisions (keyed-hash, order-independent).
    seed: int = 0
    #: Scheduled link outages.
    links: Tuple[LinkOutage, ...] = ()
    #: ``(uid, round)`` crash-stops, one per node at most.
    crashes: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1], got {self.drop_rate}"
            )
        uids = [uid for uid, _ in self.crashes]
        if len(uids) != len(set(uids)):
            raise ValueError("a node may crash at most once")

    @property
    def is_noop(self) -> bool:
        """Whether this spec injects no faults at all."""
        return not (self.drop_rate or self.links or self.crashes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-pure rendering (inverse of :meth:`from_dict`)."""
        data: Dict[str, Any] = {
            "drop_rate": self.drop_rate,
            "seed": self.seed,
        }
        if self.links:
            data["links"] = [outage.to_list() for outage in self.links]
        if self.crashes:
            data["crashes"] = {
                str(uid): round_no for uid, round_no in self.crashes
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        """Build a spec from its :meth:`to_dict` shape.

        ``links`` is a list of ``[u, v, down, up]`` quadruples;
        ``crashes`` maps node id (int or str — JSON keys are strings)
        to the crash round.
        """
        known = {"drop_rate", "seed", "links", "crashes"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault spec fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        links = tuple(
            LinkOutage(int(u), int(v), int(down), int(up))
            for u, v, down, up in data.get("links", ())
        )
        crashes_raw = data.get("crashes", {})
        if isinstance(crashes_raw, Mapping):
            crash_items = crashes_raw.items()
        else:
            crash_items = list(crashes_raw)
        crashes = tuple(sorted(
            (int(uid), int(round_no)) for uid, round_no in crash_items
        ))
        return cls(
            drop_rate=float(data.get("drop_rate", 0.0)),
            seed=int(data.get("seed", 0)),
            links=links,
            crashes=crashes,
        )


#: Anything the network accepts as its ``faults`` argument: a spec, a
#: compiled plan, a plain mapping in ``FaultSpec.to_dict`` form, or
#: ``None`` for the paper's perfectly reliable network.
FaultsLike = Optional[Union[FaultSpec, "FaultPlan", Mapping[str, Any]]]


class FaultPlan:
    """Compiled fault decisions for one run (see module docstring).

    Stateless with respect to the simulation: every query is a pure
    function of its arguments, so consulting the plan in any order —
    or twice — yields the same answers.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._crash_rounds: Dict[int, int] = dict(spec.crashes)
        self._outages: Dict[Tuple[int, int], List[LinkOutage]] = {}
        for outage in spec.links:
            pair = (min(outage.u, outage.v), max(outage.u, outage.v))
            self._outages.setdefault(pair, []).append(outage)
        self._drop_key = f"{spec.seed}|drop".encode("ascii")
        #: Capability flags: which fault kinds this plan can ever fire.
        #: The scheduler consults them to skip whole filtering phases
        #: (e.g. the per-message drop loop when ``drop_rate == 0``)
        #: without changing any decision the plan would make.
        self.has_drops: bool = spec.drop_rate > 0.0
        self.has_outages: bool = bool(self._outages)
        self.has_crashes: bool = bool(self._crash_rounds)

    def crash_round(self, uid: int) -> Optional[int]:
        """The round at which ``uid`` crash-stops, or ``None``."""
        return self._crash_rounds.get(uid)

    def is_crashed(self, uid: int, round_no: int) -> bool:
        """Whether ``uid`` has crash-stopped by ``round_no``."""
        crash = self._crash_rounds.get(uid)
        return crash is not None and round_no >= crash

    def link_down(self, sender: int, receiver: int, round_no: int) -> bool:
        """Whether the (undirected) link is down in ``round_no``."""
        if not self.has_outages:
            return False
        pair = (min(sender, receiver), max(sender, receiver))
        outages = self._outages.get(pair)
        if not outages:
            return False
        return any(outage.covers(round_no) for outage in outages)

    def drops(
        self, sender: int, receiver: int, round_no: int, index: int
    ) -> bool:
        """Whether message ``index`` on this directed edge is lost.

        Deterministic: a keyed blake2b hash of
        ``(seed, round, sender, receiver, index)`` is compared against
        ``drop_rate``, so the decision never depends on how many other
        messages exist or in which order edges are examined.
        """
        rate = self.spec.drop_rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.blake2b(
            f"{round_no}|{sender}|{receiver}|{index}".encode("ascii"),
            key=self._drop_key,
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / 2 ** 64 < rate


@dataclass
class FaultReport:
    """Structured outcome of a fault-injected run.

    Attached to :class:`~repro.congest.network.RunResult` whenever a
    :class:`FaultSpec` was configured (even if nothing fired), ``None``
    otherwise.  ``crashed`` maps node id to the round its crash-stop
    took effect; ``stalled`` lists the nodes that were still live when
    the ``max_rounds`` guard stopped the run.
    """

    crashed: Dict[int, int] = field(default_factory=dict)
    stalled: Tuple[int, ...] = ()
    #: The round limit that tripped, when the run was cut short.
    round_limit: Optional[int] = None
    messages_dropped: int = 0
    messages_suppressed: int = 0

    @property
    def completed(self) -> bool:
        """Whether every surviving node halted normally."""
        return not self.stalled

    def to_dict(self) -> Dict[str, Any]:
        """JSON-pure rendering (for harness records and logs)."""
        return {
            "crashed": {str(uid): r for uid, r in sorted(self.crashed.items())},
            "stalled": sorted(self.stalled),
            "round_limit": self.round_limit,
            "messages_dropped": self.messages_dropped,
            "messages_suppressed": self.messages_suppressed,
            "completed": self.completed,
        }


def ensure_plan(
    faults: "FaultSpec | FaultPlan | Mapping[str, Any] | None",
) -> Optional[FaultPlan]:
    """Normalize the ``faults`` argument accepted by the network.

    Accepts ``None`` (no injection), a :class:`FaultSpec`, an already
    compiled :class:`FaultPlan`, or a plain mapping in
    :meth:`FaultSpec.to_dict` form (what harness task params carry).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, FaultSpec):
        return FaultPlan(faults)
    if isinstance(faults, Mapping):
        return FaultPlan(FaultSpec.from_dict(faults))
    raise TypeError(
        f"faults must be a FaultSpec, FaultPlan, mapping or None, "
        f"got {type(faults).__name__}"
    )


# ---------------------------------------------------------------------------
# Resilience: surviving bounded message loss by retransmission.
# ---------------------------------------------------------------------------


class ResilientNode(NodeAlgorithm):
    """Retransmit wrapper executing one *logical* round per frame.

    Physical time is divided into frames of ``replicas`` rounds.  In
    each frame the wrapper retransmits the wrapped algorithm's staged
    messages once per physical round and accumulates (deduplicating)
    everything received; at the frame boundary the union is delivered
    to the wrapped algorithm as one logical inbox.  A logical message
    survives unless *all* ``replicas`` copies are lost, so under an
    independent per-copy loss probability ``p`` the effective loss rate
    drops to ``p ** replicas`` at exactly a factor-``replicas`` round
    overhead.

    The wrapped algorithm's ``round`` attribute counts logical rounds,
    so round-arithmetic sub-protocols (``wait_until_round`` and
    friends) keep working unchanged.

    Limitation: duplicates are detected by message *value*, so two
    identical messages staged for the same neighbor in the same logical
    round collapse into one.  None of the paper's protocols do that.
    """

    def __init__(
        self,
        ctx: NodeContext,
        factory: Callable[[NodeContext], NodeAlgorithm],
        replicas: int,
    ) -> None:
        super().__init__(ctx)
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.inner = factory(ctx)
        self.replicas = replicas

    def program(self):
        """Drive the wrapped program one logical round per frame."""
        inner, generator = self.inner, self.inner.program()
        done, result = False, None
        try:
            next(generator)
        except StopIteration as stop:
            done, result = True, stop.value
        frame = 0
        while True:
            staged = [
                (receiver, list(messages))
                for receiver, messages in inner._take_outbox().items()
            ]
            received: Dict[int, List[Message]] = {}
            seen: set = set()
            for _ in range(self.replicas):
                for receiver, messages in staged:
                    for message in messages:
                        self.send(receiver, message)
                inbox = yield
                for sender, message in inbox.items():
                    token = (sender, message)
                    if token not in seen:
                        seen.add(token)
                        received.setdefault(sender, []).append(message)
            if done:
                return result
            frame += 1
            inner.round = frame
            logical_inbox = Inbox({
                sender: tuple(messages)
                for sender, messages in received.items()
            })
            try:
                generator.send(logical_inbox)
            except StopIteration as stop:
                done, result = True, stop.value


def resilient(
    factory: Callable[[NodeContext], NodeAlgorithm],
    *,
    replicas: int = 3,
) -> Callable[[NodeContext], ResilientNode]:
    """Wrap an algorithm factory in the retransmit scheme.

    Usage::

        Network(graph, resilient(BfsNode, replicas=4),
                faults=FaultSpec(drop_rate=0.2, seed=1)).run()

    Per-round per-edge traffic never exceeds what the wrapped algorithm
    sends in one logical round, so the CONGEST budget still holds; the
    round count grows by exactly a factor of ``replicas`` (plus one
    final flush frame).  See :class:`ResilientNode` for semantics.
    """

    def make(ctx: NodeContext) -> ResilientNode:
        return ResilientNode(ctx, factory, replicas)

    return make
