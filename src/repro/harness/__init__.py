"""Campaign harness: parallel, cached parameter sweeps over the simulator.

Regenerating Table 1 means running the same deterministic simulations —
(graph spec × algorithm × params × seed) — over and over, across the
experiments framework, the benchmark suite and ad-hoc CLI invocations.
This subsystem makes those sweeps cheap and repeatable:

* :mod:`~repro.harness.spec` — declarative sweep specs and their
  expansion into independent, picklable :class:`~repro.harness.spec.Task`
  descriptors.
* :mod:`~repro.harness.runner` — the per-task executor mapping an
  algorithm name onto the :mod:`repro.core` entry points, producing a
  deterministic result record.
* :mod:`~repro.harness.hashing` — canonical JSON hashing; every task has
  a stable content address incorporating a code-version salt.
* :mod:`~repro.harness.cache` — a content-addressed on-disk run cache
  keyed by those hashes, so a sweep is only ever computed once.
* :mod:`~repro.harness.store` — an append-only JSONL result store with a
  query/aggregation API that experiments and benchmarks read back.
* :mod:`~repro.harness.campaign` — the orchestrator: expand, consult the
  cache, shard misses across worker processes, emit records in
  deterministic task order.
* :mod:`~repro.harness.progress` — terminal progress reporting.

Quickstart::

    from repro.harness import CampaignSpec, run_campaign

    spec = CampaignSpec.from_dict({
        "name": "apsp-sweep",
        "graphs": ["path:{n}", "torus:6x6"],
        "sizes": [20, 40],
        "seeds": [0, 1],
        "algorithms": ["apsp"],
    })
    summary = run_campaign(spec, jobs=4, cache_dir=".repro-cache")
    for record in summary.records:
        print(record["task"]["graph"], record["metrics"]["rounds"])

See ``docs/harness.md`` for the spec format and cache layout.
"""

from .cache import RunCache
from .campaign import CampaignSummary, run_campaign, run_tasks
from .hashing import CODE_VERSION, canonical_json, task_key
from .progress import ProgressReporter
from .runner import available_algorithms, execute_task
from .spec import CampaignSpec, SpecError, Task, expand_spec, load_spec
from .store import ResultStore, strip_timing

__all__ = [
    "CODE_VERSION",
    "CampaignSpec",
    "CampaignSummary",
    "ProgressReporter",
    "ResultStore",
    "RunCache",
    "SpecError",
    "Task",
    "available_algorithms",
    "canonical_json",
    "execute_task",
    "expand_spec",
    "load_spec",
    "run_campaign",
    "run_tasks",
    "strip_timing",
    "task_key",
]
