"""Campaign orchestration: expand → cache-check → shard → record.

The driver turns a sweep spec into tasks, serves whatever it can from
the content-addressed :class:`~repro.harness.cache.RunCache`, shards
the remaining tasks across worker processes, and emits records **in
task order** — the output is deterministic regardless of worker count
or completion interleaving.  Per-task seeding is deterministic too:
the simulator seed is part of the task itself, never derived from
worker identity or scheduling.

Every record carries the task's content ``key`` plus a ``timing`` block
(``elapsed_s``, ``cache_hit``) which is the *only* non-deterministic
part; :func:`repro.harness.store.strip_timing` removes it for
comparisons.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .cache import RunCache
from .progress import ProgressReporter
from .runner import execute_task
from .spec import CampaignSpec, Task
from .store import ResultStore


@dataclass
class CampaignSummary:
    """Outcome of one campaign invocation."""

    name: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    failures: int = 0
    elapsed_s: float = 0.0

    @property
    def total(self) -> int:
        """How many tasks the campaign covered."""
        return len(self.records)

    @property
    def hit_rate(self) -> float:
        """Fraction of tasks served from the run cache."""
        return self.cache_hits / self.total if self.total else 0.0

    def describe(self) -> str:
        """One-line human summary (the CLI's closing line)."""
        parts = [
            f"campaign '{self.name}': {self.total} tasks",
            f"{self.cache_hits} from cache ({self.hit_rate:.0%})",
            f"{self.executed} executed",
        ]
        if self.failures:
            parts.append(f"{self.failures} FAILED")
        parts.append(f"{self.elapsed_s:.2f}s")
        return " · ".join(parts)


def _finalize(
    record: Dict[str, Any],
    key: str,
    *,
    elapsed_s: float,
    cache_hit: bool,
) -> Dict[str, Any]:
    """Attach the content key and the (non-deterministic) timing block."""
    out = dict(record)
    out["key"] = key
    out["timing"] = {
        "elapsed_s": round(elapsed_s, 6),
        "cache_hit": cache_hit,
    }
    return out


def _execute_indexed(
    job: Tuple[int, Task],
) -> Tuple[int, Optional[Dict[str, Any]], Optional[Dict[str, str]], float]:
    """Worker entry point: run one task, never raise.

    Returns ``(index, record, error, elapsed_s)`` with exactly one of
    ``record``/``error`` set, so a bad task fails its own record instead
    of poisoning the pool.
    """
    index, task = job
    started = time.perf_counter()
    try:
        record = execute_task(task)
    except Exception as exc:  # noqa: BLE001 — reported per-task
        error = {"type": type(exc).__name__, "message": str(exc)}
        return index, None, error, time.perf_counter() - started
    return index, record, None, time.perf_counter() - started


def _init_worker(path_entries: List[str]) -> None:
    """Mirror the parent's ``sys.path`` (matters under spawn start)."""
    for entry in path_entries:
        if entry not in sys.path:
            sys.path.append(entry)


def _pool_context():
    """Prefer fork (fast, inherits imports); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_tasks(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    salt: str = "",
    name: str = "campaign",
    progress: Optional[ProgressReporter] = None,
    store: Optional[ResultStore] = None,
) -> CampaignSummary:
    """Execute ``tasks``, reusing cached runs; records come back in order.

    ``cache`` (or ``cache_dir``) enables the content-addressed run
    cache; ``use_cache=False`` forces recomputation while still
    *writing* fresh entries, so a once-suspect cache heals itself.
    ``store`` receives every record (in task order) when given.
    """
    started = time.perf_counter()
    if cache is None and cache_dir is not None:
        cache = RunCache(cache_dir)
    summary = CampaignSummary(name=name)
    keys = [task.key(salt=salt) for task in tasks]
    slots: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    pending: List[int] = []

    for index, (task, key) in enumerate(zip(tasks, keys)):
        cached = cache.get(key) if (cache and use_cache) else None
        if cached is not None and cached.get("task") == task.payload():
            slots[index] = _finalize(
                cached, key, elapsed_s=0.0, cache_hit=True
            )
            summary.cache_hits += 1
            if progress:
                progress.task_done(cache_hit=True)
        else:
            pending.append(index)

    def settle(index: int, record, error, elapsed: float) -> None:
        key = keys[index]
        if error is not None:
            slots[index] = _finalize(
                {"task": tasks[index].payload(), "error": error},
                key, elapsed_s=elapsed, cache_hit=False,
            )
            summary.failures += 1
        else:
            if cache is not None:
                cache.put(key, record)
            slots[index] = _finalize(
                record, key, elapsed_s=elapsed, cache_hit=False
            )
        summary.executed += 1
        if progress:
            progress.task_done(cache_hit=False, failed=error is not None)

    workers = min(max(1, jobs), max(1, len(pending)))
    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            settle(*_execute_indexed((index, tasks[index])))
    else:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(list(sys.path),),
        ) as pool:
            futures = {
                pool.submit(_execute_indexed, (index, tasks[index]))
                for index in pending
            }
            while futures:
                finished, futures = wait(
                    futures, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    settle(*future.result())

    summary.records = [slot for slot in slots if slot is not None]
    summary.elapsed_s = time.perf_counter() - started
    if progress:
        progress.close()
    if store is not None:
        store.extend(summary.records)
    return summary


def run_campaign(
    spec: "CampaignSpec | Dict[str, Any]",
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    store_path=None,
    append: bool = False,
    show_progress: bool = False,
    progress_stream=None,
) -> CampaignSummary:
    """Expand a sweep spec and run it end to end.

    When ``store_path`` is given the records land there as JSONL;
    unless ``append`` is set the store is truncated first so repeated
    invocations stay byte-comparable.
    """
    if not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    tasks = spec.expand()
    store = None
    if store_path is not None:
        store = ResultStore(store_path)
        if not append:
            store.truncate()
    progress = None
    if show_progress:
        progress = ProgressReporter(
            len(tasks), label=spec.name, stream=progress_stream
        )
    return run_tasks(
        tasks,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        salt=spec.salt,
        name=spec.name,
        progress=progress,
        store=store,
    )
