"""Campaign orchestration: expand → cache-check → shard → record.

The driver turns a sweep spec into tasks, serves whatever it can from
the content-addressed :class:`~repro.harness.cache.RunCache`, shards
the remaining tasks across worker processes, and emits records **in
task order** — the output is deterministic regardless of worker count
or completion interleaving.  Per-task seeding is deterministic too:
the simulator seed is part of the task itself, never derived from
worker identity or scheduling.

Execution is hardened against hostile tasks (docs/harness.md):

* a per-task wall-clock **timeout** kills overdue workers and records a
  ``Timeout`` error instead of hanging the campaign;
* a worker process dying (segfault, ``os._exit``, OOM-kill) is
  contained: the pool is respawned and only the in-flight tasks are
  affected, each recorded as ``WorkerCrashed`` — never the whole run;
* **transient** failures (timeouts, worker death) are retried up to
  ``retries`` times with exponential backoff; deterministic in-task
  exceptions are *not* retried — rerunning them cannot help;
* ``max_failures`` / ``fail_fast`` stop scheduling new tasks once the
  failure budget is spent; unscheduled tasks get ``Skipped`` records.

Every record carries the task's content ``key`` plus a ``timing`` block
(``elapsed_s``, ``cache_hit``) which is the *only* non-deterministic
part; :func:`repro.harness.store.strip_timing` removes it for
comparisons.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from .cache import RunCache
from .progress import ProgressReporter
from .runner import execute_task
from .spec import CampaignSpec, Task
from .store import ResultStore

#: Error records keep at most this much traceback text (the tail).
_TRACEBACK_CHARS = 4000


@dataclass
class CampaignSummary:
    """Outcome of one campaign invocation."""

    name: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    failures: int = 0
    retried: int = 0
    skipped: int = 0
    elapsed_s: float = 0.0

    @property
    def total(self) -> int:
        """How many tasks the campaign covered."""
        return len(self.records)

    @property
    def hit_rate(self) -> float:
        """Fraction of tasks served from the run cache."""
        return self.cache_hits / self.total if self.total else 0.0

    def describe(self) -> str:
        """One-line human summary (the CLI's closing line)."""
        parts = [
            f"campaign '{self.name}': {self.total} tasks",
            f"{self.cache_hits} from cache ({self.hit_rate:.0%})",
            f"{self.executed} executed",
        ]
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.failures:
            parts.append(f"{self.failures} FAILED")
        if self.skipped:
            parts.append(f"{self.skipped} skipped")
        parts.append(f"{self.elapsed_s:.2f}s")
        return " · ".join(parts)


def _finalize(
    record: Dict[str, Any],
    key: str,
    *,
    elapsed_s: float,
    cache_hit: bool,
) -> Dict[str, Any]:
    """Attach the content key and the (non-deterministic) timing block."""
    out = dict(record)
    out["key"] = key
    out["timing"] = {
        "elapsed_s": round(elapsed_s, 6),
        "cache_hit": cache_hit,
    }
    return out


def _truncated_traceback() -> str:
    """The current exception's traceback, truncated to the tail.

    The tail keeps the innermost frames — the ones that say where the
    task actually blew up — while bounding record size.
    """
    text = traceback.format_exc().strip()
    if len(text) > _TRACEBACK_CHARS:
        text = "... (truncated)\n" + text[-_TRACEBACK_CHARS:]
    return text


def _execute_indexed(
    job: Tuple[int, Task],
) -> Tuple[int, Optional[Dict[str, Any]], Optional[Dict[str, str]], float]:
    """Worker entry point: run one task, never raise.

    Returns ``(index, record, error, elapsed_s)`` with exactly one of
    ``record``/``error`` set, so a bad task fails its own record instead
    of poisoning the pool.  Errors carry the (truncated) traceback so a
    failed campaign is debuggable from its JSONL store alone.
    """
    index, task = job
    started = time.perf_counter()
    try:
        record = execute_task(task)
    except Exception as exc:  # noqa: BLE001 — reported per-task
        error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": _truncated_traceback(),
        }
        return index, None, error, time.perf_counter() - started
    return index, record, None, time.perf_counter() - started


def _init_worker(path_entries: List[str]) -> None:
    """Mirror the parent's ``sys.path`` (matters under spawn start)."""
    for entry in path_entries:
        if entry not in sys.path:
            sys.path.append(entry)


def _pool_context():
    """Prefer fork (fast, inherits imports); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly stop a pool, killing workers that ignore shutdown.

    Used when a task overruns its timeout (the stuck worker would
    otherwise run forever) and when abandoning a broken pool.  SIGTERM
    first, escalating to SIGKILL for workers that ignore it.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for proc in processes:
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)


def run_tasks(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    salt: str = "",
    name: str = "campaign",
    progress: Optional[ProgressReporter] = None,
    store: Optional[ResultStore] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.5,
    max_failures: Optional[int] = None,
    fail_fast: bool = False,
) -> CampaignSummary:
    """Execute ``tasks``, reusing cached runs; records come back in order.

    ``cache`` (or ``cache_dir``) enables the content-addressed run
    cache; ``use_cache=False`` forces recomputation while still
    *writing* fresh entries, so a once-suspect cache heals itself.
    ``store`` receives every record (in task order) when given.

    Hardening knobs (see the module docstring): ``timeout_s`` bounds
    each task's wall clock (forces pool execution even with one
    worker, so the overdue worker can be killed); ``retries`` reruns
    transient failures with ``backoff_s * 2**attempt`` pauses;
    ``max_failures`` / ``fail_fast`` cap how many failures the
    campaign tolerates before skipping the rest.
    """
    started = time.perf_counter()
    if cache is None and cache_dir is not None:
        cache = RunCache(cache_dir)
    summary = CampaignSummary(name=name)
    keys = [task.key(salt=salt) for task in tasks]
    slots: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    pending: List[int] = []

    for index, (task, key) in enumerate(zip(tasks, keys)):
        cached = cache.get(key) if (cache and use_cache) else None
        if cached is not None and cached.get("task") == task.payload():
            slots[index] = _finalize(
                cached, key, elapsed_s=0.0, cache_hit=True
            )
            summary.cache_hits += 1
            if progress:
                progress.task_done(cache_hit=True)
        else:
            pending.append(index)

    def settle(index: int, record, error, elapsed: float) -> None:
        key = keys[index]
        if error is not None:
            slots[index] = _finalize(
                {"task": tasks[index].payload(), "error": error},
                key, elapsed_s=elapsed, cache_hit=False,
            )
            summary.failures += 1
        else:
            if cache is not None:
                cache.put(key, record)
            slots[index] = _finalize(
                record, key, elapsed_s=elapsed, cache_hit=False
            )
        summary.executed += 1
        if progress:
            progress.task_done(cache_hit=False, failed=error is not None)

    def skip(index: int) -> None:
        slots[index] = _finalize(
            {
                "task": tasks[index].payload(),
                "error": {
                    "type": "Skipped",
                    "message": "not run: campaign failure limit reached",
                },
            },
            keys[index], elapsed_s=0.0, cache_hit=False,
        )
        summary.skipped += 1
        if progress:
            progress.task_done(cache_hit=False)

    failure_limit = 1 if fail_fast else max_failures
    workers = min(max(1, jobs), max(1, len(pending)))
    # The in-process fast path cannot kill overdue tasks, survive a
    # crashing task, or retry a dead worker — any hardening knob (or
    # more than one worker) forces pool execution.
    needs_pool = bool(pending) and (
        jobs > 1 or timeout_s is not None or retries > 0
    )
    if not needs_pool:
        for index in pending:
            if failure_limit is not None and summary.failures >= failure_limit:
                skip(index)
                continue
            settle(*_execute_indexed((index, tasks[index])))
    else:
        _run_pool(
            tasks, pending, settle, skip,
            workers=workers,
            timeout_s=timeout_s,
            retries=max(0, retries),
            backoff_s=max(0.0, backoff_s),
            failure_limit=failure_limit,
            summary=summary,
        )

    summary.records = [slot for slot in slots if slot is not None]
    summary.elapsed_s = time.perf_counter() - started
    if progress:
        progress.close()
    if store is not None:
        store.extend(summary.records)
    return summary


def _run_pool(
    tasks: Sequence[Task],
    pending: Sequence[int],
    settle,
    skip,
    *,
    workers: int,
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
    failure_limit: Optional[int],
    summary: CampaignSummary,
) -> None:
    """The hardened parallel execution loop (see module docstring).

    Keeps at most ``workers`` futures in flight so a timeout or crash
    only ever disturbs that many tasks; tracks a wall-clock deadline
    per future; and survives both overdue tasks (pool killed and
    respawned, overdue task marked ``Timeout``) and broken pools.
    Transient failures re-enter the queue until their retry budget runs
    out; tasks merely *displaced* by a pool kill or a sibling's crash
    are resubmitted without consuming an attempt.

    Crash blame is isolated: when a worker dies the executor cannot
    say *which* in-flight task killed it, so nobody is charged — every
    implicated task becomes a *suspect* and re-runs alone.  A suspect
    that crashes solo is definitely the culprit (``WorkerCrashed``,
    one attempt consumed); a suspect that completes solo is exonerated
    and normal parallelism resumes.
    """
    queue: Deque[Tuple[int, int]] = deque((i, 0) for i in pending)
    #: future -> (task index, attempt number, absolute deadline or None)
    inflight: Dict[Any, Tuple[int, int, Optional[float]]] = {}
    #: task indices implicated in a pool breakage; they run solo.
    suspects: set = set()

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(list(sys.path),),
        )

    def transient_failure(
        index: int, attempt: int, kind: str, message: str, elapsed: float
    ) -> None:
        """Retry a timeout/crash, or settle its error record when spent."""
        if attempt < retries:
            summary.retried += 1
            delay = backoff_s * (2 ** attempt)
            if delay > 0:
                time.sleep(delay)
            queue.append((index, attempt + 1))
        else:
            settle(
                index, None,
                {
                    "type": kind,
                    "message": message,
                    "attempts": attempt + 1,
                },
                elapsed,
            )

    def drain_unsettled() -> List[Tuple[int, int]]:
        """Salvage finished in-flight futures; return the rest.

        Called when the pool is about to be killed or is already
        broken: futures that completed keep their results, the rest
        come back as ``(index, attempt)`` pairs for the caller to
        requeue — without consuming a retry attempt.
        """
        leftover: List[Tuple[int, int]] = []
        for future, (index, attempt, _) in list(inflight.items()):
            outcome = None
            if future.done():
                try:
                    outcome = future.result(timeout=0)
                except Exception:  # noqa: BLE001 — broken/cancelled
                    outcome = None
            if outcome is not None:
                suspects.discard(index)
                settle(*outcome)
            else:
                leftover.append((index, attempt))
        inflight.clear()
        return leftover

    pool = make_pool()
    try:
        while queue or inflight:
            if (
                failure_limit is not None
                and summary.failures >= failure_limit
            ):
                while queue:
                    skip(queue.popleft()[0])
                if not inflight:
                    break
            solo_running = any(
                idx in suspects for (idx, _, _) in inflight.values()
            )
            while queue and len(inflight) < workers and not solo_running:
                if (
                    failure_limit is not None
                    and summary.failures >= failure_limit
                ):
                    break
                index, attempt = queue[0]
                if index in suspects and inflight:
                    break  # wait for the lanes to clear first
                queue.popleft()
                future = pool.submit(
                    _execute_indexed, (index, tasks[index])
                )
                deadline = (
                    time.monotonic() + timeout_s
                    if timeout_s is not None else None
                )
                inflight[future] = (index, attempt, deadline)
                if index in suspects:
                    break  # run the suspect alone
            if not inflight:
                continue

            wait_s = None
            if timeout_s is not None:
                now = time.monotonic()
                wait_s = max(
                    0.0,
                    min(d for (_, _, d) in inflight.values()) - now,
                )
            done, _ = wait(
                set(inflight), timeout=wait_s,
                return_when=FIRST_COMPLETED,
            )

            broken = False
            casualties: List[Tuple[int, int]] = []
            for future in done:
                index, attempt, _ = inflight.pop(future)
                try:
                    outcome = future.result()
                except BrokenExecutor:
                    broken = True
                    casualties.append((index, attempt))
                    continue
                suspects.discard(index)
                settle(*outcome)

            if broken:
                # Every remaining future on a broken pool fails too;
                # salvage what finished, then apportion blame: a task
                # that was running *alone* is definitely the culprit,
                # otherwise all implicated tasks become suspects and
                # re-run solo (no attempt consumed) on a fresh pool.
                casualties.extend(drain_unsettled())
                if len(casualties) == 1:
                    index, attempt = casualties[0]
                    suspects.add(index)  # keep any retry solo too
                    transient_failure(
                        index, attempt, "WorkerCrashed",
                        "the worker process running this task died "
                        "unexpectedly",
                        0.0,
                    )
                else:
                    for index, attempt in casualties:
                        suspects.add(index)
                        queue.appendleft((index, attempt))
                _terminate_pool(pool)
                pool = make_pool()
                continue

            if timeout_s is not None:
                now = time.monotonic()
                overdue = [
                    future
                    for future, (_, _, deadline) in inflight.items()
                    if deadline is not None and deadline <= now
                    and not future.done()
                ]
                if overdue:
                    # There is no portable way to kill one worker, so
                    # kill the pool; tasks merely displaced by the kill
                    # are resubmitted without consuming an attempt.
                    for future in overdue:
                        index, attempt, _ = inflight.pop(future)
                        transient_failure(
                            index, attempt, "Timeout",
                            f"task exceeded the {timeout_s:g}s "
                            f"wall-clock limit",
                            timeout_s,
                        )
                    for index, attempt in drain_unsettled():
                        queue.appendleft((index, attempt))
                    _terminate_pool(pool)
                    pool = make_pool()
    finally:
        _terminate_pool(pool)


def run_campaign(
    spec: "CampaignSpec | Dict[str, Any]",
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    store_path=None,
    append: bool = False,
    show_progress: bool = False,
    progress_stream=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.5,
    max_failures: Optional[int] = None,
    fail_fast: bool = False,
) -> CampaignSummary:
    """Expand a sweep spec and run it end to end.

    When ``store_path`` is given the records land there as JSONL;
    unless ``append`` is set the store is truncated first so repeated
    invocations stay byte-comparable.  The hardening knobs
    (``timeout_s``, ``retries``, ``backoff_s``, ``max_failures``,
    ``fail_fast``) pass straight through to :func:`run_tasks`.
    """
    if not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    tasks = spec.expand()
    store = None
    if store_path is not None:
        store = ResultStore(store_path)
        if not append:
            store.truncate()
    progress = None
    if show_progress:
        progress = ProgressReporter(
            len(tasks), label=spec.name, stream=progress_stream
        )
    return run_tasks(
        tasks,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        salt=spec.salt,
        name=spec.name,
        progress=progress,
        store=store,
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
        max_failures=max_failures,
        fail_fast=fail_fast,
    )
