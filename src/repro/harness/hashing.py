"""Stable content hashing for run tasks.

A task's *content address* is the SHA-256 of its canonical JSON
rendering plus a code-version salt.  Canonical means: sorted keys, no
insignificant whitespace, and no reliance on dict insertion order — two
semantically identical tasks hash identically regardless of how their
payload dicts were built, in which process, or on which platform.

The salt exists because cached records embed *outputs* (round counts,
bit totals).  Whenever an algorithm or the simulator changes observable
behaviour, bump :data:`CODE_VERSION`; every existing cache entry then
misses and is transparently recomputed.  Sweep specs can add their own
``salt`` on top (e.g. to segregate scratch experiments).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

#: Invalidation salt for the run cache.  Bump on any change that can
#: alter the outputs of a simulation (round counts, metrics, results).
CODE_VERSION = "hw12-harness-1"


def canonical_json(payload: Any) -> str:
    """Render ``payload`` as canonical JSON (sorted keys, tight format).

    ``allow_nan`` stays on: girth records legitimately carry
    ``Infinity`` for acyclic graphs, and Python's reader round-trips it.
    """
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )


def content_hash(payload: Any) -> str:
    """Hex SHA-256 of the canonical JSON rendering of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()


def task_key(task_payload: Mapping[str, Any], *, salt: str = "") -> str:
    """Content address of one run task.

    ``task_payload`` is the deterministic task description (graph spec,
    algorithm, params); the key folds in :data:`CODE_VERSION` and any
    campaign-level ``salt``.
    """
    return content_hash(
        {
            "code_version": CODE_VERSION,
            "salt": salt,
            "task": task_payload,
        }
    )
