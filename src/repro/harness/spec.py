"""Declarative sweep specs and their expansion into run tasks.

A campaign is a cartesian sweep::

    graph family × size × seed × algorithm × bandwidth policy

declared as a plain dict (or JSON file) and expanded into an ordered
list of independent :class:`Task` descriptors.  Tasks are pure data —
a graph spec string, an algorithm name, a params dict — so they can be
hashed for the run cache, pickled to worker processes, and replayed
bit-for-bit later.

Spec format (all axes optional except ``graphs``)::

    {
      "name": "apsp-sweep",            // campaign label
      "graphs": ["path:{n}", "torus:6x6"],
      "sizes": [30, 60, 90],           // fills the {n} placeholder
      "seeds": [0, 1, 2],              // per-task simulator seed
      "algorithms": ["approx", "girth-approx"],
      "policies": ["strict"],          // bandwidth policy axis
      "params": {"epsilon": 0.5},      // extra args for every task;
                                       // validated at expansion against
                                       // each algorithm's schema
      "salt": "",                      // extra cache-key salt
      "faults": {"drop_rate": 0.02}    // optional fault injection
    }

Graph entries without a ``{n}`` placeholder name a fixed topology and
appear once, not once per size.  Expansion order is deterministic:
algorithms × graphs × sizes × seeds × policies, in the order written.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..graphs import specs as graph_specs
from .hashing import task_key


class SpecError(ValueError):
    """A campaign spec is malformed."""


def _normalize_faults(value: Any) -> Optional[Dict[str, Any]]:
    """Validate a spec-level fault description, canonicalized.

    Accepts ``None``, a :class:`~repro.congest.faults.FaultSpec`, or a
    plain mapping in ``FaultSpec.to_dict`` form.  Returns the canonical
    dict form (so cache keys are independent of how the faults were
    spelled), or ``None`` for no-op fault specs — a campaign with
    ``{"drop_rate": 0}`` keys identically to one with no faults at all.
    """
    if value is None:
        return None
    from ..congest.faults import FaultSpec

    try:
        spec = (
            value if isinstance(value, FaultSpec)
            else FaultSpec.from_dict(value)
        )
    except (TypeError, ValueError) as exc:
        raise SpecError(f"bad 'faults' spec: {exc}")
    return None if spec.is_noop else spec.to_dict()


def _normalize_backend(
    value: Any, *, faults: Any, trace: bool
) -> str:
    """Validate a spec-level backend choice against the environment.

    Rejecting ``"vector"`` here — unknown name, numpy missing, or a
    combination the vector engine cannot honor (faults, tracing) —
    means a bad campaign dies with one actionable :class:`SpecError`
    before any worker spawns, instead of n failing tasks.
    """
    from ..protocols.params import BACKENDS

    backend = str(value)
    if backend not in BACKENDS:
        raise SpecError(
            f"unknown backend {backend!r}; expected one of {list(BACKENDS)}"
        )
    if backend == "vector":
        from ..vector import HAS_NUMPY, INSTALL_EXTRA

        if not HAS_NUMPY:
            raise SpecError(
                f"backend 'vector' requires numpy; install the "
                f"'{INSTALL_EXTRA}' extra "
                f"(pip install \"repro[{INSTALL_EXTRA}]\") "
                f"or drop the backend field"
            )
        if faults is not None:
            raise SpecError(
                "backend 'vector' does not support fault injection; "
                "use the object backend for faulty campaigns"
            )
        if trace:
            raise SpecError(
                "backend 'vector' does not support trace capture; "
                "use the object backend for traced campaigns"
            )
    return backend


def _freeze(value: Any) -> Any:
    """Recursively convert a params value into a hashable constant."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` back into JSON-pure types."""
    if isinstance(value, tuple):
        if value and all(
            isinstance(item, tuple) and len(item) == 2
            and isinstance(item[0], str)
            for item in value
        ):
            return {k: _thaw(v) for k, v in value}
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class Task:
    """One independent unit of work: run ``algorithm`` on ``graph``.

    ``params`` is stored frozen (sorted key/value tuples) so tasks are
    hashable and safely deduplicated; use :meth:`param_dict` to read it.
    """

    graph: str
    algorithm: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        graph: str,
        algorithm: str,
        params: Optional[Mapping[str, Any]] = None,
    ) -> "Task":
        """Build a task from a plain params mapping."""
        frozen = tuple(
            sorted((k, _freeze(v)) for k, v in (params or {}).items())
        )
        return cls(graph=graph, algorithm=algorithm, params=frozen)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Task":
        """Build a task from its :meth:`payload` form."""
        try:
            return cls.make(
                data["graph"], data["algorithm"], data.get("params")
            )
        except KeyError as exc:
            raise SpecError(f"task dict missing field {exc}")

    def param_dict(self) -> Dict[str, Any]:
        """The params as a plain (JSON-pure) dict."""
        return {k: _thaw(v) for k, v in self.params}

    def payload(self) -> Dict[str, Any]:
        """Deterministic JSON-pure description (the cache-key input)."""
        return {
            "graph": self.graph,
            "algorithm": self.algorithm,
            "params": self.param_dict(),
        }

    def key(self, *, salt: str = "") -> str:
        """Content address of this task (see :mod:`.hashing`)."""
        return task_key(self.payload(), salt=salt)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep over the task axes (see module docstring)."""

    name: str = "campaign"
    graphs: Sequence[str] = ()
    sizes: Sequence[int] = ()
    seeds: Sequence[int] = (0,)
    algorithms: Sequence[str] = ("apsp",)
    policies: Sequence[str] = ("strict",)
    params: Mapping[str, Any] = field(default_factory=dict)
    salt: str = ""
    #: Canonical fault-injection dict applied to every task, or None.
    faults: Optional[Mapping[str, Any]] = None
    #: Record a repro-trace/1 summary per task (docs/observability.md).
    trace: bool = False
    #: Which engine runs every task: "object" (default) or "vector".
    #: Only ``"vector"`` is written into task params, so object-backend
    #: cache keys are unchanged from before the field existed.
    backend: str = "object"

    _FIELDS = (
        "name", "graphs", "sizes", "seeds", "algorithms", "policies",
        "params", "salt", "faults", "trace", "backend",
    )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Validate and build a spec from a plain dict."""
        unknown = set(data) - set(cls._FIELDS)
        if unknown:
            raise SpecError(
                f"unknown spec fields {sorted(unknown)}; "
                f"expected a subset of {list(cls._FIELDS)}"
            )
        graphs = list(data.get("graphs", ()))
        if not graphs:
            raise SpecError("spec needs a non-empty 'graphs' list")
        sizes = [int(n) for n in data.get("sizes", ())]
        needs_sizes = any(
            graph_specs.has_size_placeholder(g) for g in graphs
        )
        if needs_sizes and not sizes:
            raise SpecError(
                "spec uses a {n} placeholder but provides no 'sizes'"
            )
        seeds = [int(s) for s in data.get("seeds", (0,))]
        if not seeds:
            raise SpecError("'seeds' must not be empty")
        params = dict(data.get("params", {}))
        for reserved in ("seed", "policy"):
            if reserved in params:
                raise SpecError(
                    f"'{reserved}' is a sweep axis, not a shared param"
                )
        if "trace" in params:
            raise SpecError(
                "'trace' is a top-level spec field, not a shared param"
            )
        faults = _normalize_faults(data.get("faults"))
        if faults is not None and "faults" in params:
            raise SpecError(
                "give 'faults' either top-level or inside params, not both"
            )
        backend = _normalize_backend(
            data.get("backend", "object"),
            faults=faults,
            trace=bool(data.get("trace", False)),
        )
        if "backend" in params:
            raise SpecError(
                "'backend' is a top-level spec field, not a shared param"
            )
        algorithms = list(data.get("algorithms", ("apsp",)))
        if not algorithms:
            raise SpecError("'algorithms' must not be empty")
        from ..protocols import names as protocol_names

        unknown_algorithms = [
            a for a in algorithms if a not in protocol_names()
        ]
        if unknown_algorithms:
            raise SpecError(
                f"unknown algorithm(s) {unknown_algorithms}; "
                f"available: {protocol_names()}"
            )
        return cls(
            name=str(data.get("name", "campaign")),
            graphs=graphs,
            sizes=sizes,
            seeds=seeds,
            algorithms=algorithms,
            policies=list(data.get("policies", ("strict",))),
            params=params,
            salt=str(data.get("salt", "")),
            faults=faults,
            trace=bool(data.get("trace", False)),
            backend=backend,
        )

    def with_trace(self, trace: bool = True) -> "CampaignSpec":
        """A copy of this spec with per-task trace capture toggled.

        Traced tasks carry ``trace: true`` in their params — part of the
        cache key, so traced and untraced sweeps never share records —
        and their stored records gain a deterministic ``trace`` summary
        (the :meth:`repro.obs.session.Trace.summary_dict` digest).
        """
        if trace and self.backend == "vector":
            raise SpecError(
                "backend 'vector' does not support trace capture; "
                "use the object backend for traced campaigns"
            )
        return replace(self, trace=bool(trace))

    def with_faults(self, faults: Any) -> "CampaignSpec":
        """A copy of this spec with fault injection applied everywhere.

        ``faults`` is validated and canonicalized exactly as the
        ``"faults"`` spec field would be (the CLI's ``--faults`` flag
        routes through here).
        """
        return replace(self, faults=_normalize_faults(faults))

    def with_backend(self, backend: str) -> "CampaignSpec":
        """A copy of this spec running every task on ``backend``.

        Validated exactly as the ``"backend"`` spec field would be (the
        CLI's ``--backend`` flag routes through here).
        """
        return replace(
            self,
            backend=_normalize_backend(
                backend, faults=self.faults, trace=self.trace
            ),
        )

    def expand(self) -> List[Task]:
        """Expand the sweep into its ordered, deduplicated task list.

        Every expanded task's parameters are validated against the
        algorithm's registered schema (:mod:`repro.protocols`), so a
        malformed campaign — bad sources, negative ``k``, unknown keys
        — is rejected here with an actionable :class:`SpecError`,
        before any worker process spawns.  Validation never mutates
        the tasks themselves: stored params (and hence cache keys)
        stay exactly as written.
        """
        from ..protocols import TaskError, get as get_protocol

        tasks: List[Task] = []
        seen = set()
        for algorithm in self.algorithms:
            for template in self.graphs:
                if graph_specs.has_size_placeholder(template):
                    concrete = [
                        graph_specs.substitute_size(template, n)
                        for n in self.sizes
                    ]
                else:
                    concrete = [template]
                for graph in concrete:
                    for seed in self.seeds:
                        for policy in self.policies:
                            task_params = {
                                **self.params,
                                "seed": seed,
                                "policy": policy,
                            }
                            if self.faults is not None:
                                task_params["faults"] = self.faults
                            if self.trace:
                                task_params["trace"] = True
                            if self.backend != "object":
                                task_params["backend"] = self.backend
                            task = Task.make(graph, algorithm, task_params)
                            if task not in seen:
                                try:
                                    get_protocol(algorithm).check_params(
                                        task.param_dict()
                                    )
                                except TaskError as exc:
                                    raise SpecError(
                                        f"invalid params for {algorithm!r}"
                                        f" on {graph!r}: {exc}"
                                    )
                                seen.add(task)
                                tasks.append(task)
        return tasks


def expand_spec(spec: "CampaignSpec | Mapping[str, Any]") -> List[Task]:
    """Expand a spec (object or dict) into its task list."""
    if not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    return spec.expand()


def load_spec(path) -> CampaignSpec:
    """Load a campaign spec from a JSON file."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: not valid JSON ({exc})")
    if not isinstance(data, dict):
        raise SpecError(f"{path}: spec must be a JSON object")
    return CampaignSpec.from_dict(data)
