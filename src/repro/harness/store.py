"""JSONL result store: append-only records plus a query/aggregation API.

Each line is one campaign record in canonical JSON (sorted keys, tight
separators), so two stores produced from the same tasks are comparable
with plain ``diff`` once the non-deterministic ``timing`` block is
stripped (:func:`strip_timing`).  The experiments framework and the
benchmark suite read measurements back from here instead of re-running
simulations.

Field paths use dotted notation into the nested record, e.g.
``"task.algorithm"``, ``"graph.n"``, ``"metrics.rounds"``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

from .hashing import canonical_json

#: Record fields that may differ between otherwise identical runs.
TIMING_FIELDS = ("timing",)


def strip_timing(record: Mapping[str, Any]) -> Dict[str, Any]:
    """A copy of ``record`` without its non-deterministic fields."""
    return {k: v for k, v in record.items() if k not in TIMING_FIELDS}


def lookup(record: Mapping[str, Any], path: str, default: Any = None) -> Any:
    """Resolve a dotted field path (``"metrics.rounds"``) in a record."""
    value: Any = record
    for part in path.split("."):
        if not isinstance(value, Mapping) or part not in value:
            return default
        value = value[part]
    return value


_AGGREGATES: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda xs: sum(xs) / len(xs),
    "min": min,
    "max": max,
    "sum": sum,
    "count": len,
}


class ResultStore:
    """An append-only JSONL file of campaign records."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    # -- writing -----------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one record as a canonical JSON line."""
        self.extend([record])

    def extend(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Append many records; returns how many were written."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        written = 0
        with self.path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(canonical_json(dict(record)) + "\n")
                written += 1
        return written

    def truncate(self) -> None:
        """Reset the store to empty (fresh campaign output)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("", encoding="utf-8")

    # -- reading -----------------------------------------------------------

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        if not self.path.is_file():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError as exc:
                    raise ValueError(
                        f"{self.path}:{line_no}: corrupt JSONL line ({exc})"
                    )

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def records(
        self,
        *,
        where: Optional[Callable[[Dict[str, Any]], bool]] = None,
        **field_filters: Any,
    ) -> List[Dict[str, Any]]:
        """Records matching every filter.

        ``field_filters`` map dotted paths (with ``.`` spelled ``__``
        for keyword-argument friendliness, e.g. ``task__algorithm``)
        to required values; ``where`` is an arbitrary predicate.
        """
        paths = {
            name.replace("__", "."): wanted
            for name, wanted in field_filters.items()
        }
        matched = []
        for record in self:
            if any(
                lookup(record, path) != wanted
                for path, wanted in paths.items()
            ):
                continue
            if where is not None and not where(record):
                continue
            matched.append(record)
        return matched

    def values(self, path: str, **field_filters: Any) -> List[Any]:
        """The ``path`` field of every matching record, in file order."""
        return [
            lookup(record, path)
            for record in self.records(**field_filters)
        ]

    def aggregate(
        self,
        group_by: str,
        value: str,
        agg: str = "mean",
        **field_filters: Any,
    ) -> Dict[Any, float]:
        """Group matching records and aggregate a numeric field.

        Example: mean rounds per graph size for one algorithm::

            store.aggregate("graph.n", "metrics.rounds",
                            task__algorithm="apsp")
        """
        try:
            fold = _AGGREGATES[agg]
        except KeyError:
            raise ValueError(
                f"unknown aggregate {agg!r}; "
                f"expected one of {sorted(_AGGREGATES)}"
            )
        groups: Dict[Any, List[float]] = {}
        for record in self.records(**field_filters):
            group = lookup(record, group_by)
            sample = lookup(record, value)
            if sample is None:
                continue
            groups.setdefault(group, []).append(sample)
        return {group: fold(samples) for group, samples in groups.items()}
