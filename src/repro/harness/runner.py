"""Per-task execution: algorithm name → registered protocol.

:func:`execute_task` is the function worker processes run.  It parses
the task's graph spec, dispatches through the
:mod:`repro.protocols` registry, and returns a *deterministic* record
— JSON-pure, independent of wall-clock, worker identity, process
memory layout, and cache state — so that a cache hit and a fresh
computation yield byte-identical stored records.

Record shape::

    {
      "task":    {"graph": ..., "algorithm": ..., "params": {...}},
      "graph":   {"n": ..., "m": ...},
      "result":  {... small algorithm-specific summary ...},
      "metrics": RunMetrics.to_dict()
    }

Campaign-level fields (content key, timing, cache provenance) are added
by :mod:`.campaign`, outside the deterministic core.

This module holds no algorithm table of its own: adapters, parameter
validation and the degraded-run marker all live with the protocol
declarations in :mod:`repro.protocols.builtin`.  ``TaskError`` is
re-exported here for backwards compatibility — its class name is part
of the stored error-record contract.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..graphs.specs import parse_graph
from ..protocols import TaskError, get as get_protocol, names
from .spec import Task

__all__ = ["TaskError", "available_algorithms", "execute_task"]


def available_algorithms() -> List[str]:
    """Algorithm names :func:`execute_task` accepts, sorted.

    Derived from the protocol registry — the same inventory the CLI,
    the benchmark suite and ``repro trace run`` see.
    """
    return names()


def execute_task(task: Task) -> Dict[str, Any]:
    """Run one task and return its deterministic record (see module doc).

    A ``trace: true`` param (set spec-wide by ``CampaignSpec.trace`` /
    ``repro campaign --trace``) runs the task under
    :func:`repro.obs.capture` and adds the trace's deterministic
    summary digest as a ``trace`` field — still JSON-pure and
    replay-stable, so cached and fresh records stay byte-identical.
    Workers run one task at a time, so the process-global tracer slot
    is safe here.
    """
    protocol = get_protocol(task.algorithm)  # TaskError when unknown
    graph = parse_graph(task.graph)
    params = task.param_dict()
    trace_summary = None
    if params.pop("trace", False):
        from ..obs import capture

        with capture() as session:
            outcome = protocol.execute(graph, params)
        if session.network_count:
            trace_summary = session.summary()
    else:
        outcome = protocol.execute(graph, params)
    record = {
        "task": task.payload(),
        "graph": {"n": graph.n, "m": graph.m},
        "result": outcome.result,
        "metrics": outcome.metrics.to_dict(),
    }
    if trace_summary is not None:
        record["trace"] = trace_summary
    return record
