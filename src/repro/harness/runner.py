"""Per-task execution: algorithm name → :mod:`repro.core` entry point.

:func:`execute_task` is the function worker processes run.  It parses
the task's graph spec, dispatches to the named algorithm, and returns a
*deterministic* record — JSON-pure, independent of wall-clock, worker
identity, process memory layout, and cache state — so that a cache hit
and a fresh computation yield byte-identical stored records.

Record shape::

    {
      "task":    {"graph": ..., "algorithm": ..., "params": {...}},
      "graph":   {"n": ..., "m": ...},
      "result":  {... small algorithm-specific summary ...},
      "metrics": RunMetrics.to_dict()
    }

Campaign-level fields (content key, timing, cache provenance) are added
by :mod:`.campaign`, outside the deterministic core.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Tuple

from .. import core
from ..congest.metrics import RunMetrics
from ..graphs.graph import Graph
from ..graphs.specs import parse_graph
from .spec import Task

#: Signature of a per-algorithm adapter.
Adapter = Callable[[Graph, Dict[str, Any]], Tuple[Dict[str, Any], RunMetrics]]


class TaskError(RuntimeError):
    """A task could not be executed (bad algorithm/params)."""


def _common(params: Dict[str, Any]) -> Dict[str, Any]:
    """Pop the kwargs every simulator entry point understands."""
    return {
        "seed": int(params.pop("seed", 0)),
        "policy": str(params.pop("policy", "strict")),
        "bandwidth_bits": params.pop("bandwidth_bits", None),
    }


def _reject_leftovers(algorithm: str, params: Mapping[str, Any]) -> None:
    if params:
        raise TaskError(
            f"algorithm {algorithm!r} got unknown params "
            f"{sorted(params)}"
        )


def _run_apsp(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    collect_girth = bool(params.pop("collect_girth", False))
    _reject_leftovers("apsp", params)
    summary = core.run_apsp(graph, collect_girth=collect_girth, **kwargs)
    return {
        "diameter": summary.diameter(),
        "radius": summary.radius(),
    }, summary.metrics


def _run_ssp(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    sources = params.pop("sources", None)
    num_sources = params.pop("num_sources", None)
    if sources is None:
        if num_sources is None:
            raise TaskError("ssp needs 'sources' or 'num_sources'")
        sources = sorted(graph.nodes)[: int(num_sources)]
    _reject_leftovers("ssp", params)
    summary = core.run_ssp(graph, [int(s) for s in sources], **kwargs)
    max_distance = max(
        (max(res.distances.values(), default=0)
         for res in summary.results.values()),
        default=0,
    )
    return {
        "sources": sorted(summary.sources),
        "max_distance": max_distance,
    }, summary.metrics


def _run_properties(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    include_girth = bool(params.pop("include_girth", True))
    _reject_leftovers("properties", params)
    summary = core.run_graph_properties(
        graph, include_girth=include_girth, **kwargs
    )
    result = {
        "diameter": summary.diameter,
        "radius": summary.radius,
        "center": sorted(summary.center()),
        "peripheral": sorted(summary.peripheral()),
    }
    if include_girth:
        result["girth"] = summary.girth
    return result, summary.metrics


def _run_approx(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    epsilon = float(params.pop("epsilon", 0.5))
    _reject_leftovers("approx", params)
    summary = core.run_approx_properties(graph, epsilon, **kwargs)
    return {
        "epsilon": epsilon,
        "diameter_estimate": summary.diameter_estimate,
        "radius_estimate": summary.radius_estimate,
    }, summary.metrics


def _run_girth(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    _reject_leftovers("girth", params)
    summary = core.run_exact_girth(graph, **kwargs)
    return {"girth": summary.girth}, summary.metrics


def _run_girth_approx(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    epsilon = float(params.pop("epsilon", 0.5))
    _reject_leftovers("girth-approx", params)
    summary = core.run_approx_girth(graph, epsilon, **kwargs)
    return {"epsilon": epsilon, "girth": summary.girth}, summary.metrics


def _run_two_vs_four(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    _reject_leftovers("two-vs-four", params)
    summary = core.run_two_vs_four(graph, **kwargs)
    return {
        "diameter": summary.diameter,
        "branch": summary.branch,
    }, summary.metrics


def _run_baseline(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    variant = params.pop("variant", None)
    if variant is None:
        raise TaskError(
            "baseline needs a 'variant' param (e.g. 'distance-vector')"
        )
    _reject_leftovers("baseline", params)
    summary = core.run_baseline_apsp(graph, str(variant), **kwargs)
    return {
        "variant": variant,
        "diameter": summary.diameter(),
        "radius": summary.radius(),
    }, summary.metrics


def _run_leader(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    _reject_leftovers("leader", params)
    results, metrics = core.run_leader_election(graph, **kwargs)
    leader = next(iter(results.values())).leader
    return {"leader": leader}, metrics


_ALGORITHMS: Dict[str, Adapter] = {
    "apsp": _run_apsp,
    "ssp": _run_ssp,
    "properties": _run_properties,
    "approx": _run_approx,
    "girth": _run_girth,
    "girth-approx": _run_girth_approx,
    "two-vs-four": _run_two_vs_four,
    "baseline": _run_baseline,
    "leader": _run_leader,
}


def available_algorithms() -> List[str]:
    """Algorithm names :func:`execute_task` accepts, sorted."""
    return sorted(_ALGORITHMS)


def execute_task(task: Task) -> Dict[str, Any]:
    """Run one task and return its deterministic record (see module doc)."""
    try:
        adapter = _ALGORITHMS[task.algorithm]
    except KeyError:
        raise TaskError(
            f"unknown algorithm {task.algorithm!r}; "
            f"available: {available_algorithms()}"
        )
    graph = parse_graph(task.graph)
    result, metrics = adapter(graph, task.param_dict())
    return {
        "task": task.payload(),
        "graph": {"n": graph.n, "m": graph.m},
        "result": result,
        "metrics": metrics.to_dict(),
    }
