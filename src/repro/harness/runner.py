"""Per-task execution: algorithm name → :mod:`repro.core` entry point.

:func:`execute_task` is the function worker processes run.  It parses
the task's graph spec, dispatches to the named algorithm, and returns a
*deterministic* record — JSON-pure, independent of wall-clock, worker
identity, process memory layout, and cache state — so that a cache hit
and a fresh computation yield byte-identical stored records.

Record shape::

    {
      "task":    {"graph": ..., "algorithm": ..., "params": {...}},
      "graph":   {"n": ..., "m": ...},
      "result":  {... small algorithm-specific summary ...},
      "metrics": RunMetrics.to_dict()
    }

Campaign-level fields (content key, timing, cache provenance) are added
by :mod:`.campaign`, outside the deterministic core.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Mapping, Tuple

from .. import core
from ..congest.metrics import RunMetrics
from ..graphs.graph import Graph
from ..graphs.specs import parse_graph
from .spec import Task

#: Signature of a per-algorithm adapter.
Adapter = Callable[[Graph, Dict[str, Any]], Tuple[Dict[str, Any], RunMetrics]]


class TaskError(RuntimeError):
    """A task could not be executed (bad algorithm/params)."""


def _common(params: Dict[str, Any]) -> Dict[str, Any]:
    """Pop the kwargs every simulator entry point understands."""
    return {
        "seed": int(params.pop("seed", 0)),
        "policy": str(params.pop("policy", "strict")),
        "bandwidth_bits": params.pop("bandwidth_bits", None),
        "faults": params.pop("faults", None),
    }


def _finish(
    metrics: RunMetrics, build: Callable[[], Dict[str, Any]]
) -> Tuple[Dict[str, Any], RunMetrics]:
    """Assemble ``(result, metrics)``, degrading under fault injection.

    When injected faults crashed or stalled nodes, the run's results
    are partial and the algorithm's aggregate summaries are undefined,
    so the record carries a ``degraded`` marker (with the crash/stall
    counts) instead of possibly-wrong aggregates.  ``build`` is only
    called — and hence aggregate summaries only computed — for runs
    where every node halted normally.
    """
    if metrics.nodes_crashed or metrics.nodes_stalled:
        return {
            "degraded": True,
            "nodes_crashed": metrics.nodes_crashed,
            "nodes_stalled": metrics.nodes_stalled,
        }, metrics
    return build(), metrics


def _reject_leftovers(algorithm: str, params: Mapping[str, Any]) -> None:
    if params:
        raise TaskError(
            f"algorithm {algorithm!r} got unknown params "
            f"{sorted(params)}"
        )


def _run_apsp(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    collect_girth = bool(params.pop("collect_girth", False))
    _reject_leftovers("apsp", params)
    summary = core.run_apsp(graph, collect_girth=collect_girth, **kwargs)
    return _finish(summary.metrics, lambda: {
        "diameter": summary.diameter(),
        "radius": summary.radius(),
    })


def _run_ssp(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    sources = params.pop("sources", None)
    num_sources = params.pop("num_sources", None)
    if sources is None:
        if num_sources is None:
            raise TaskError("ssp needs 'sources' or 'num_sources'")
        sources = sorted(graph.nodes)[: int(num_sources)]
    _reject_leftovers("ssp", params)
    summary = core.run_ssp(graph, [int(s) for s in sources], **kwargs)

    def build():
        max_distance = max(
            (max(res.distances.values(), default=0)
             for res in summary.results.values()),
            default=0,
        )
        return {
            "sources": sorted(summary.sources),
            "max_distance": max_distance,
        }

    return _finish(summary.metrics, build)


def _run_properties(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    include_girth = bool(params.pop("include_girth", True))
    _reject_leftovers("properties", params)
    summary = core.run_graph_properties(
        graph, include_girth=include_girth, **kwargs
    )

    def build():
        result = {
            "diameter": summary.diameter,
            "radius": summary.radius,
            "center": sorted(summary.center()),
            "peripheral": sorted(summary.peripheral()),
        }
        if include_girth:
            result["girth"] = summary.girth
        return result

    return _finish(summary.metrics, build)


def _run_approx(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    epsilon = float(params.pop("epsilon", 0.5))
    _reject_leftovers("approx", params)
    summary = core.run_approx_properties(graph, epsilon, **kwargs)
    return _finish(summary.metrics, lambda: {
        "epsilon": epsilon,
        "diameter_estimate": summary.diameter_estimate,
        "radius_estimate": summary.radius_estimate,
    })


def _run_girth(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    _reject_leftovers("girth", params)
    summary = core.run_exact_girth(graph, **kwargs)
    return _finish(summary.metrics, lambda: {"girth": summary.girth})


def _run_girth_approx(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    epsilon = float(params.pop("epsilon", 0.5))
    _reject_leftovers("girth-approx", params)
    summary = core.run_approx_girth(graph, epsilon, **kwargs)
    return _finish(
        summary.metrics,
        lambda: {"epsilon": epsilon, "girth": summary.girth},
    )


def _run_two_vs_four(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    _reject_leftovers("two-vs-four", params)
    summary = core.run_two_vs_four(graph, **kwargs)
    return _finish(summary.metrics, lambda: {
        "diameter": summary.diameter,
        "branch": summary.branch,
    })


def _run_baseline(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    variant = params.pop("variant", None)
    if variant is None:
        raise TaskError(
            "baseline needs a 'variant' param (e.g. 'distance-vector')"
        )
    _reject_leftovers("baseline", params)
    summary = core.run_baseline_apsp(graph, str(variant), **kwargs)
    return _finish(summary.metrics, lambda: {
        "variant": variant,
        "diameter": summary.diameter(),
        "radius": summary.radius(),
    })


def _run_leader(graph: Graph, params: Dict[str, Any]):
    kwargs = _common(params)
    _reject_leftovers("leader", params)
    results, metrics = core.run_leader_election(graph, **kwargs)
    return _finish(
        metrics,
        lambda: {"leader": next(iter(results.values())).leader},
    )


def _run_chaos(graph: Graph, params: Dict[str, Any]):
    """A deliberately hostile task for exercising harness hardening.

    Modes: ``ok`` (succeed with an empty metrics block), ``error``
    (raise :class:`TaskError`), ``hang`` (sleep ``seconds`` — pair it
    with the campaign timeout), ``crash`` (kill the worker process
    outright).  Real campaigns never use this; tests and the CI
    fault-smoke job use it to prove timeouts, retries and crash
    isolation work end to end.
    """
    _common(params)  # absorb the shared axes; chaos ignores them
    mode = str(params.pop("mode", "error"))
    seconds = float(params.pop("seconds", 3600.0))
    _reject_leftovers("chaos", params)
    if mode == "hang":
        time.sleep(seconds)
    elif mode == "crash":
        os._exit(13)
    elif mode == "error":
        raise TaskError("chaos task failed on purpose")
    elif mode != "ok":
        raise TaskError(f"unknown chaos mode {mode!r}")
    return {"mode": mode}, RunMetrics()


_ALGORITHMS: Dict[str, Adapter] = {
    "apsp": _run_apsp,
    "ssp": _run_ssp,
    "properties": _run_properties,
    "approx": _run_approx,
    "girth": _run_girth,
    "girth-approx": _run_girth_approx,
    "two-vs-four": _run_two_vs_four,
    "baseline": _run_baseline,
    "leader": _run_leader,
    "chaos": _run_chaos,
}


def available_algorithms() -> List[str]:
    """Algorithm names :func:`execute_task` accepts, sorted."""
    return sorted(_ALGORITHMS)


def execute_task(task: Task) -> Dict[str, Any]:
    """Run one task and return its deterministic record (see module doc).

    A ``trace: true`` param (set spec-wide by ``CampaignSpec.trace`` /
    ``repro campaign --trace``) runs the task under
    :func:`repro.obs.capture` and adds the trace's deterministic
    summary digest as a ``trace`` field — still JSON-pure and
    replay-stable, so cached and fresh records stay byte-identical.
    Workers run one task at a time, so the process-global tracer slot
    is safe here.
    """
    try:
        adapter = _ALGORITHMS[task.algorithm]
    except KeyError:
        raise TaskError(
            f"unknown algorithm {task.algorithm!r}; "
            f"available: {available_algorithms()}"
        )
    graph = parse_graph(task.graph)
    params = task.param_dict()
    trace_summary = None
    if params.pop("trace", False):
        from ..obs import capture

        with capture() as session:
            result, metrics = adapter(graph, params)
        if session.network_count:
            trace_summary = session.summary()
    else:
        result, metrics = adapter(graph, params)
    record = {
        "task": task.payload(),
        "graph": {"n": graph.n, "m": graph.m},
        "result": result,
        "metrics": metrics.to_dict(),
    }
    if trace_summary is not None:
        record["trace"] = trace_summary
    return record
