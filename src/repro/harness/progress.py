"""Terminal progress reporting for campaign runs.

A tiny single-line reporter: no dependencies, carriage-return updates
on TTYs, plain incremental lines otherwise (so CI logs stay readable).
The campaign driver calls :meth:`ProgressReporter.task_done` from the
main process only — worker processes never print.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


class ProgressReporter:
    """Running ``done/total`` tally with cache-hit and failure counts."""

    def __init__(
        self,
        total: int,
        *,
        label: str = "campaign",
        stream: Optional[TextIO] = None,
        enabled: bool = True,
        min_interval_s: float = 0.1,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.done = 0
        self.cache_hits = 0
        self.failures = 0
        self._started = time.monotonic()
        self._last_emit = 0.0
        self._min_interval_s = min_interval_s
        self._dirty = False

    def task_done(self, *, cache_hit: bool = False,
                  failed: bool = False) -> None:
        """Record one finished task and maybe redraw the status line."""
        self.done += 1
        if cache_hit:
            self.cache_hits += 1
        if failed:
            self.failures += 1
        self._dirty = True
        now = time.monotonic()
        throttled = (now - self._last_emit) < self._min_interval_s
        if self.enabled and (not throttled or self.done == self.total):
            self._emit(now)

    def status(self) -> str:
        """The current one-line status text."""
        elapsed = time.monotonic() - self._started
        parts = [
            f"{self.label}: {self.done}/{self.total} tasks",
            f"{self.cache_hits} cached",
        ]
        if self.failures:
            parts.append(f"{self.failures} failed")
        parts.append(f"{elapsed:.1f}s")
        return " · ".join(parts)

    def close(self) -> None:
        """Emit the final status (if anything changed) and end the line."""
        if not self.enabled:
            return
        if self._dirty:
            self._emit(time.monotonic())
        if self._interactive():
            self.stream.write("\n")
            self.stream.flush()

    # -- internals ---------------------------------------------------------

    def _interactive(self) -> bool:
        return bool(getattr(self.stream, "isatty", lambda: False)())

    def _emit(self, now: float) -> None:
        text = self.status()
        if self._interactive():
            self.stream.write(f"\r\x1b[2K{text}")
        else:
            self.stream.write(text + "\n")
        self.stream.flush()
        self._last_emit = now
        self._dirty = False
