"""Content-addressed on-disk run cache.

Layout (two-level fan-out keeps directories small at scale)::

    <root>/
      ab/
        ab12…ef.json      one completed run record, canonical JSON
      cd/
        cd34…01.json

The file name *is* the content address (:func:`repro.harness.hashing.
task_key` of the task payload + code-version salt), so invalidation is
implicit: any change to the task, the harness record schema, or the
:data:`~repro.harness.hashing.CODE_VERSION` salt produces a different
key and simply misses.  Entries are immutable once written.

Writes are atomic (temp file + ``os.replace`` in the same directory),
so concurrent workers — or concurrent campaigns sharing one cache —
can never expose a torn entry; at worst two workers compute the same
record and the second replace is a no-op rewrite of identical bytes.
Corrupt or unreadable entries behave as misses and are quietly removed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from .hashing import canonical_json


class RunCache:
    """Content-addressed store of completed run records."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            record = json.loads(text)
        except ValueError:
            # A torn or corrupt entry: drop it so it gets recomputed.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return record if isinstance(record, dict) else None

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Store ``record`` under ``key`` atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = canonical_json(record) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def keys(self) -> Iterator[str]:
        """All stored content addresses."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def size_bytes(self) -> int:
        """Total bytes the stored records occupy on disk."""
        total = 0
        for key in self.keys():
            try:
                total += self.path_for(key).stat().st_size
            except OSError:
                pass
        return total

    def prune(self, max_bytes: int) -> Tuple[int, int]:
        """Evict oldest entries until the cache fits ``max_bytes``.

        Entries are immutable once written, so modification time is
        write time and oldest-mtime-first eviction drops the records
        least likely to be re-requested (every entry is recomputable —
        eviction costs time, never correctness).  Returns
        ``(entries_removed, bytes_freed)``.  Entries that vanish
        concurrently (another pruner, a cleared cache) are skipped.
        """
        entries = []
        total = 0
        for key in self.keys():
            try:
                stat = self.path_for(key).stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, key, stat.st_size))
            total += stat.st_size
        entries.sort()
        removed = 0
        freed = 0
        for _mtime, key, size in entries:
            if total - freed <= max_bytes:
                break
            try:
                self.path_for(key).unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        return removed, freed
