"""Closed-form numpy execution of the fault-free core protocols.

The object engine steps one Python generator per node per round.  On
the fault-free strict path, however, every message the paper's
algorithms send is a *closed-form function* of the BFS distance matrix
``D`` and the ``T_1`` pebble traversal:

* **Tree construction** (``build_bfs_tree``): a node at depth ``d``
  adopts in round ``d``, floods :class:`BfsToken` to every neighbor not
  at depth ``d - 1`` (delivered ``d + 1``), joins its parent (delivered
  ``d + 1``), echoes at ``d + 3 + 2·h(v)`` (``h`` = subtree height) and
  receives the root's :class:`SyncMsg` at ``r_e + d`` where
  ``r_e = 2 + 2·ecc(root)``.  All nodes exit at
  ``start_round = 3·ecc(root) + 4``.
* **Algorithm 1** (``apsp_phase``): the pebble's Euler tour of ``T_1``
  fixes each wave's start round ``w(v)``; wave ``v``'s token crosses
  directed edge ``(x, y)`` in round ``w(v) + D[v,x] + 1`` iff
  ``D[v,y] ≥ D[v,x]``.  The finish broadcast leaves the root the round
  the pebble exhausts and reaches depth ``d`` nodes ``d`` rounds later.
* **Lemmas 2–7 epilogue**: ``k`` aligned convergecast+broadcast phases
  of exactly ``2·(ecc(root) + 2)`` rounds each, one :class:`UpMsg` /
  :class:`DownMsg` per tree edge per phase.
* **Algorithm 2** (``ssp_main_loop``): no closed form — the offer /
  accept loop is simulated round-exactly, but with the per-edge pending
  sets held as one boolean matrix and each round's offers selected by a
  single vectorized argmin.

Whole runs therefore collapse into a few ``bincount`` passes over
delivery-round arrays, with the distance matrix computed by blocked
boolean matrix products.  Counter fidelity notes:

* Per directed edge and round these schedules deliver at most one
  message, **except** in the APSP phase where a wave token may share an
  edge-round with the pebble or with the finish broadcast; those
  coincidences are detected explicitly, so ``max_edge_*_in_round`` is
  exact.  Distinct wave tokens never collide (the paper's Lemma 1); a
  tripwire re-verifies this exhaustively on small inputs.
* Bandwidth overflow is still detected (against the same budget), but
  the error may name a different witnessing edge/round than the object
  engine, which stops at the first offending round.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Type

import numpy as np

from ..congest.errors import BandwidthExceededError, GraphError
from ..congest.message import Message, SizeModel
from ..congest.metrics import RunMetrics
from ..congest.network import default_bandwidth
from ..core.bfs import BfsResult
from ..core.engine import ROOT, validate_apsp_input
from ..core.girth import GirthEstimate, GirthSummary
from ..core.messages import (
    BfsToken,
    DownMsg,
    EchoMsg,
    JoinMsg,
    OfferMsg,
    PebbleMsg,
    SyncMsg,
    UpMsg,
)
from ..core.properties import GIRTH_INFINITE
from ..core.results import (
    ApspResult,
    ApspSummary,
    PropertyResult,
    PropertySummary,
    SspResult,
    SspSummary,
)
from ..core.ssp import PRIORITY_DIST_ID
from ..graphs.graph import Graph
from . import VectorBackendError

#: Upper bound on (rows × directed edges) entries held live per chunk of
#: the wave sweep — keeps peak memory near 100 MB at n = 2048.
_CHUNK_ENTRIES = 1 << 23

#: Below this (n × directed edges) volume the Lemma 1 tripwire runs: an
#: exhaustive uniqueness check that no two wave tokens share an
#: edge-round.  Covers every test-sized graph at negligible cost while
#: staying off the bench path (n ≥ 512).
_LEMMA1_CHECK_LIMIT = 1 << 18

_NO_CANDIDATE = np.iinfo(np.int64).max


def _check_supported(*, policy: str, faults, track_edges: bool = False,
                     priority: Optional[str] = None) -> None:
    """Reject the object-engine-only features up front, loudly."""
    del track_edges  # supported; listed for signature symmetry
    if faults is not None:
        raise VectorBackendError(
            "the vector backend does not support fault injection; "
            "run with --backend=object for faulty networks"
        )
    if policy != "strict":
        raise VectorBackendError(
            f"the vector backend supports only the 'strict' bandwidth "
            f"policy, not {policy!r}; run with --backend=object"
        )
    if priority is not None and priority != PRIORITY_DIST_ID:
        raise VectorBackendError(
            f"the vector backend supports only the corrected "
            f"{PRIORITY_DIST_ID!r} S-SP priority rule, not {priority!r}; "
            f"run with --backend=object"
        )


class _Csr:
    """Immutable CSR adjacency plus directed-edge arrays.

    Node *indices* are positions in the ascending id tuple, so index
    order and id order agree — every min-id tie-break below is a plain
    index minimum.
    """

    __slots__ = (
        "n", "ids", "indptr", "indices", "src", "dst", "edge_key",
        "in_order", "in_indptr", "root_idx",
    )

    def __init__(self, graph: Graph) -> None:
        nodes = graph.nodes
        n = len(nodes)
        self.n = n
        self.ids = np.asarray(nodes, dtype=np.int64)
        index = {uid: i for i, uid in enumerate(nodes)}
        neighbor_lists = [graph.neighbors(uid) for uid in nodes]
        counts = np.fromiter(
            (len(x) for x in neighbor_lists), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        m2 = int(indptr[-1])
        self.indptr = indptr
        self.indices = np.fromiter(
            (index[w] for nbrs in neighbor_lists for w in nbrs),
            dtype=np.int64, count=m2,
        )
        self.src = np.repeat(np.arange(n, dtype=np.int64), counts)
        self.dst = self.indices
        # Neighbor lists are ascending, so (src, dst) pairs are already
        # lexicographically sorted — the key array is monotonic and
        # edge_of() is a binary search.
        self.edge_key = self.src * n + self.dst
        self.in_order = np.argsort(self.dst, kind="stable")
        in_counts = np.bincount(self.dst, minlength=n)
        in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_counts, out=in_indptr[1:])
        self.in_indptr = in_indptr
        self.root_idx = index[ROOT]

    @property
    def m2(self) -> int:
        """Number of directed edges (2·|E|)."""
        return int(self.indptr[-1])

    def edge_of(self, src_idx, dst_idx):
        """Directed-edge indices for (src, dst) index arrays."""
        return np.searchsorted(
            self.edge_key,
            np.asarray(src_idx, dtype=np.int64) * self.n + dst_idx,
        )


def _sssp_depths(csr: _Csr, source_idx: int) -> np.ndarray:
    """Hop distances from one source over the CSR structure."""
    depth = np.full(csr.n, -1, dtype=np.int64)
    depth[source_idx] = 0
    frontier = np.array([source_idx], dtype=np.int64)
    level = 0
    indptr, indices = csr.indptr, csr.indices
    while frontier.size:
        level += 1
        reach = np.concatenate(
            [indices[indptr[u]:indptr[u + 1]] for u in frontier]
        )
        reach = reach[depth[reach] < 0]
        if reach.size == 0:
            break
        frontier = np.unique(reach)
        depth[frontier] = level
    return depth


def _all_pairs_distances(csr: _Csr) -> np.ndarray:
    """The full hop-distance matrix via blocked boolean matmul BFS."""
    n = csr.n
    if n == 1:
        return np.zeros((1, 1), dtype=np.int32)
    adjacency = np.zeros((n, n), dtype=np.float32)
    adjacency[csr.src, csr.dst] = 1.0
    distances = np.zeros((n, n), dtype=np.int32)
    block = max(1, min(n, _CHUNK_ENTRIES // n))
    for start in range(0, n, block):
        stop = min(n, start + block)
        rows = stop - start
        reached = np.zeros((rows, n), dtype=bool)
        reached[np.arange(rows), np.arange(start, stop)] = True
        frontier = reached.astype(np.float32)
        level = 0
        sub = distances[start:stop]
        while True:
            nxt = (frontier @ adjacency) > 0.0
            nxt &= ~reached
            if not nxt.any():
                break
            level += 1
            sub[nxt] = level
            reached |= nxt
            frontier = nxt.astype(np.float32)
    return distances


class _Tree:
    """The ``T_1`` arrays every schedule below is phrased over."""

    __slots__ = (
        "depth", "parent", "children", "height", "ecc", "r_echo",
        "start_round", "root_idx", "nonroot", "up_edges", "down_edges",
    )

    def __init__(self, csr: _Csr, depth: np.ndarray) -> None:
        n = csr.n
        self.root_idx = csr.root_idx
        self.depth = depth
        parent = np.full(n, -1, dtype=np.int64)
        if n > 1:
            src_in = csr.src[csr.in_order]
            dst_in = csr.dst[csr.in_order]
            candidate = np.where(
                depth[src_in] == depth[dst_in] - 1, src_in, n
            )
            parent = np.minimum.reduceat(candidate, csr.in_indptr[:-1])
            parent[self.root_idx] = -1
        self.parent = parent
        children: List[List[int]] = [[] for _ in range(n)]
        parent_list = parent.tolist()
        for v, p in enumerate(parent_list):
            if p >= 0:
                children[p].append(v)
        self.children = children
        height = np.zeros(n, dtype=np.int64)
        for v in np.argsort(depth)[::-1].tolist():
            p = parent_list[v]
            if p >= 0 and height[p] < height[v] + 1:
                height[p] = height[v] + 1
        self.height = height
        self.ecc = int(depth.max())
        self.r_echo = 2 + 2 * self.ecc
        self.start_round = 3 * self.ecc + 4
        self.nonroot = np.nonzero(parent >= 0)[0]
        self.up_edges = (
            csr.edge_of(self.nonroot, parent[self.nonroot])
            if n > 1 else np.zeros(0, dtype=np.int64)
        )
        self.down_edges = (
            csr.edge_of(parent[self.nonroot], self.nonroot)
            if n > 1 else np.zeros(0, dtype=np.int64)
        )

    @property
    def diameter_bound(self) -> int:
        return max(1, 2 * self.ecc)


class _Schedule:
    """Accumulates message deliveries into RunMetrics-shaped counters."""

    def __init__(self, total_rounds: int, csr: _Csr,
                 size_model: SizeModel, track_edges: bool) -> None:
        self.total_rounds = total_rounds
        self.csr = csr
        self.size_model = size_model
        self.msgs = np.zeros(total_rounds + 2, dtype=np.int64)
        self.bits = np.zeros(total_rounds + 2, dtype=np.int64)
        self.edge_bits: Optional[np.ndarray] = (
            np.zeros(csr.m2, dtype=np.int64) if track_edges else None
        )
        #: class -> one witnessing (edge_idx, round) delivery.
        self.classes: Dict[Type[Message], Tuple[int, int]] = {}
        #: coincidences: (combined_bits, edge_idx, round).
        self.pairs: List[Tuple[int, int, int]] = []

    def size(self, cls: Type[Message]) -> int:
        return self.size_model.class_size_bits(cls)

    def _admit_counts(self, cls: Type[Message], counts: np.ndarray,
                      witness: Tuple[int, int]) -> None:
        size = self.size(cls)
        self.msgs += counts
        self.bits += counts * size
        self.classes.setdefault(cls, witness)

    def deliver(self, cls: Type[Message], rounds, edges) -> None:
        """Record one delivery per (round, edge) entry pair."""
        rounds = np.asarray(rounds, dtype=np.int64)
        if rounds.size == 0:
            return
        peak = int(rounds.max())
        if peak > self.total_rounds:
            raise AssertionError(
                f"{cls.__name__} delivery in round {peak} past the "
                f"computed run length {self.total_rounds}"
            )
        counts = np.bincount(rounds, minlength=self.total_rounds + 2)
        self._admit_counts(cls, counts, (int(edges[0]), int(rounds[0])))
        if self.edge_bits is not None:
            np.add.at(self.edge_bits, edges, self.size(cls))

    def deliver_bincounts(self, cls: Type[Message], counts: np.ndarray,
                          edge_counts: Optional[np.ndarray],
                          witness: Tuple[int, int]) -> None:
        """Record pre-aggregated per-round (and per-edge) counts."""
        if counts.shape != self.msgs.shape:
            raise AssertionError("per-round count array shape mismatch")
        if not counts.any():
            return
        self._admit_counts(cls, counts, witness)
        if self.edge_bits is not None and edge_counts is not None:
            self.edge_bits += edge_counts * self.size(cls)

    def coincide(self, other_cls: Type[Message], edge_idx: int,
                 round_no: int) -> None:
        """Record a wave-token + ``other_cls`` shared edge-round."""
        self.pairs.append(
            (self.size(BfsToken) + self.size(other_cls),
             edge_idx, round_no)
        )

    def finalize(self, bandwidth_bits: Optional[int]) -> RunMetrics:
        budget = (
            default_bandwidth(self.csr.n)
            if bandwidth_bits is None else bandwidth_bits
        )
        max_bits = 0
        witness: Optional[Tuple[int, int]] = None
        for cls, (edge_idx, round_no) in self.classes.items():
            size = self.size(cls)
            if size > max_bits:
                max_bits, witness = size, (edge_idx, round_no)
        for bits, edge_idx, round_no in self.pairs:
            if bits > max_bits:
                max_bits, witness = bits, (edge_idx, round_no)
        if max_bits > budget:
            edge_idx, round_no = witness
            raise BandwidthExceededError(
                int(self.csr.ids[self.csr.src[edge_idx]]),
                int(self.csr.ids[self.csr.dst[edge_idx]]),
                round_no, max_bits, budget,
            )
        if not self.classes:
            max_messages = 0
        elif self.pairs:
            max_messages = 2
        else:
            max_messages = 1
        metrics = RunMetrics(
            edge_bits=None if self.edge_bits is None else {},
        )
        upto = self.total_rounds + 1
        metrics.rounds = self.total_rounds
        metrics.messages_total = int(self.msgs[1:upto].sum())
        metrics.bits_total = int(self.bits[1:upto].sum())
        metrics.max_edge_bits_in_round = max_bits
        metrics.max_edge_messages_in_round = max_messages
        metrics.messages_per_round = self.msgs[1:upto].tolist()
        metrics.bits_per_round = self.bits[1:upto].tolist()
        if self.edge_bits is not None:
            ids, src, dst = self.csr.ids, self.csr.src, self.csr.dst
            live = np.nonzero(self.edge_bits)[0]
            metrics.edge_bits = {
                (int(ids[src[e]]), int(ids[dst[e]])): int(self.edge_bits[e])
                for e in live.tolist()
            }
        return metrics


# ---------------------------------------------------------------------------
# Phase schedules.
# ---------------------------------------------------------------------------


def _emit_tree_phase(sched: _Schedule, csr: _Csr, tree: _Tree) -> None:
    """``build_bfs_tree``: wave + join + echo + sync deliveries."""
    if csr.n == 1:
        return
    depth = tree.depth
    flood = np.nonzero(depth[csr.dst] != depth[csr.src] - 1)[0]
    sched.deliver(BfsToken, depth[csr.src[flood]] + 1, flood)
    nonroot = tree.nonroot
    sched.deliver(JoinMsg, depth[nonroot] + 1, tree.up_edges)
    sched.deliver(
        EchoMsg, depth[nonroot] + 3 + 2 * tree.height[nonroot],
        tree.up_edges,
    )
    sched.deliver(SyncMsg, tree.r_echo + depth[nonroot], tree.down_edges)


def _pebble_schedule(tree: _Tree, t0: int):
    """Euler tour of ``T_1``: wave start rounds, pebble moves, last round.

    Mirrors ``apsp_phase`` exactly: the holder stages the first wave and
    the first move in round ``t0 + 1``; a first visit arriving in round
    ``a`` stages its wave and onward move in ``a + 1``; a revisit moves
    on in its arrival round; the root announces the finish the round its
    traversal exhausts.
    """
    n = len(tree.depth)
    wave_round = np.zeros(n, dtype=np.int64)
    wave_round[tree.root_idx] = t0 + 1
    next_child = [0] * n
    parent = tree.parent.tolist()
    children = tree.children
    moves_src: List[int] = []
    moves_dst: List[int] = []
    moves_stage: List[int] = []
    current = tree.root_idx
    stage = t0 + 1
    while True:
        kids = children[current]
        cursor = next_child[current]
        if cursor < len(kids):
            target = kids[cursor]
            next_child[current] = cursor + 1
            moves_src.append(current)
            moves_dst.append(target)
            moves_stage.append(stage)
            arrival = stage + 1          # always a first visit
            wave_round[target] = arrival + 1
            stage = arrival + 1
            current = target
        elif parent[current] >= 0:
            target = parent[current]
            moves_src.append(current)
            moves_dst.append(target)
            moves_stage.append(stage)
            stage = stage + 1            # revisit: moves on at arrival
            current = target
        else:
            return (
                wave_round,
                np.asarray(moves_src, dtype=np.int64),
                np.asarray(moves_dst, dtype=np.int64),
                np.asarray(moves_stage, dtype=np.int64),
                stage,                    # the root's exhaustion round
            )


def _token_present(distances: np.ndarray, wave_round: np.ndarray,
                   src_idx: int, dst_idx: int, round_no: int) -> bool:
    """Whether any wave token crosses ``(src, dst)`` in ``round_no``."""
    d_src = distances[:, src_idx].astype(np.int64)
    return bool(np.any(
        (wave_round + d_src + 1 == round_no)
        & (distances[:, dst_idx] >= distances[:, src_idx])
    ))


def _emit_apsp_phase(
    sched: _Schedule, csr: _Csr, tree: _Tree, distances: np.ndarray,
    t0: int, collect_girth: bool,
):
    """Algorithm 1's pebble + n waves + finish broadcast.

    Returns ``(finish_round, girth_best)`` where ``girth_best`` is a
    per-node int64 array (``_NO_CANDIDATE`` = none) or ``None``.
    """
    n = csr.n
    (wave_round, moves_src, moves_dst, moves_stage,
     exhausted) = _pebble_schedule(tree, t0)
    finish_round = exhausted + tree.diameter_bound + 2
    girth_best = (
        np.full(n, _NO_CANDIDATE, dtype=np.int64) if collect_girth else None
    )
    if n == 1:
        return finish_round, girth_best

    # Pebble moves: 2(n-1) singletons, delivered the round after staging.
    move_edges = csr.edge_of(moves_src, moves_dst)
    sched.deliver(PebbleMsg, moves_stage + 1, move_edges)

    # Finish broadcast down the tree.
    sched.deliver(
        DownMsg, exhausted + tree.depth[tree.nonroot], tree.down_edges
    )

    # The n BFS waves, in source chunks.
    src, dst = csr.src, csr.dst
    src_in = src[csr.in_order]
    dst_in = dst[csr.in_order]
    m2 = csr.m2
    total = sched.total_rounds
    counts = np.zeros(total + 2, dtype=np.int64)
    edge_counts = (
        np.zeros(m2, dtype=np.int64) if sched.edge_bits is not None else None
    )
    check_lemma1 = n * m2 <= _LEMMA1_CHECK_LIMIT
    seen_keys: List[np.ndarray] = []
    chunk = max(1, _CHUNK_ENTRIES // max(1, m2))
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        block = distances[lo:hi]
        d_src = block[:, src].astype(np.int64)
        d_dst = block[:, dst]
        mask = d_dst >= block[:, src]
        rounds = wave_round[lo:hi, None] + d_src + 1
        hit = rounds[mask]
        if hit.size:
            peak = int(hit.max())
            if peak > total:
                raise AssertionError(
                    f"wave delivery in round {peak} past run length {total}"
                )
            counts += np.bincount(hit, minlength=total + 2)
        if edge_counts is not None:
            edge_counts += mask.sum(axis=0)
        if check_lemma1 and hit.size:
            edge_idx = np.broadcast_to(
                np.arange(m2, dtype=np.int64), mask.shape
            )[mask]
            seen_keys.append(edge_idx * (total + 2) + hit)
        if collect_girth:
            d_si = block[:, src_in]
            d_di = block[:, dst_in]
            same = np.add.reduceat(
                d_si == d_di, csr.in_indptr[:-1], axis=1
            )
            above = np.add.reduceat(
                d_si == d_di - 1, csr.in_indptr[:-1], axis=1
            )
            twice = 2 * block.astype(np.int64)
            candidate = np.where(above >= 2, twice, _NO_CANDIDATE)
            candidate = np.minimum(
                candidate,
                np.where(same >= 1, twice + 1, _NO_CANDIDATE),
            )
            np.minimum(
                girth_best, candidate.min(axis=0), out=girth_best
            )
    if check_lemma1 and seen_keys:
        keys = np.concatenate(seen_keys)
        keys.sort()
        if keys.size > 1 and bool((np.diff(keys) == 0).any()):  # pragma: no cover
            raise AssertionError(
                "two BFS waves shared an edge-round (Lemma 1 violation); "
                "the vector schedule no longer matches the object engine"
            )
    witness_edge = int(csr.indptr[tree.root_idx])
    sched.deliver_bincounts(
        BfsToken, counts, edge_counts, (witness_edge, t0 + 2)
    )

    # Wave-token coincidences with the pebble / the finish broadcast —
    # the only multi-message edge-rounds any schedule here produces.
    for e, x, y, s in zip(
        move_edges.tolist(), moves_src.tolist(), moves_dst.tolist(),
        (moves_stage + 1).tolist(),
    ):
        if _token_present(distances, wave_round, x, y, s):
            sched.coincide(PebbleMsg, e, s)
    down_rounds = (exhausted + tree.depth[tree.nonroot]).tolist()
    for e, v, r in zip(
        tree.down_edges.tolist(), tree.nonroot.tolist(), down_rounds
    ):
        if _token_present(
            distances, wave_round, int(tree.parent[v]), v, r
        ):
            sched.coincide(DownMsg, e, r)
    return finish_round, girth_best


def _emit_epilogue(sched: _Schedule, tree: _Tree, start: int,
                   phases: int) -> int:
    """``k`` aggregate_and_share phases over ``T_1``; returns exit round."""
    period = 2 * (tree.ecc + 2)
    nonroot = tree.nonroot
    for j in range(phases):
        converge_start = start + j * period
        broadcast_start = converge_start + tree.ecc + 2
        if nonroot.size:
            sched.deliver(
                UpMsg,
                converge_start + tree.height[nonroot] + 1,
                tree.up_edges,
            )
            sched.deliver(
                DownMsg,
                broadcast_start + tree.depth[nonroot],
                tree.down_edges,
            )
    return start + phases * period


def _wave_parents(csr: _Csr, distances: np.ndarray) -> np.ndarray:
    """``P[v, u]`` = index of ``u``'s parent in ``T_v`` (``n`` at u=v)."""
    n = csr.n
    parents = np.full((n, n), n, dtype=np.int64)
    if n == 1:
        return parents
    src_in = csr.src[csr.in_order]
    dst_in = csr.dst[csr.in_order]
    chunk = max(1, _CHUNK_ENTRIES // max(1, csr.m2))
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        block = distances[lo:hi]
        candidate = np.where(
            block[:, src_in] == block[:, dst_in] - 1, src_in, n
        )
        parents[lo:hi] = np.minimum.reduceat(
            candidate, csr.in_indptr[:-1], axis=1
        )
    return parents


def _emit_ssp_phase(
    sched: _Schedule, csr: _Csr, source_idx: List[int], t0: int,
    duration: int,
):
    """Round-exact simulation of ``ssp_main_loop`` (dist_id priority).

    Returns ``(delta, parent)`` arrays of shape ``(n, |S|)``; ``parent``
    uses ``-1`` for "never adopted" and ``-2`` for "self" (None).
    """
    n, m2 = csr.n, csr.m2
    n_sources = len(source_idx)
    infinite = np.iinfo(np.int64).max // 4
    delta = np.full((n, n_sources), infinite, dtype=np.int64)
    parent = np.full((n, n_sources), -1, dtype=np.int64)
    pending = np.zeros((m2, n_sources), dtype=bool)
    source_ids = csr.ids[np.asarray(source_idx, dtype=np.int64)] \
        if n_sources else np.zeros(0, dtype=np.int64)
    for column, s in enumerate(source_idx):
        delta[s, column] = 0
        parent[s, column] = -2
        pending[csr.indptr[s]:csr.indptr[s + 1], column] = True
    if n_sources == 0 or m2 == 0:
        return delta, parent
    key_stride = int(csr.ids.max()) + 1
    indptr = csr.indptr
    arange_cache: Dict[int, np.ndarray] = {}
    for iteration in range(duration):
        staged_round = t0 + iteration
        offering = np.nonzero(pending.any(axis=1))[0]
        if offering.size == 0:
            continue
        live = pending[offering]
        base = delta[csr.src[offering]]
        finite = np.where(live, base, 0)
        keys = np.where(
            live, (finite + 1) * key_stride + source_ids, np.iinfo(np.int64).max
        )
        rows = arange_cache.get(offering.size)
        if rows is None:
            rows = np.arange(offering.size)
            arange_cache[offering.size] = rows
        best = keys.argmin(axis=1)
        best_dist = base[rows, best] + 1
        # Lines 14–17 staged; the whole round's sends leave the queue
        # before any receipt is processed (the dist_id dequeue rule).
        pending[offering, best] = False
        sched.deliver(
            OfferMsg,
            np.full(offering.size, staged_round + 1, dtype=np.int64),
            offering,
        )
        # Receipts: per (receiver, source) group, senders in ascending
        # id order with strict-improvement running semantics.
        receiver = csr.dst[offering]
        sender = csr.src[offering]
        order = np.lexsort((sender, best, receiver))
        recv_l = receiver[order].tolist()
        send_l = sender[order].tolist()
        col_l = best[order].tolist()
        dist_l = best_dist[order].tolist()
        i = 0
        count = len(recv_l)
        while i < count:
            y = recv_l[i]
            column = col_l[i]
            running = int(delta[y, column])
            last_event = -1
            events = 0
            j = i
            while j < count and recv_l[j] == y and col_l[j] == column:
                if dist_l[j] < running:
                    running = dist_l[j]
                    last_event = send_l[j]
                    events += 1
                j += 1
            if events:
                delta[y, column] = running
                parent[y, column] = last_event
                lo, hi = int(indptr[y]), int(indptr[y + 1])
                if events == 1:
                    # A single improvement re-queues for every neighbor
                    # but its sender — yet it must not cancel an entry
                    # the sender edge already held from an earlier
                    # round (requeueing only ever *adds*).
                    back = int(csr.edge_of(y, last_event))
                    back_was = bool(pending[back, column])
                    pending[lo:hi, column] = True
                    pending[back, column] = back_was
                else:
                    # Two or more improvements re-queue for all edges:
                    # each event covers every neighbor but its own
                    # sender, and the senders are distinct.
                    pending[lo:hi, column] = True
            i = j
    return delta, parent


# ---------------------------------------------------------------------------
# Entry points (signatures mirror repro.core).
# ---------------------------------------------------------------------------


def run_bfs(graph: Graph, *, seed: int = 0,
            bandwidth_bits: Optional[int] = None,
            policy: str = "strict", faults=None):
    """Vector twin of :func:`repro.core.run_bfs`."""
    del seed  # the protocol is deterministic; kept for signature parity
    _check_supported(policy=policy, faults=faults)
    validate_apsp_input(graph)
    csr = _Csr(graph)
    tree = _Tree(csr, _sssp_depths(csr, csr.root_idx))
    sched = _Schedule(
        tree.start_round, csr, SizeModel(csr.n), track_edges=False
    )
    _emit_tree_phase(sched, csr, tree)
    metrics = sched.finalize(bandwidth_bits)
    ids = csr.ids.tolist()
    depth_l = tree.depth.tolist()
    parent_l = tree.parent.tolist()
    results = {
        ids[v]: BfsResult(
            uid=ids[v],
            depth=depth_l[v],
            parent=None if parent_l[v] < 0 else ids[parent_l[v]],
            children=tuple(ids[c] for c in tree.children[v]),
            ecc_root=tree.ecc,
        )
        for v in range(csr.n)
    }
    return results, metrics


def _apsp_run(graph: Graph, *, collect_girth: bool, track_edges: bool,
              bandwidth_bits: Optional[int], epilogue_phases: int = 0):
    """Shared tree + Algorithm 1 (+ optional epilogue) schedule."""
    csr = _Csr(graph)
    distances = _all_pairs_distances(csr)
    tree = _Tree(csr, distances[csr.root_idx].astype(np.int64))
    t0 = tree.start_round
    # The run length must be known before any bincount: finish_round
    # depends only on the pebble tour, so compute it first.
    _, _, _, _, exhausted = _pebble_schedule(tree, t0)
    finish_round = exhausted + tree.diameter_bound + 2
    period = 2 * (tree.ecc + 2)
    total_rounds = finish_round + epilogue_phases * period
    sched = _Schedule(total_rounds, csr, SizeModel(csr.n), track_edges)
    _emit_tree_phase(sched, csr, tree)
    finish_again, girth_best = _emit_apsp_phase(
        sched, csr, tree, distances, t0, collect_girth
    )
    assert finish_again == finish_round
    if epilogue_phases:
        _emit_epilogue(sched, tree, finish_round, epilogue_phases)
    metrics = sched.finalize(bandwidth_bits)
    return csr, distances, tree, girth_best, metrics


def run_apsp(graph: Graph, *, collect_girth: bool = False, seed: int = 0,
             bandwidth_bits: Optional[int] = None, policy: str = "strict",
             track_edges: bool = False, faults=None) -> ApspSummary:
    """Vector twin of :func:`repro.core.run_apsp`."""
    del seed
    _check_supported(policy=policy, faults=faults)
    validate_apsp_input(graph)
    csr, distances, _, girth_best, metrics = _apsp_run(
        graph, collect_girth=collect_girth, track_edges=track_edges,
        bandwidth_bits=bandwidth_bits,
    )
    n = csr.n
    ids = csr.ids.tolist()
    parents = _wave_parents(csr, distances)
    # Map parent indices to ids; u = v slots (sentinel n) become None.
    parent_ids = np.where(
        parents < n, csr.ids[np.minimum(parents, n - 1)], -1
    )
    parent_cols = np.ascontiguousarray(parent_ids.T)
    dist_cols = np.ascontiguousarray(distances.T.astype(np.int64))
    girth_l = girth_best.tolist() if girth_best is not None else None
    results = {}
    for u in range(n):
        uid = ids[u]
        row_parents = dict(zip(ids, parent_cols[u].tolist()))
        row_parents[uid] = None
        candidate = None
        if girth_l is not None and girth_l[u] != _NO_CANDIDATE:
            candidate = girth_l[u]
        results[uid] = ApspResult(
            uid=uid,
            distances=dict(zip(ids, dist_cols[u].tolist())),
            parents=row_parents,
            girth_candidate=candidate,
        )
    return ApspSummary(results=results, metrics=metrics)


def run_graph_properties(graph: Graph, *, include_girth: bool = True,
                         seed: int = 0,
                         bandwidth_bits: Optional[int] = None,
                         policy: str = "strict",
                         track_edges: bool = False,
                         faults=None) -> PropertySummary:
    """Vector twin of :func:`repro.core.run_graph_properties`."""
    del seed
    _check_supported(policy=policy, faults=faults)
    validate_apsp_input(graph)
    phases = 3 if include_girth else 2
    csr, distances, _, girth_best, metrics = _apsp_run(
        graph, collect_girth=include_girth, track_edges=track_edges,
        bandwidth_bits=bandwidth_bits, epilogue_phases=phases,
    )
    eccentricities = distances.max(axis=1).astype(np.int64)
    diameter = int(eccentricities.max())
    radius = int(eccentricities.min())
    girth: Optional[float]
    if not include_girth:
        girth = None
    else:
        best = int(girth_best.min())
        girth = GIRTH_INFINITE if best == _NO_CANDIDATE else best
    ids = csr.ids.tolist()
    ecc_l = eccentricities.tolist()
    results = {
        ids[v]: PropertyResult(
            uid=ids[v],
            eccentricity=ecc_l[v],
            diameter=diameter,
            radius=radius,
            is_center=(ecc_l[v] == radius),
            is_peripheral=(ecc_l[v] == diameter),
            girth=girth,
        )
        for v in range(csr.n)
    }
    return PropertySummary(results=results, metrics=metrics)


def run_exact_girth(graph: Graph, *, seed: int = 0,
                    bandwidth_bits: Optional[int] = None,
                    policy: str = "strict", faults=None) -> GirthSummary:
    """Vector twin of :func:`repro.core.run_exact_girth`."""
    summary = run_graph_properties(
        graph, include_girth=True, seed=seed,
        bandwidth_bits=bandwidth_bits, policy=policy, faults=faults,
    )
    results = {
        uid: GirthEstimate(uid=uid, girth=res.girth, exact=True, phases=0)
        for uid, res in summary.results.items()
    }
    return GirthSummary(results=results, metrics=summary.metrics)


def run_ssp(graph: Graph, sources: Iterable[int], *, seed: int = 0,
            bandwidth_bits: Optional[int] = None, policy: str = "strict",
            track_edges: bool = False, priority: str = PRIORITY_DIST_ID,
            faults=None) -> SspSummary:
    """Vector twin of :func:`repro.core.run_ssp`."""
    del seed
    _check_supported(policy=policy, faults=faults, priority=priority)
    validate_apsp_input(graph)
    source_set = frozenset(sources)
    unknown = source_set - set(graph.nodes)
    if unknown:
        raise GraphError(f"sources {sorted(unknown)} are not graph nodes")
    csr = _Csr(graph)
    tree = _Tree(csr, _sssp_depths(csr, csr.root_idx))
    t0 = tree.start_round
    duration = len(source_set) + tree.diameter_bound + 2
    total_rounds = t0 + duration
    sched = _Schedule(
        total_rounds, csr, SizeModel(csr.n), track_edges
    )
    _emit_tree_phase(sched, csr, tree)
    index = {uid: i for i, uid in enumerate(csr.ids.tolist())}
    source_idx = sorted(index[s] for s in source_set)
    delta, parent = _emit_ssp_phase(sched, csr, source_idx, t0, duration)
    metrics = sched.finalize(bandwidth_bits)
    ids = csr.ids.tolist()
    source_ids = [ids[s] for s in source_idx]
    infinite = np.iinfo(np.int64).max // 4
    results = {}
    for u in range(csr.n):
        dist_row = delta[u].tolist()
        parent_row = parent[u].tolist()
        distances_u: Dict[int, int] = {}
        parents_u: Dict[int, Optional[int]] = {}
        for column, sid in enumerate(source_ids):
            if dist_row[column] >= infinite:
                continue
            distances_u[sid] = dist_row[column]
            p = parent_row[column]
            parents_u[sid] = None if p == -2 else ids[p]
        results[ids[u]] = SspResult(
            uid=ids[u], distances=distances_u, parents=parents_u,
        )
    return SspSummary(
        sources=source_set, results=results, metrics=metrics,
    )
