"""Vectorized simulation backend (``--backend=vector``).

This package re-implements the fault-free, strict-policy execution of
the paper's core algorithms (BFS, Algorithm 1 APSP, Algorithm 2 S-SP,
the Lemma 2–7 property epilogue and exact girth) as batched numpy array
operations over a CSR-style adjacency structure, instead of stepping one
Python generator per node per round.  The message *schedules* of those
protocols are closed-form functions of the distance matrix and the
``T_1`` pebble traversal, so whole runs collapse into a handful of
``bincount``/matmul passes — 10–50× faster at ``n ≥ 512`` and practical
at ``n = 2048+``.

The contract is byte-identical observability: every entry point returns
the same result objects and the same
:class:`~repro.congest.metrics.RunMetrics` — rounds, message and bit
totals, per-round series, max-per-edge counters and (optionally)
per-edge cumulative bits — as the object engine, pinned by the golden
equivalence fixtures and a cross-backend hypothesis property test.

numpy is an *optional* dependency (``pip install "repro[vector]"``).
Importing this package never fails; calling an entry point without
numpy raises :class:`VectorBackendUnavailable` naming the install extra.
What the vector backend deliberately does **not** support (the object
engine remains the reference for these): fault injection, non-strict
bandwidth policies, the ``priority="id"`` S-SP rule, and tracing.
Unsupported requests raise :class:`VectorBackendError`.
"""

from __future__ import annotations

from typing import Any

try:  # pragma: no cover - trivially environment-dependent
    import numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    HAS_NUMPY = False

#: The pip extra that pulls in the vector backend's only dependency.
INSTALL_EXTRA = "vector"

#: One canonical sentence, reused by every layer that reports the
#: missing dependency (protocol dispatch, campaign spec validation,
#: CLI) so the remedy always reads the same.
NUMPY_HINT = (
    "the vector backend requires numpy; install the "
    f"'{INSTALL_EXTRA}' extra (pip install \"repro[{INSTALL_EXTRA}]\") "
    "or pick --backend=object"
)


class VectorBackendError(RuntimeError):
    """A request the vector backend deliberately does not support."""


class VectorBackendUnavailable(VectorBackendError):
    """numpy is not importable, so the vector backend cannot run."""


def require_numpy() -> None:
    """Raise :class:`VectorBackendUnavailable` unless numpy imports."""
    if not HAS_NUMPY:
        raise VectorBackendUnavailable(NUMPY_HINT)


def _load_engine():
    require_numpy()
    import importlib

    return importlib.import_module(__name__ + "._engine")


def run_bfs(graph, **kwargs: Any):
    """Vector twin of :func:`repro.core.run_bfs`; returns ``(results, metrics)``."""
    return _load_engine().run_bfs(graph, **kwargs)


def run_apsp(graph, **kwargs: Any):
    """Vector twin of :func:`repro.core.run_apsp`; returns an ``ApspSummary``."""
    return _load_engine().run_apsp(graph, **kwargs)


def run_ssp(graph, sources, **kwargs: Any):
    """Vector twin of :func:`repro.core.run_ssp`; returns an ``SspSummary``."""
    return _load_engine().run_ssp(graph, sources, **kwargs)


def run_graph_properties(graph, **kwargs: Any):
    """Vector twin of :func:`repro.core.run_graph_properties`."""
    return _load_engine().run_graph_properties(graph, **kwargs)


def run_exact_girth(graph, **kwargs: Any):
    """Vector twin of :func:`repro.core.run_exact_girth`."""
    return _load_engine().run_exact_girth(graph, **kwargs)
