"""The asyncio HTTP+JSON front end of the distance-query service.

Stdlib only: a hand-rolled HTTP/1.1 layer over ``asyncio.start_server``
with keep-alive, because the service's job — parse a query string,
answer from a resident matrix — needs nothing more.  Endpoints:

====================  ======================================================
``GET /healthz``      liveness probe
``GET /graphs``       loaded graphs (spec, n, m)
``POST /graphs``      ``{"spec": "er:64:p=0.1:seed=1"}`` — preload a graph
``GET /distance``     ``?graph=SPEC&source=U&target=V[&protocol=P…]``
``GET /eccentricity`` ``?graph=SPEC&node=U[&protocol=P…]``
``GET /diameter``     ``?graph=SPEC[&protocol=P…]``
``GET /stats``        the :class:`~repro.serve.stats.ServeStats` snapshot
====================  ======================================================

Query answers carry the serving ``tier`` (``memory`` / ``disk`` /
``computed``) so clients — and the CI smoke job — can verify that
repeats never re-run a simulation.  Cold misses are routed through the
:class:`~repro.serve.batch.SourceBatcher`, so concurrent misses against
one graph coalesce into a single Algorithm 2 run.

Shutdown is drain-first: SIGINT/SIGTERM (or
:meth:`DistanceServer.shutdown`) stops accepting connections, flushes
every open batch window, answers in-flight requests, then flushes the
stats snapshot.  ``repro serve`` exits 0 on a drained shutdown.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .batch import DEFAULT_MAX_BATCH, DEFAULT_TICK_S, SourceBatcher
from .service import DistanceService, QueryError

#: Seconds shutdown waits for in-flight request handlers after the
#: batcher drained before force-closing connections.
DRAIN_GRACE_S = 10.0

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default: persistent unless ``Connection: close``."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on EOF/reset."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
            ConnectionError):
        return None
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        return None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            key, value = line.split(":", 1)
            headers[key.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", 0) or 0)
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query).items()
    }
    return Request(
        method=method.upper(), path=split.path, query=query,
        headers=headers, body=body,
    )


def encode_response(
    status: int, payload: Any, *, keep_alive: bool
) -> bytes:
    """Serialize one JSON response."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    ).encode("latin-1")
    return head + body


class DistanceServer:
    """The HTTP front end over one :class:`DistanceService`."""

    def __init__(
        self,
        service: Optional[DistanceService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_s: float = DEFAULT_TICK_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        stats_path: Optional[str] = None,
        log=None,
    ) -> None:
        self.service = service if service is not None else DistanceService()
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.stats_path = stats_path
        self.batcher = SourceBatcher(
            self.service, tick_s=tick_s, max_batch=max_batch
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._log = log or (lambda msg: print(msg, file=sys.stderr))
        self._stopping = False
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._connections: set = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> Dict[str, Any]:
        """Drain-first shutdown; returns a JSON-pure summary.

        Order matters: stop accepting, flush open batch windows (so
        every accepted query can be answered), wait for in-flight
        handlers, then close lingering keep-alive connections and
        flush the stats snapshot.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await self.batcher.drain()
        try:
            await asyncio.wait_for(self._idle.wait(), DRAIN_GRACE_S)
            forced = 0
        except asyncio.TimeoutError:
            forced = self._active_requests
        for writer in list(self._connections):
            writer.close()
        self.batcher.close()
        snapshot = self.service.stats.snapshot()
        if self.stats_path:
            with open(self.stats_path, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return {
            "drained_batches": drained,
            "forced_connections": forced,
            "stats": snapshot,
        }

    # -- connection handling -----------------------------------------------

    def _request_started(self) -> None:
        self._active_requests += 1
        self._idle.clear()

    def _request_finished(self) -> None:
        self._active_requests -= 1
        if self._active_requests == 0:
            self._idle.set()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                request = await read_request(reader)
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._stopping
                self._request_started()
                started = time.perf_counter()
                try:
                    status, payload = await self._dispatch(request)
                finally:
                    elapsed = time.perf_counter() - started
                    self._request_finished()
                self.service.stats.observe_request(
                    request.path, elapsed, ok=status < 400
                )
                writer.write(
                    encode_response(status, payload, keep_alive=keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, request: Request) -> Tuple[int, Any]:
        try:
            if request.path == "/healthz":
                return 200, {"ok": True}
            if request.path == "/stats":
                return 200, self.service.stats.snapshot()
            if request.path == "/graphs":
                return await self._route_graphs(request)
            if request.path == "/distance":
                return await self._route_distance(request)
            if request.path == "/eccentricity":
                return await self._route_eccentricity(request)
            if request.path == "/diameter":
                return await self._route_diameter(request)
            return 404, {"error": f"no such endpoint {request.path!r}"}
        except QueryError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # defensive: a 500 must not kill the loop
            self._log(
                f"repro-serve: internal error on {request.path}: "
                f"{exc}\n{traceback.format_exc()}"
            )
            return 500, {"error": f"internal error: {exc}"}

    # -- endpoint helpers --------------------------------------------------

    @staticmethod
    def _required(request: Request, name: str) -> str:
        value = request.query.get(name)
        if value is None:
            raise QueryError(f"missing query parameter {name!r}")
        return value

    @staticmethod
    def _int_param(request: Request, name: str) -> int:
        text = DistanceServer._required(request, name)
        try:
            return int(text)
        except ValueError:
            raise QueryError(f"parameter {name!r} must be an int, "
                             f"got {text!r}")

    def _family(self, request: Request):
        protocol = request.query.get("protocol", "apsp")
        params: Dict[str, Any] = {}
        for name in ("max_weight", "weight_seed"):
            if name in request.query:
                params[name] = self._int_param(request, name)
        return self.service.family_for(
            self._required(request, "graph"), protocol, params
        )

    async def _ensure_row(self, family, node: int) -> str:
        """Async row materialization: cache tiers, then the batcher."""
        tier = self.service.lookup_row(family, node)
        if tier is None:
            await self.batcher.row(family, node)
            tier = "computed"
        self.service.stats.observe_tier(tier)
        return tier

    async def _route_graphs(self, request: Request) -> Tuple[int, Any]:
        if request.method == "GET":
            return 200, {"graphs": self.service.graphs()}
        if request.method == "POST":
            try:
                payload = json.loads(request.body.decode("utf-8") or "{}")
            except ValueError as exc:
                raise QueryError(f"invalid JSON body: {exc}")
            spec = payload.get("spec")
            if not isinstance(spec, str):
                raise QueryError('body must be {"spec": "<graph spec>"}')
            graph = self.service.load_graph(spec)
            return 200, {"spec": spec, "n": graph.n, "m": graph.m}
        return 405, {"error": "use GET or POST"}

    async def _route_distance(self, request: Request) -> Tuple[int, Any]:
        family = self._family(request)
        source = self._int_param(request, "source")
        target = self._int_param(request, "target")
        graph = self.service.load_graph(family.graph_spec)
        for name, node in (("source", source), ("target", target)):
            self.service._check_node(graph, node, name)
        matrix = self.service.matrix(family)
        value = matrix.distance(source, target)
        if value is not None or matrix.has_row(source):
            tier = "memory"
            self.service.stats.observe_tier(tier)
        else:
            tier = await self._ensure_row(family, source)
            value = self.service.matrix(family).distance(source, target)
        return 200, {
            "graph": family.graph_spec, "protocol": family.protocol,
            "source": source, "target": target,
            "distance": value, "tier": tier,
        }

    async def _route_eccentricity(
        self, request: Request
    ) -> Tuple[int, Any]:
        family = self._family(request)
        node = self._int_param(request, "node")
        graph = self.service.load_graph(family.graph_spec)
        self.service._check_node(graph, node, "node")
        matrix = self.service.matrix(family)
        if matrix.has_row(node):
            tier = "memory"
            self.service.stats.observe_tier(tier)
        else:
            tier = await self._ensure_row(family, node)
        value = self.service.matrix(family).eccentricity(node)
        return 200, {
            "graph": family.graph_spec, "protocol": family.protocol,
            "node": node, "eccentricity": value, "tier": tier,
        }

    async def _route_diameter(self, request: Request) -> Tuple[int, Any]:
        family = self._family(request)
        tier = self.service.lookup_full(family)
        if tier is None:
            await self.batcher.full(family)
            tier = "computed"
        self.service.stats.observe_tier(tier)
        value = self.service.matrix(family).diameter()
        return 200, {
            "graph": family.graph_spec, "protocol": family.protocol,
            "diameter": value, "tier": tier,
        }


# ---------------------------------------------------------------------------
# Blocking entry point (the ``repro serve`` subcommand).
# ---------------------------------------------------------------------------


@dataclass
class ServerConfig:
    """Everything ``repro serve`` passes down."""

    host: str = "127.0.0.1"
    port: int = 8972
    graphs: Tuple[str, ...] = ()
    cache_dir: Optional[str] = None
    max_matrix_bytes: int = 64 * 1024 * 1024
    seed: int = 0
    policy: str = "strict"
    tick_s: float = DEFAULT_TICK_S
    max_batch: int = DEFAULT_MAX_BATCH
    stats_path: Optional[str] = None
    #: Extra graph specs to warm (full APSP matrix) before serving.
    warm: Tuple[str, ...] = ()


async def _serve_main(config: ServerConfig) -> int:
    service = DistanceService(
        cache_dir=config.cache_dir,
        max_matrix_bytes=config.max_matrix_bytes,
        seed=config.seed,
        policy=config.policy,
    )
    for spec in config.graphs:
        service.load_graph(spec)
    server = DistanceServer(
        service,
        host=config.host,
        port=config.port,
        tick_s=config.tick_s,
        max_batch=config.max_batch,
        stats_path=config.stats_path,
    )
    await server.start()
    for spec in config.warm:
        family = service.family_for(spec)
        if service.lookup_full(family) is None:
            await server.batcher.full(family)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    print(
        f"repro-serve: ready on http://{server.host}:{server.port} "
        f"({len(config.graphs)} graph(s) preloaded)",
        flush=True,
    )
    await stop.wait()
    summary = await server.shutdown()
    stats = summary["stats"]
    rate = stats["cache"]["hit_rate"]
    print(
        f"repro-serve: drained {summary['drained_batches']} batch "
        f"task(s), {stats['cache']['lookups']} lookups, hit rate "
        f"{'n/a' if rate is None else f'{rate:.0%}'}; stats flushed",
        flush=True,
    )
    return 0


def run_server(config: ServerConfig) -> int:
    """Run the server until SIGINT/SIGTERM; returns the exit code."""
    return asyncio.run(_serve_main(config))


class ServerThread:
    """A server on a background thread (tests, docs, self-benchmarks).

    Context-manager: binds an ephemeral port by default, exposes
    ``.port`` and ``.service``, and drain-shuts-down on exit::

        with ServerThread(graphs=["path:16"]) as handle:
            urllib.request.urlopen(
                f"http://127.0.0.1:{handle.port}/healthz")
    """

    def __init__(
        self,
        service: Optional[DistanceService] = None,
        *,
        graphs: Tuple[str, ...] = (),
        host: str = "127.0.0.1",
        port: int = 0,
        tick_s: float = DEFAULT_TICK_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        stats_path: Optional[str] = None,
    ) -> None:
        self.service = service if service is not None else DistanceService()
        for spec in graphs:
            self.service.load_graph(spec)
        self._kwargs = dict(
            host=host, port=port, tick_s=tick_s, max_batch=max_batch,
            stats_path=stats_path,
        )
        self.server: Optional[DistanceServer] = None
        self.port: Optional[int] = None
        self.shutdown_summary: Optional[Dict[str, Any]] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def start(self) -> "ServerThread":
        """Start the thread and block until the server is bound."""
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread did not become ready")
        if self._failure is not None:
            raise RuntimeError(
                f"server thread failed to start: {self._failure}"
            )
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # startup failures surface in start()
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = DistanceServer(self.service, **self._kwargs)
        await self.server.start()
        self.port = self.server.port
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        self.shutdown_summary = await self.server.shutdown()

    def stop(self) -> None:
        """Drain-shutdown the server and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    @property
    def url(self) -> str:
        """Base URL of the bound server (valid after :meth:`start`)."""
        return f"http://{self._kwargs['host']}:{self.port}"

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
