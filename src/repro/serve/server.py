"""The asyncio HTTP+JSON front end of the distance-query service.

Stdlib only: a hand-rolled HTTP/1.1 layer over ``asyncio.start_server``
with keep-alive, because the service's job — parse a query string,
answer from a resident matrix — needs nothing more.  Endpoints:

====================  ======================================================
``GET /healthz``      liveness probe (200 while the process runs)
``GET /readyz``       readiness: 200 only with a full worker complement
``GET /graphs``       loaded graphs (spec, n, m)
``POST /graphs``      ``{"spec": "er:64:p=0.1:seed=1"}`` — preload a graph
``GET /distance``     ``?graph=SPEC&source=U&target=V[&protocol=P…]``
``GET /eccentricity`` ``?graph=SPEC&node=U[&protocol=P…]``
``GET /diameter``     ``?graph=SPEC[&protocol=P…]``
``GET /stats``        the :class:`~repro.serve.stats.ServeStats` snapshot
====================  ======================================================

Query answers carry the serving ``tier`` (``memory`` / ``disk`` /
``computed``) so clients — and the CI smoke job — can verify that
repeats never re-run a simulation.  Cold misses are routed through the
:class:`~repro.serve.batch.SourceBatcher`, so concurrent misses against
one graph coalesce into a single Algorithm 2 run.

Robustness contract (docs/serving.md "Failure modes"):

* with ``workers > 0`` cold computes run in the supervised
  multiprocess pool (:mod:`repro.serve.supervisor`): per-request
  deadlines, crash retries, automatic respawn;
* admission control sheds with ``429 Retry-After`` — both the HTTP
  in-flight cap (``max_inflight``) and pool-queue saturation; cache
  hits (memory or disk tier) keep being served while the pool is full;
* a per-family circuit breaker (:mod:`repro.serve.breaker`) trips
  after repeated compute failures and answers ``503 Retry-After``;
* an exact ``/diameter`` that misses its deadline degrades to the
  paper's 2-vs-4 classification (Algorithm 3) — the answer carries
  ``degraded: true`` and the approximation metadata;
* malformed ``Content-Length`` gets ``400``, oversize bodies ``413``,
  and a stalled body read is dropped after ``read_timeout_s`` without
  leaking the in-flight counter.

Shutdown is drain-first: SIGINT/SIGTERM (or
:meth:`DistanceServer.shutdown`) stops accepting connections, flushes
every open batch window, answers in-flight requests, drains the worker
pool, then flushes the stats snapshot.  ``repro serve`` exits 0 on a
drained shutdown.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .batch import DEFAULT_MAX_BATCH, DEFAULT_TICK_S, SourceBatcher
from .breaker import (
    DEFAULT_RESET_S,
    DEFAULT_THRESHOLD,
    BreakerBoard,
    BreakerOpen,
)
from .matrix import QueryFamily
from .service import DistanceService, QueryError
from .supervisor import (
    DEFAULT_DEADLINE_S,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_RETRIES,
    DEFAULT_WORKERS,
    ComputeFailed,
    DeadlineExceeded,
    PoolSaturated,
    Supervisor,
    retry_after_header,
)

#: Seconds shutdown waits for in-flight request handlers after the
#: batcher drained before force-closing connections.
DRAIN_GRACE_S = 10.0

#: Default cap on request body size (satellite of ISSUE 7: a huge
#: ``Content-Length`` must not buffer unboundedly).
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Default budget for reading one request's body off the socket.
DEFAULT_READ_TIMEOUT_S = 30.0

#: Default cap on concurrently handled requests (0 disables).
DEFAULT_MAX_INFLIGHT = 256

#: Seconds ``/readyz`` stays not-ready after a crash respawn.
DEFAULT_READY_SETTLE_S = 0.25

#: Endpoints exempt from admission control: probes and observability
#: must answer even when the server is shedding query load.
_ADMISSION_EXEMPT = frozenset({"/healthz", "/readyz", "/stats"})

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpProtocolError(Exception):
    """A request the HTTP layer rejects before routing (400/413)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default: persistent unless ``Connection: close``."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    read_timeout_s: Optional[float] = None,
) -> Optional[Request]:
    """Parse one request off the stream.

    Returns ``None`` on EOF/reset or when the body stalls past
    ``read_timeout_s`` (the caller drops the connection).  Raises
    :class:`HttpProtocolError` for requests that deserve an explicit
    rejection: a malformed ``Content-Length`` (400) or a declared body
    over ``max_body_bytes`` (413) — neither may crash the handler or
    buffer unboundedly.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
            ConnectionError):
        return None
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        return None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            key, value = line.split(":", 1)
            headers[key.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "").strip()
    try:
        length = int(raw_length) if raw_length else 0
    except ValueError:
        raise HttpProtocolError(
            400, f"invalid Content-Length header {raw_length!r}"
        )
    if length < 0:
        raise HttpProtocolError(
            400, f"invalid Content-Length header {raw_length!r}"
        )
    if length > max_body_bytes:
        raise HttpProtocolError(
            413,
            f"request body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte limit",
        )
    body = b""
    if length:
        try:
            read = reader.readexactly(length)
            if read_timeout_s is not None:
                body = await asyncio.wait_for(read, read_timeout_s)
            else:
                body = await read
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.TimeoutError):
            return None
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query).items()
    }
    return Request(
        method=method.upper(), path=split.path, query=query,
        headers=headers, body=body,
    )


def encode_response(
    status: int,
    payload: Any,
    *,
    keep_alive: bool,
    headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Serialize one JSON response (plus optional extra headers)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extra}"
        f"\r\n"
    ).encode("latin-1")
    return head + body


class DistanceServer:
    """The HTTP front end over one :class:`DistanceService`."""

    def __init__(
        self,
        service: Optional[DistanceService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_s: float = DEFAULT_TICK_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        stats_path: Optional[str] = None,
        workers: int = 0,
        deadline_s: Optional[float] = DEFAULT_DEADLINE_S,
        retries: int = DEFAULT_RETRIES,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        chaos: Optional[Mapping[str, Any]] = None,
        breaker_threshold: int = DEFAULT_THRESHOLD,
        breaker_reset_s: float = DEFAULT_RESET_S,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        read_timeout_s: Optional[float] = DEFAULT_READ_TIMEOUT_S,
        ready_settle_s: float = DEFAULT_READY_SETTLE_S,
        degrade: bool = True,
        log=None,
    ) -> None:
        self.service = service if service is not None else DistanceService()
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.stats_path = stats_path
        self.max_inflight = max(0, int(max_inflight))
        self.max_body_bytes = max_body_bytes
        self.read_timeout_s = read_timeout_s
        self.ready_settle_s = ready_settle_s
        self.degrade = degrade
        self.supervisor: Optional[Supervisor] = None
        run_rows = run_full = None
        if workers > 0:
            self.supervisor = Supervisor(
                self.service,
                workers=workers,
                deadline_s=deadline_s,
                retries=retries,
                queue_depth=queue_depth,
                chaos=chaos,
            )
            run_rows, run_full = self._pool_rows, self._pool_full
        self.batcher = SourceBatcher(
            self.service, tick_s=tick_s, max_batch=max_batch,
            run_rows=run_rows, run_full=run_full,
        )
        self.breakers = (
            BreakerBoard(
                threshold=breaker_threshold, reset_s=breaker_reset_s
            )
            if breaker_threshold > 0 else None
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._log = log or (lambda msg: print(msg, file=sys.stderr))
        self._stopping = False
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._connections: set = set()
        self._shed = 0
        self._protocol_errors = 0
        self._degraded = 0
        stats = self.service.stats
        stats.set_section("admission", self._admission_snapshot)
        if self.supervisor is not None:
            stats.set_section("supervisor", self.supervisor.snapshot)
        if self.breakers is not None:
            stats.set_section("breakers", self.breakers.snapshot)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the worker pool (if any), bind, and accept."""
        if self.supervisor is not None:
            await self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> Dict[str, Any]:
        """Drain-first shutdown; returns a JSON-pure summary.

        Order matters: stop accepting, flush open batch windows (so
        every accepted query can be answered), wait for in-flight
        handlers, drain and stop the worker pool, then close lingering
        keep-alive connections and flush the stats snapshot.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await self.batcher.drain()
        try:
            await asyncio.wait_for(self._idle.wait(), DRAIN_GRACE_S)
            forced = 0
        except asyncio.TimeoutError:
            forced = self._active_requests
        if self.supervisor is not None:
            await self.supervisor.drain()
            await self.supervisor.close()
        for writer in list(self._connections):
            writer.close()
        self.batcher.close()
        snapshot = self.service.stats.snapshot()
        if self.stats_path:
            with open(self.stats_path, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return {
            "drained_batches": drained,
            "forced_connections": forced,
            "stats": snapshot,
        }

    # -- pool-backed compute runners (breaker recording per run) -----------

    @staticmethod
    def _breaker_key(family: QueryFamily) -> str:
        return f"{family.graph_spec}|{family.protocol}"

    async def _pool_rows(
        self, family: QueryFamily, sources: List[int]
    ) -> None:
        key = self._breaker_key(family)
        try:
            await self.supervisor.rows(family, sources)
        except (DeadlineExceeded, ComputeFailed):
            if self.breakers is not None:
                self.breakers.record_failure(key)
            raise
        else:
            if self.breakers is not None:
                self.breakers.record_success(key)

    async def _pool_full(self, family: QueryFamily) -> None:
        key = self._breaker_key(family)
        try:
            await self.supervisor.full(family)
        except (DeadlineExceeded, ComputeFailed):
            if self.breakers is not None:
                self.breakers.record_failure(key)
            raise
        else:
            if self.breakers is not None:
                self.breakers.record_success(key)

    # -- readiness / admission snapshots -----------------------------------

    def readiness(self) -> Tuple[bool, Dict[str, Any]]:
        """Readiness verdict plus its JSON-pure evidence.

        Liveness (``/healthz``) answers "is the process up"; readiness
        answers "can it take full query load": not stopping, and —
        when supervised — every configured worker alive.  A killed
        worker flips this false until the respawn lands.
        """
        detail: Dict[str, Any] = {"stopping": self._stopping}
        if self._stopping:
            return False, detail
        if self.supervisor is None:
            return True, detail
        alive = self.supervisor.live_workers()
        detail["workers"] = {
            "alive": alive, "configured": self.supervisor.workers,
        }
        if alive < self.supervisor.workers:
            return False, detail
        # Settle window: a crash respawn keeps readiness false briefly
        # so the disruption is observable (respawning is near-instant).
        age = self.supervisor.respawn_age_s()
        if age is not None and age < self.ready_settle_s:
            detail["settling"] = True
            return False, detail
        return True, detail

    def _admission_snapshot(self) -> Dict[str, Any]:
        return {
            "max_inflight": self.max_inflight,
            "in_flight": self._active_requests,
            "shed": self._shed,
            "protocol_errors": self._protocol_errors,
            "degraded_answers": self._degraded,
        }

    # -- connection handling -----------------------------------------------

    def _request_started(self) -> None:
        self._active_requests += 1
        self._idle.clear()

    def _request_finished(self) -> None:
        self._active_requests -= 1
        if self._active_requests == 0:
            self._idle.set()

    def _shed_response(self, request: Request) -> Tuple[int, Any, Dict]:
        self._shed += 1
        retry_s = 1.0
        return (
            429,
            {
                "error": "server is at its in-flight request cap; "
                         "retry shortly",
                "retry_after_s": retry_s,
            },
            {"Retry-After": retry_after_header(retry_s)},
        )

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_body_bytes=self.max_body_bytes,
                        read_timeout_s=self.read_timeout_s,
                    )
                except HttpProtocolError as exc:
                    # Reject explicitly, then drop the connection: the
                    # unread body bytes would desynchronize keep-alive.
                    self._protocol_errors += 1
                    writer.write(encode_response(
                        exc.status, {"error": exc.message},
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._stopping
                shed = (
                    self.max_inflight
                    and request.path not in _ADMISSION_EXEMPT
                    and self._active_requests >= self.max_inflight
                )
                started = time.perf_counter()
                if shed:
                    status, payload, headers = self._shed_response(request)
                else:
                    self._request_started()
                    try:
                        status, payload, headers = await self._dispatch(
                            request
                        )
                    finally:
                        self._request_finished()
                elapsed = time.perf_counter() - started
                self.service.stats.observe_request(
                    request.path, elapsed, ok=status < 400
                )
                writer.write(encode_response(
                    status, payload,
                    keep_alive=keep_alive, headers=headers,
                ))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self, request: Request
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        try:
            if request.path == "/healthz":
                return 200, {"ok": True}, None
            if request.path == "/readyz":
                ready, detail = self.readiness()
                return (
                    200 if ready else 503,
                    {"ready": ready, **detail},
                    None,
                )
            if request.path == "/stats":
                return 200, self.service.stats.snapshot(), None
            if request.path == "/graphs":
                status, payload = await self._route_graphs(request)
                return status, payload, None
            if request.path == "/distance":
                status, payload = await self._route_distance(request)
                return status, payload, None
            if request.path == "/eccentricity":
                status, payload = await self._route_eccentricity(request)
                return status, payload, None
            if request.path == "/diameter":
                status, payload = await self._route_diameter(request)
                return status, payload, None
            return 404, {"error": f"no such endpoint {request.path!r}"}, None
        except QueryError as exc:
            return 400, {"error": str(exc)}, None
        except PoolSaturated as exc:
            return (
                429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                {"Retry-After": retry_after_header(exc.retry_after_s)},
            )
        except BreakerOpen as exc:
            return (
                503,
                {
                    "error": str(exc),
                    "retry_after_s": round(exc.retry_after_s, 3),
                },
                {"Retry-After": retry_after_header(exc.retry_after_s)},
            )
        except DeadlineExceeded as exc:
            return (
                503,
                {"error": f"deadline exceeded: {exc}"},
                {"Retry-After": "1"},
            )
        except ComputeFailed as exc:
            return 500, {"error": f"compute failed: {exc}"}, None
        except Exception as exc:  # defensive: a 500 must not kill the loop
            self._log(
                f"repro-serve: internal error on {request.path}: "
                f"{exc}\n{traceback.format_exc()}"
            )
            return 500, {"error": f"internal error: {exc}"}, None

    # -- endpoint helpers --------------------------------------------------

    @staticmethod
    def _required(request: Request, name: str) -> str:
        value = request.query.get(name)
        if value is None:
            raise QueryError(f"missing query parameter {name!r}")
        return value

    @staticmethod
    def _int_param(request: Request, name: str) -> int:
        text = DistanceServer._required(request, name)
        try:
            return int(text)
        except ValueError:
            raise QueryError(f"parameter {name!r} must be an int, "
                             f"got {text!r}")

    def _family(self, request: Request):
        protocol = request.query.get("protocol", "apsp")
        params: Dict[str, Any] = {}
        for name in ("max_weight", "weight_seed"):
            if name in request.query:
                params[name] = self._int_param(request, name)
        return self.service.family_for(
            self._required(request, "graph"), protocol, params
        )

    def _check_breaker(self, family: QueryFamily) -> None:
        if self.breakers is not None:
            self.breakers.check(self._breaker_key(family))

    async def _ensure_row(self, family, node: int) -> str:
        """Async row materialization: cache tiers, then the batcher.

        Cache hits (memory or disk) bypass admission and the breaker
        entirely — a saturated pool or a tripped family still serves
        everything the two cache tiers hold.
        """
        tier = self.service.lookup_row(family, node)
        if tier is None:
            self._check_breaker(family)
            await self.batcher.row(family, node)
            tier = "computed"
        self.service.stats.observe_tier(tier)
        return tier

    async def _route_graphs(self, request: Request) -> Tuple[int, Any]:
        if request.method == "GET":
            return 200, {"graphs": self.service.graphs()}
        if request.method == "POST":
            try:
                payload = json.loads(request.body.decode("utf-8") or "{}")
            except ValueError as exc:
                raise QueryError(f"invalid JSON body: {exc}")
            spec = payload.get("spec")
            if not isinstance(spec, str):
                raise QueryError('body must be {"spec": "<graph spec>"}')
            graph = self.service.load_graph(spec)
            return 200, {"spec": spec, "n": graph.n, "m": graph.m}
        return 405, {"error": "use GET or POST"}

    async def _route_distance(self, request: Request) -> Tuple[int, Any]:
        family = self._family(request)
        source = self._int_param(request, "source")
        target = self._int_param(request, "target")
        graph = self.service.load_graph(family.graph_spec)
        for name, node in (("source", source), ("target", target)):
            self.service._check_node(graph, node, name)
        matrix = self.service.matrix(family)
        value = matrix.distance(source, target)
        if value is not None or matrix.has_row(source):
            tier = "memory"
            self.service.stats.observe_tier(tier)
        else:
            tier = await self._ensure_row(family, source)
            value = self.service.matrix(family).distance(source, target)
        return 200, {
            "graph": family.graph_spec, "protocol": family.protocol,
            "source": source, "target": target,
            "distance": value, "tier": tier,
        }

    async def _route_eccentricity(
        self, request: Request
    ) -> Tuple[int, Any]:
        family = self._family(request)
        node = self._int_param(request, "node")
        graph = self.service.load_graph(family.graph_spec)
        self.service._check_node(graph, node, "node")
        matrix = self.service.matrix(family)
        if matrix.has_row(node):
            tier = "memory"
            self.service.stats.observe_tier(tier)
        else:
            tier = await self._ensure_row(family, node)
        value = self.service.matrix(family).eccentricity(node)
        return 200, {
            "graph": family.graph_spec, "protocol": family.protocol,
            "node": node, "eccentricity": value, "tier": tier,
        }

    async def _route_diameter(self, request: Request) -> Tuple[int, Any]:
        family = self._family(request)
        tier = self.service.lookup_full(family)
        if tier is None:
            self._check_breaker(family)
            try:
                await self.batcher.full(family)
            except DeadlineExceeded:
                if self.supervisor is None or not self.degrade:
                    raise
                return await self._degraded_diameter(family)
            tier = "computed"
        self.service.stats.observe_tier(tier)
        value = self.service.matrix(family).diameter()
        return 200, {
            "graph": family.graph_spec, "protocol": family.protocol,
            "diameter": value, "tier": tier, "degraded": False,
        }

    async def _degraded_diameter(self, family) -> Tuple[int, Any]:
        """Deadline-missed fallback: the 2-vs-4 classification.

        Algorithm 3 answers in Õ(√n) rounds instead of Algorithm 1's
        O(n), so it fits a deadline the exact run missed.  The verdict
        is exact on diameter-{2,4} promise graphs; in general ``2``
        certifies diameter ≤ 2 and ``4`` certifies diameter ≥ 3 —
        a factor-2 classification, flagged ``degraded`` so clients can
        retry for the exact answer later.
        """
        verdict = await self.supervisor.approx_diameter(family)
        self._degraded += 1
        return 200, {
            "graph": family.graph_spec, "protocol": family.protocol,
            "diameter": verdict, "tier": "degraded",
            "degraded": True,
            "approximation": "two-vs-four",
            "approximation_factor": 2,
        }


# ---------------------------------------------------------------------------
# Blocking entry point (the ``repro serve`` subcommand).
# ---------------------------------------------------------------------------


@dataclass
class ServerConfig:
    """Everything ``repro serve`` passes down."""

    host: str = "127.0.0.1"
    port: int = 8972
    graphs: Tuple[str, ...] = ()
    cache_dir: Optional[str] = None
    max_matrix_bytes: int = 64 * 1024 * 1024
    seed: int = 0
    policy: str = "strict"
    #: Execution engine for on-demand runs (``object`` or ``vector``).
    backend: str = "object"
    tick_s: float = DEFAULT_TICK_S
    max_batch: int = DEFAULT_MAX_BATCH
    stats_path: Optional[str] = None
    #: Extra graph specs to warm (full APSP matrix) before serving.
    warm: Tuple[str, ...] = ()
    #: Supervised worker processes (0 = in-process compute thread).
    workers: int = DEFAULT_WORKERS
    deadline_s: Optional[float] = DEFAULT_DEADLINE_S
    retries: int = DEFAULT_RETRIES
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    breaker_threshold: int = DEFAULT_THRESHOLD
    breaker_reset_s: float = DEFAULT_RESET_S
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    read_timeout_s: Optional[float] = DEFAULT_READ_TIMEOUT_S
    #: Chaos-injection plan (tests / the serve-chaos harness only).
    chaos: Optional[Dict[str, Any]] = None


def _server_kwargs(config: ServerConfig) -> Dict[str, Any]:
    return dict(
        host=config.host,
        port=config.port,
        tick_s=config.tick_s,
        max_batch=config.max_batch,
        stats_path=config.stats_path,
        workers=config.workers,
        deadline_s=config.deadline_s,
        retries=config.retries,
        queue_depth=config.queue_depth,
        breaker_threshold=config.breaker_threshold,
        breaker_reset_s=config.breaker_reset_s,
        max_inflight=config.max_inflight,
        max_body_bytes=config.max_body_bytes,
        read_timeout_s=config.read_timeout_s,
        chaos=config.chaos,
    )


async def _serve_main(config: ServerConfig) -> int:
    service = DistanceService(
        cache_dir=config.cache_dir,
        max_matrix_bytes=config.max_matrix_bytes,
        seed=config.seed,
        policy=config.policy,
        backend=config.backend,
    )
    for spec in config.graphs:
        service.load_graph(spec)
    server = DistanceServer(service, **_server_kwargs(config))
    await server.start()
    for spec in config.warm:
        family = service.family_for(spec)
        if service.lookup_full(family) is None:
            await server.batcher.full(family)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    print(
        f"repro-serve: ready on http://{server.host}:{server.port} "
        f"({len(config.graphs)} graph(s) preloaded, "
        f"{config.workers} worker(s))",
        flush=True,
    )
    await stop.wait()
    summary = await server.shutdown()
    stats = summary["stats"]
    rate = stats["cache"]["hit_rate"]
    print(
        f"repro-serve: drained {summary['drained_batches']} batch "
        f"task(s), {stats['cache']['lookups']} lookups, hit rate "
        f"{'n/a' if rate is None else f'{rate:.0%}'}; stats flushed",
        flush=True,
    )
    return 0


def run_server(config: ServerConfig) -> int:
    """Run the server until SIGINT/SIGTERM; returns the exit code."""
    return asyncio.run(_serve_main(config))


class ServerThread:
    """A server on a background thread (tests, docs, self-benchmarks).

    Context-manager: binds an ephemeral port by default, exposes
    ``.port`` and ``.service``, and drain-shuts-down on exit::

        with ServerThread(graphs=["path:16"]) as handle:
            urllib.request.urlopen(
                f"http://127.0.0.1:{handle.port}/healthz")

    Extra keyword arguments (``workers``, ``deadline_s``, ``chaos``,
    ``max_inflight``, …) pass through to :class:`DistanceServer`, so
    tests can stand up a fully supervised instance.
    """

    def __init__(
        self,
        service: Optional[DistanceService] = None,
        *,
        graphs: Tuple[str, ...] = (),
        host: str = "127.0.0.1",
        port: int = 0,
        tick_s: float = DEFAULT_TICK_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        stats_path: Optional[str] = None,
        **server_kwargs: Any,
    ) -> None:
        self.service = service if service is not None else DistanceService()
        for spec in graphs:
            self.service.load_graph(spec)
        self._kwargs = dict(
            host=host, port=port, tick_s=tick_s, max_batch=max_batch,
            stats_path=stats_path, **server_kwargs,
        )
        self.server: Optional[DistanceServer] = None
        self.port: Optional[int] = None
        self.shutdown_summary: Optional[Dict[str, Any]] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def start(self) -> "ServerThread":
        """Start the thread and block until the server is bound."""
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread did not become ready")
        if self._failure is not None:
            raise RuntimeError(
                f"server thread failed to start: {self._failure}"
            )
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # startup failures surface in start()
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = DistanceServer(self.service, **self._kwargs)
        await self.server.start()
        self.port = self.server.port
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        self.shutdown_summary = await self.server.shutdown()

    def stop(self) -> None:
        """Drain-shutdown the server and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    @property
    def url(self) -> str:
        """Base URL of the bound server (valid after :meth:`start`)."""
        return f"http://{self._kwargs['host']}:{self.port}"

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
