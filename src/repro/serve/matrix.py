"""Distance matrices the query service accumulates and serves from.

A :class:`DistanceMatrix` holds the rows computed so far for one
*query family* (graph × protocol × params × simulator axes).  Rows
arrive two ways:

* a **full run** (Algorithm 1 / the weighted reduction) fills every row
  at once and marks the matrix complete;
* a **batched S-SP run** (Algorithm 2) contributes one row per source
  in the batch — the matrix grows toward completeness as queries touch
  more sources.

Distances are symmetric (undirected graphs), so a point query
``distance(u, v)`` is answerable from *either* endpoint's row — the
matrix checks both before reporting a miss.  Eccentricity needs the
queried node's own (full-length) row; diameter needs a complete matrix.

Everything is JSON-pure via :meth:`row_record` / :meth:`full_record` so
rows persist in the content-addressed
:class:`~repro.harness.cache.RunCache` and survive server restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..harness.hashing import canonical_json, task_key


@dataclass(frozen=True)
class QueryFamily:
    """The cache identity of one stream of compatible queries.

    Two queries share a family — and therefore a matrix, a batcher
    queue and a set of cache entries — iff every axis that can change a
    distance value matches: the graph spec, the protocol computing the
    metric, its parameters, and the simulator seed/policy.
    """

    graph_spec: str
    protocol: str = "apsp"
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    policy: str = "strict"
    #: Execution engine of the family's runs.  Part of the cache
    #: identity — object and vector results never share records — but
    #: serialized only when non-default, so records written before the
    #: field existed still address the same object-backend entries.
    backend: str = "object"

    @classmethod
    def make(
        cls,
        graph_spec: str,
        protocol: str = "apsp",
        params: Optional[Mapping[str, Any]] = None,
        *,
        seed: int = 0,
        policy: str = "strict",
        backend: str = "object",
    ) -> "QueryFamily":
        """Build a family, normalizing params into sorted tuple form."""
        return cls(
            graph_spec=graph_spec,
            protocol=protocol,
            params=tuple(sorted((params or {}).items())),
            seed=seed,
            policy=policy,
            backend=backend,
        )

    def payload(self) -> Dict[str, Any]:
        """Deterministic dict identity (content-address input)."""
        payload = {
            "graph": self.graph_spec,
            "protocol": self.protocol,
            "params": dict(self.params),
            "seed": self.seed,
            "policy": self.policy,
        }
        if self.backend != "object":
            payload["backend"] = self.backend
        return payload

    def row_key(self, source: int) -> str:
        """Content address of one persisted source row."""
        return task_key(
            {"kind": "serve-row", "source": source, **self.payload()},
            salt="serve",
        )

    def matrix_key(self) -> str:
        """Content address of the persisted full matrix."""
        return task_key(
            {"kind": "serve-matrix", **self.payload()},
            salt="serve",
        )


@dataclass
class DistanceMatrix:
    """Accumulated distance rows for one :class:`QueryFamily`."""

    family: QueryFamily
    n: int
    rows: Dict[int, Dict[int, int]] = field(default_factory=dict)
    complete: bool = False
    #: Simulation rounds spent building what the matrix holds.
    rounds_spent: int = 0
    #: Estimated bytes the rows occupy (LRU accounting).
    size_bytes: int = 0

    # -- growth ------------------------------------------------------------

    def add_row(self, source: int, distances: Mapping[int, int]) -> None:
        """Merge one source row (idempotent for identical rows)."""
        if source in self.rows:
            return
        row = dict(distances)
        self.rows[source] = row
        self.size_bytes += _row_bytes(row)
        if len(self.rows) >= self.n:
            self.complete = True

    def adopt_full(
        self, rows: Mapping[int, Mapping[int, int]], rounds: int
    ) -> None:
        """Replace contents with a complete matrix from a full run."""
        self.rows = {u: dict(r) for u, r in rows.items()}
        self.size_bytes = sum(_row_bytes(r) for r in self.rows.values())
        self.complete = True
        self.rounds_spent += rounds

    # -- queries -----------------------------------------------------------

    def has_row(self, node: int) -> bool:
        """Whether ``node``'s own source row is resident."""
        return node in self.rows

    def distance(self, u: int, v: int) -> Optional[int]:
        """``d(u, v)`` from either endpoint's row; ``None`` if unknown.

        A known row that lacks the other endpoint means *unreachable*
        (disconnected input); that is reported as ``None`` too and the
        caller distinguishes via :meth:`has_row`.
        """
        row = self.rows.get(u)
        if row is not None:
            return row.get(v)
        row = self.rows.get(v)
        if row is not None:
            return row.get(u)
        return None

    def eccentricity(self, node: int) -> Optional[int]:
        """Max distance in ``node``'s own row (Lemma 2), if present."""
        row = self.rows.get(node)
        if not row:
            return None
        return max(row.values())

    def diameter(self) -> Optional[int]:
        """Max eccentricity over a *complete* matrix (Lemma 3)."""
        if not self.complete or not self.rows:
            return None
        return max(max(row.values(), default=0)
                   for row in self.rows.values())

    # -- persistence -------------------------------------------------------

    def row_record(self, source: int) -> Dict[str, Any]:
        """JSON-pure record of one row for the on-disk RunCache."""
        return {
            "kind": "serve-row/1",
            **self.family.payload(),
            "source": source,
            "distances": {str(v): d
                          for v, d in sorted(self.rows[source].items())},
        }

    def full_record(self) -> Dict[str, Any]:
        """JSON-pure record of the complete matrix."""
        return {
            "kind": "serve-matrix/1",
            **self.family.payload(),
            "rounds": self.rounds_spent,
            "distances": {
                str(u): {str(v): d for v, d in sorted(row.items())}
                for u, row in sorted(self.rows.items())
            },
        }


def row_from_record(record: Mapping[str, Any]) -> Dict[int, int]:
    """Decode the ``distances`` payload of a ``serve-row/1`` record."""
    return {int(v): d for v, d in record["distances"].items()}


def rows_from_matrix_record(
    record: Mapping[str, Any],
) -> Dict[int, Dict[int, int]]:
    """Decode the ``distances`` payload of a ``serve-matrix/1`` record."""
    return {
        int(u): {int(v): d for v, d in row.items()}
        for u, row in record["distances"].items()
    }


def _row_bytes(row: Mapping[int, int]) -> int:
    """Estimated storage footprint of one row (canonical JSON size)."""
    return len(canonical_json({str(k): v for k, v in row.items()}))


def rows_from_ssp_summary(
    summary: Any, sources: Iterable[int]
) -> Dict[int, Dict[int, int]]:
    """Pivot an :class:`~repro.core.results.SspSummary` into rows.

    S-SP leaves each *node* holding its distances to every source; the
    service wants each *source*'s distances to every node.  Symmetry of
    undirected hop distance makes the pivot exact.
    """
    rows: Dict[int, Dict[int, int]] = {s: {} for s in sources}
    for node, result in summary.results.items():
        for source, dist in result.distances.items():
            if source in rows:
                rows[source][node] = dist
    return rows
