"""The supervised multiprocess compute pool behind ``repro serve``.

The PR 2 campaign harness learned to survive hostile tasks — timeouts,
retries with backoff, worker-crash blame — but only offline.  This
module brings the same discipline to the serving path: cold
``compute_rows`` / ``compute_full`` work comes off the asyncio event
loop and runs in N supervised worker *processes*, so a crashed or
wedged Algorithm 2 run costs one worker (respawned automatically), not
the server.

Contract per job:

* a **deadline** bounds wall-clock from submission; an overdue worker
  is SIGKILLed and the waiter gets :class:`DeadlineExceeded` (the HTTP
  layer degrades ``/diameter`` to the 2-vs-4 approximation, everything
  else answers ``503``);
* a **crash** (worker SIGKILLed, segfaulted, ``os._exit``) requeues the
  job with exponential backoff up to ``retries`` times — the batch a
  killed worker was carrying is re-run, never dropped — then fails it
  with :class:`ComputeFailed`;
* a **deterministic in-task exception** is *not* retried (rerunning
  cannot help) and fails immediately with :class:`ComputeFailed`;
* **admission** is bounded: more than ``queue_depth`` jobs pending
  raises :class:`PoolSaturated` at submit time (the HTTP layer sheds
  with ``429 Retry-After``) so overload never buffers unboundedly.

Workers are plain ``multiprocessing`` children on a duplex pipe; each
keeps a per-process graph cache so repeated families avoid re-parsing.
A heartbeat task respawns workers that die while *idle* (an external
SIGKILL between jobs), which is what flips ``/readyz`` back to ready
without waiting for traffic.

Chaos injection — the serving twin of the harness's hostile ``chaos``
protocol — is built in for tests and the ``repro serve-chaos``
harness: a chaos plan makes the first N matching jobs hang, crash or
error *inside the worker* (routed through ``protocols.run("chaos")``
so the failure modes are exactly the campaign harness's).
"""

from __future__ import annotations

import asyncio
import math
import multiprocessing
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional

from .. import obs, protocols
from ..graphs.specs import parse_graph
from .matrix import QueryFamily, rows_from_ssp_summary
from .service import BACKENDS, DistanceService, sequential_rounds_estimate

#: Default worker-process count (``repro serve --workers``).
DEFAULT_WORKERS = 2

#: Default per-job wall-clock budget from submission to result.
DEFAULT_DEADLINE_S = 30.0

#: Crash retries per job (a killed worker requeues its batch this
#: many times before the job fails).
DEFAULT_RETRIES = 1

#: Base backoff before a crash-requeued job re-enters the queue.
DEFAULT_BACKOFF_S = 0.05

#: Max jobs pending (queued + running) before submission sheds.
DEFAULT_QUEUE_DEPTH = 128

#: How often the heartbeat respawns workers that died while idle.
HEARTBEAT_S = 0.25


class SupervisorError(RuntimeError):
    """Base class of pool-level failures."""


class PoolSaturated(SupervisorError):
    """Admission control: the job queue is full (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DeadlineExceeded(SupervisorError):
    """The job missed its wall-clock deadline (degrade or HTTP 503)."""


class ComputeFailed(SupervisorError):
    """The job failed in the worker (after crash retries, if any)."""


# ---------------------------------------------------------------------------
# Worker side (runs in the child process).
# ---------------------------------------------------------------------------


def _apply_inject(inject: Mapping[str, Any], graph) -> None:
    """Run the injected hostility through the ``chaos`` protocol.

    ``hang`` sleeps, ``crash`` kills the worker process outright,
    ``error`` raises — the exact failure modes the campaign harness's
    hostile protocol exercises, now inside a serve worker.
    """
    protocols.run(
        "chaos", graph,
        {"mode": inject.get("mode", "error"),
         "seconds": float(inject.get("seconds", 3600.0))},
    )


def _execute_job(
    job: Mapping[str, Any], graphs: Dict[str, Any]
) -> Dict[str, Any]:
    """Run one compute job; returns a pickle-pure result dict."""
    family = job["family"]
    spec = family["graph"]
    graph = graphs.get(spec)
    if graph is None:
        graph = parse_graph(spec)
        graphs[spec] = graph
    inject = job.get("inject")
    if inject:
        _apply_inject(inject, graph)
    kind = job["kind"]
    seed, policy = family["seed"], family["policy"]
    engine = family.get("backend", "object")
    if kind == "rows":
        backend = BACKENDS[family["protocol"]]
        sources = list(job["sources"])
        outcome = protocols.run(
            backend.row_protocol, graph, {"sources": sources},
            seed=seed, policy=policy, backend=engine,
        )
        return {
            "rows": rows_from_ssp_summary(outcome.summary, sources),
            "rounds": outcome.metrics.rounds,
        }
    if kind == "full":
        backend = BACKENDS[family["protocol"]]
        outcome = protocols.run(
            backend.full_protocol, graph, dict(family["params"]),
            seed=seed, policy=policy, backend=engine,
        )
        return {
            "rows": backend.rows_of(outcome.summary),
            "rounds": outcome.metrics.rounds,
        }
    if kind == "approx-diameter":
        outcome = protocols.run(
            "two-vs-four", graph, {}, seed=seed, policy=policy,
        )
        return {
            "diameter": outcome.summary.diameter,
            "rounds": outcome.metrics.rounds,
        }
    raise ValueError(f"unknown job kind {kind!r}")


def _worker_main(conn) -> None:
    """The worker-process loop: recv job → execute → send reply."""
    graphs: Dict[str, Any] = {}
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if job is None:
            return
        try:
            reply = {"ok": True, "result": _execute_job(job, graphs)}
        except BaseException as exc:  # noqa: BLE001 — reported per job
            reply = {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# ---------------------------------------------------------------------------
# Supervisor side (runs on the event loop).
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """One live worker process plus its parent pipe end."""

    __slots__ = ("process", "conn", "wid", "busy", "jobs_done")

    def __init__(self, process, conn, wid: int) -> None:
        self.process = process
        self.conn = conn
        self.wid = wid
        self.busy = False
        self.jobs_done = 0


class _Job:
    """One queued compute job and its waiter."""

    __slots__ = ("payload", "future", "attempt", "deadline")

    def __init__(self, payload, future, deadline: Optional[float]) -> None:
        self.payload = payload
        self.future = future
        self.attempt = 0
        self.deadline = deadline


_CLOSE = object()


def _mp_context():
    """Prefer fork (fast, inherits imports); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ChaosPlan:
    """Deterministic hostility applied to submitted jobs (tests only).

    ``spec`` keys: ``mode`` (``hang`` | ``crash`` | ``error``),
    ``seconds`` (hang duration), ``kinds`` (job kinds to target,
    default all), ``jobs`` (how many matching jobs to poison, default
    unbounded), ``attempts`` (poison only attempts below this per job,
    default all — ``1`` makes the first attempt fail and the crash
    retry succeed).
    """

    def __init__(self, spec: Mapping[str, Any]) -> None:
        self.mode = spec.get("mode", "error")
        self.seconds = float(spec.get("seconds", 3600.0))
        self.kinds = set(spec.get("kinds") or ())
        self.jobs_budget = spec.get("jobs")
        self.attempts = spec.get("attempts")
        self.poisoned = 0

    def stamp(self, payload: Dict[str, Any]) -> None:
        """Attach an ``inject`` block to ``payload`` if the plan says so."""
        if self.kinds and payload["kind"] not in self.kinds:
            return
        if self.jobs_budget is not None and self.poisoned >= self.jobs_budget:
            return
        self.poisoned += 1
        inject = {"mode": self.mode, "seconds": self.seconds}
        if self.attempts is not None:
            inject["attempts"] = int(self.attempts)
        payload["inject"] = inject


class Supervisor:
    """Supervised worker pool: deadlines, crash retry, respawn.

    Construct, ``await start()``, then call :meth:`rows`,
    :meth:`full` or :meth:`approx_diameter`; ``await drain()`` then
    ``await close()`` on shutdown.  All public methods must be called
    from the owning event loop.
    """

    def __init__(
        self,
        service: DistanceService,
        *,
        workers: int = DEFAULT_WORKERS,
        deadline_s: Optional[float] = DEFAULT_DEADLINE_S,
        retries: int = DEFAULT_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        chaos: Optional[Mapping[str, Any]] = None,
        heartbeat_s: float = HEARTBEAT_S,
    ) -> None:
        self.service = service
        self.workers = max(1, int(workers))
        self.deadline_s = deadline_s
        self.retries = max(0, int(retries))
        self.backoff_s = max(0.0, backoff_s)
        self.queue_depth = max(1, int(queue_depth))
        self.chaos = ChaosPlan(chaos) if chaos else None
        self.heartbeat_s = heartbeat_s
        self._mp = _mp_context()
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._handles: Dict[int, _WorkerHandle] = {}
        self._loops: List[asyncio.Task] = []
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._recv_pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve-pool"
        )
        self._pending = 0
        self._started = False
        self._closed = False
        self.last_respawn_at: Optional[float] = None
        # Counters (single-threaded on the loop; read by /stats).
        self.spawned = 0
        self.respawns = 0
        self.crashes = 0
        self.deadline_misses = 0
        self.requeues = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the workers and their dispatch loops."""
        if self._started:
            return
        self._started = True
        for wid in range(self.workers):
            self._handles[wid] = self._spawn(wid)
        for wid in range(self.workers):
            self._loops.append(
                asyncio.ensure_future(self._worker_loop(wid))
            )
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat())

    async def drain(self) -> None:
        """Wait until every accepted job has settled."""
        while self._pending:
            await asyncio.sleep(0.01)

    async def close(self) -> None:
        """Stop the loops and terminate every worker."""
        if self._closed:
            return
        self._closed = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
        for _ in self._loops:
            await self._queue.put(_CLOSE)
        if self._loops:
            await asyncio.gather(*self._loops, return_exceptions=True)
        for handle in self._handles.values():
            self._terminate(handle)
        self._handles.clear()
        self._recv_pool.shutdown(wait=False)

    # -- worker management -------------------------------------------------

    def _spawn(self, wid: int) -> _WorkerHandle:
        parent, child = self._mp.Pipe()
        process = self._mp.Process(
            target=_worker_main, args=(child,),
            name=f"repro-serve-worker-{wid}", daemon=True,
        )
        process.start()
        child.close()
        self.spawned += 1
        return _WorkerHandle(process, parent, wid)

    def _terminate(self, handle: _WorkerHandle) -> None:
        try:
            if handle.process.is_alive():
                handle.process.kill()
        except (OSError, ValueError):
            pass
        try:
            handle.conn.close()
        except OSError:
            pass

    def _respawn(self, wid: int) -> _WorkerHandle:
        self._terminate(self._handles[wid])
        handle = self._spawn(wid)
        self._handles[wid] = handle
        self.respawns += 1
        self.last_respawn_at = time.monotonic()
        return handle

    def respawn_age_s(self) -> Optional[float]:
        """Seconds since the last crash respawn (``None`` if never).

        Readiness uses this to report a *settle window* after a
        respawn: a freshly forked worker hasn't proven itself yet, and
        the brief not-ready blip is how orchestrators (and the chaos
        harness) observe that the pool was disrupted — the respawn
        itself is near-instant.
        """
        if self.last_respawn_at is None:
            return None
        return time.monotonic() - self.last_respawn_at

    async def _heartbeat(self) -> None:
        """Respawn workers that died while idle (external SIGKILL)."""
        while not self._closed:
            await asyncio.sleep(self.heartbeat_s)
            for wid, handle in list(self._handles.items()):
                if not handle.busy and not handle.process.is_alive():
                    self.crashes += 1
                    self._respawn(wid)

    def live_workers(self) -> int:
        """Workers whose processes are currently alive."""
        return sum(
            1 for handle in self._handles.values()
            if handle.process.is_alive()
        )

    def worker_pids(self) -> List[int]:
        """PIDs of live workers (the chaos harness's kill list)."""
        return [
            handle.process.pid
            for handle in self._handles.values()
            if handle.process.is_alive() and handle.process.pid
        ]

    # -- submission --------------------------------------------------------

    async def submit(
        self,
        payload: Dict[str, Any],
        *,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Queue one job and await its result dict.

        Raises :class:`PoolSaturated` (queue full),
        :class:`DeadlineExceeded` (wall-clock budget spent) or
        :class:`ComputeFailed` (worker crash budget spent, or a
        deterministic in-job exception).
        """
        if not self._started or self._closed:
            raise SupervisorError("supervisor is not running")
        if self._pending >= self.queue_depth:
            self.shed += 1
            raise PoolSaturated(
                f"compute pool is saturated "
                f"({self._pending} jobs pending, cap {self.queue_depth})",
                retry_after_s=1.0,
            )
        if self.chaos is not None:
            payload = dict(payload)
            self.chaos.stamp(payload)
        budget = self.deadline_s if deadline_s is None else deadline_s
        deadline = (
            time.monotonic() + budget if budget is not None else None
        )
        future = asyncio.get_running_loop().create_future()
        self._pending += 1
        self.submitted += 1
        tracer = obs.active()
        span_id = None
        if tracer is not None:
            span_id = tracer.span_begin(
                "serve_pool_job", round_no=0, kind=payload["kind"],
                graph=payload["family"]["graph"],
            )
        await self._queue.put(_Job(payload, future, deadline))
        try:
            result = await asyncio.shield(future)
        finally:
            if tracer is not None:
                tracer.span_end(
                    span_id,
                    round_no=0,
                    rounds=(
                        future.result().get("rounds", 0)
                        if future.done() and not future.cancelled()
                        and future.exception() is None else 0
                    ),
                )
        return result

    # -- the dispatch loops ------------------------------------------------

    def _finish(
        self,
        job: _Job,
        *,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        self._pending -= 1
        if error is not None:
            self.failed += 1
            if not job.future.done():
                job.future.set_exception(error)
        else:
            self.completed += 1
            if not job.future.done():
                job.future.set_result(result)

    async def _retry_or_fail(self, job: _Job, reason: str) -> None:
        """Crash path: requeue with backoff, or fail when budget spent."""
        if job.attempt < self.retries:
            job.attempt += 1
            self.requeues += 1
            delay = self.backoff_s * (2 ** (job.attempt - 1))
            if delay:
                await asyncio.sleep(delay)
            await self._queue.put(job)
        else:
            self._finish(job, error=ComputeFailed(
                f"{reason} ({job.attempt + 1} attempt(s))"
            ))

    async def _worker_loop(self, wid: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job is _CLOSE:
                return
            if job.deadline is not None and time.monotonic() >= job.deadline:
                self.deadline_misses += 1
                self._finish(job, error=DeadlineExceeded(
                    "job spent its deadline waiting in the queue"
                ))
                continue
            handle = self._handles[wid]
            if not handle.process.is_alive():
                handle = self._respawn(wid)
            handle.busy = True
            payload = dict(job.payload)
            payload["attempt"] = job.attempt
            inject = payload.get("inject")
            if (
                inject is not None
                and inject.get("attempts") is not None
                and job.attempt >= int(inject["attempts"])
            ):
                del payload["inject"]
            try:
                handle.conn.send(payload)
            except (BrokenPipeError, OSError, ValueError):
                self.crashes += 1
                self._respawn(wid)
                handle.busy = False
                await self._retry_or_fail(
                    job, "worker pipe broke before dispatch"
                )
                continue
            timeout = None
            if job.deadline is not None:
                timeout = max(0.0, job.deadline - time.monotonic())
            recv = loop.run_in_executor(self._recv_pool, handle.conn.recv)
            try:
                reply = await asyncio.wait_for(asyncio.shield(recv), timeout)
            except asyncio.TimeoutError:
                self.deadline_misses += 1
                # No portable way to interrupt one compute: kill the
                # worker, let the stranded recv settle via EOF.
                recv.add_done_callback(_swallow)
                self._respawn(wid)
                self._finish(job, error=DeadlineExceeded(
                    f"job exceeded its "
                    f"{(self.deadline_s or 0):g}s deadline"
                ))
                self._handles[wid].busy = False
                continue
            except (EOFError, OSError):
                self.crashes += 1
                self._respawn(wid)
                self._handles[wid].busy = False
                await self._retry_or_fail(
                    job, "the worker process running this job died"
                )
                continue
            handle.busy = False
            handle.jobs_done += 1
            if reply["ok"]:
                self._finish(job, result=reply["result"])
            else:
                # Deterministic in-job exception: retrying cannot help.
                self._finish(job, error=ComputeFailed(
                    f"{reply['error']}: {reply['message']}"
                ))

    # -- typed compute API (merges results into the service) ---------------

    async def rows(self, family: QueryFamily, sources: List[int]) -> None:
        """Batched row computation in the pool; merges into the cache."""
        backend = BACKENDS[family.protocol]
        if backend.row_protocol is None:
            await self.full(family)
            return
        sources = sorted(set(sources))
        result = await self.submit({
            "kind": "rows",
            "family": family.payload(),
            "sources": sources,
        })
        graph = self.service.load_graph(family.graph_spec)
        rounds = result["rounds"]
        self.service.stats.observe_batch(
            len(sources), rounds,
            sequential_rounds_estimate(len(sources), rounds),
        )
        self.service.stats.observe_protocol_run()
        with self.service._lock:
            self.service.cache.store_rows(
                family, graph.n, result["rows"], rounds=rounds
            )

    async def full(self, family: QueryFamily) -> None:
        """Full-matrix computation in the pool; memoizes the result."""
        result = await self.submit({
            "kind": "full",
            "family": family.payload(),
        })
        graph = self.service.load_graph(family.graph_spec)
        self.service.stats.observe_protocol_run()
        with self.service._lock:
            self.service.cache.store_full(
                family, graph.n, result["rows"], rounds=result["rounds"]
            )

    async def approx_diameter(self, family: QueryFamily) -> int:
        """The 2-vs-4 classification (Algorithm 3) — the degraded path.

        Õ(√n) rounds instead of O(n), so it fits deadlines an exact
        run misses.  The verdict is exact on the paper's promise
        graphs (diameter ∈ {2, 4}); in general ``2`` certifies
        diameter ≤ 2 and ``4`` certifies diameter ≥ 3.
        """
        result = await self.submit({
            "kind": "approx-diameter",
            "family": family.payload(),
        })
        self.service.stats.observe_protocol_run()
        return result["diameter"]

    # -- observability -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-pure counters for the ``/stats`` ``supervisor`` section."""
        return {
            "workers": self.workers,
            "alive": self.live_workers(),
            "pids": self.worker_pids(),
            "pending": self._pending,
            "queue_depth": self.queue_depth,
            "deadline_s": self.deadline_s,
            "retries": self.retries,
            "spawned": self.spawned,
            "respawns": self.respawns,
            "crashes": self.crashes,
            "deadline_misses": self.deadline_misses,
            "requeues": self.requeues,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
        }


def _swallow(future) -> None:
    """Discard the result/exception of an abandoned recv future."""
    if not future.cancelled():
        future.exception()


def retry_after_header(seconds: float) -> str:
    """``Retry-After`` wants integral seconds; round up, floor at 1."""
    return str(max(1, int(math.ceil(seconds))))
