"""The request batcher: concurrent queries → one Algorithm 2 run.

Algorithm 2 computes S-shortest-paths for an *arbitrary* source set in
``O(|S| + D)`` rounds — it is a batch API by construction.  The
batcher exploits that: cold row requests arriving within one
*simulation tick* against the same :class:`~repro.serve.matrix.
QueryFamily` are coalesced into a single source set and answered by
one S-SP run, so ``k`` concurrent misses cost ``|S| + D + O(1)``
rounds instead of ``k`` separate ``D + O(1)``-round runs.

Mechanics:

* the first request for a family opens a *window*; requests landing
  during the window (``tick_s`` seconds) join its source set, with
  duplicate sources sharing one future;
* when the window closes, the batch runs through the configured
  **compute runner**.  The default runner executes
  :meth:`DistanceService.compute_rows` on a dedicated single-thread
  executor (the PR 6 in-process path); ``repro serve --workers N``
  installs runners backed by the supervised worker pool
  (:mod:`repro.serve.supervisor`) instead, so a crashed or slow run
  costs a worker process, not the server;
* oversize windows split: at most ``max_batch`` sources per run, the
  remainder reopens a window immediately.

Runner failures (worker crash budget spent, deadline exceeded, pool
saturated) propagate to every waiter in the window; the HTTP layer
maps them onto the 429/503/degraded contract (docs/serving.md).

:meth:`drain` waits for every open window and in-flight run — the
graceful-shutdown path, so SIGINT never drops an accepted query.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Awaitable, Callable, Dict, List, Optional, Set

from .matrix import QueryFamily
from .service import DistanceService

#: Default coalescing window: long enough for concurrent clients to
#: pile onto one batch, short enough to be invisible next to a run.
DEFAULT_TICK_S = 0.005

#: Algorithm 2's round cost is linear in |S|; cap a single batch so one
#: huge window cannot monopolize the simulation worker.
DEFAULT_MAX_BATCH = 64

#: A compute runner for batched rows: ``await run_rows(family, sources)``.
RowsRunner = Callable[[QueryFamily, List[int]], Awaitable[None]]

#: A compute runner for full matrices: ``await run_full(family)``.
FullRunner = Callable[[QueryFamily], Awaitable[None]]


class _Window:
    """One open coalescing window for a family."""

    __slots__ = ("sources", "waiters", "task")

    def __init__(self) -> None:
        self.sources: List[int] = []
        self.waiters: Dict[int, asyncio.Future] = {}
        self.task: Optional[asyncio.Task] = None


class SourceBatcher:
    """Coalesces per-source row requests into batched S-SP runs."""

    def __init__(
        self,
        service: DistanceService,
        *,
        tick_s: float = DEFAULT_TICK_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        run_rows: Optional[RowsRunner] = None,
        run_full: Optional[FullRunner] = None,
    ) -> None:
        self.service = service
        self.tick_s = tick_s
        self.max_batch = max(1, int(max_batch))
        self._windows: Dict[QueryFamily, _Window] = {}
        self._inflight: Set[asyncio.Task] = set()
        self._run_rows: RowsRunner = run_rows or self._thread_rows
        self._run_full: FullRunner = run_full or self._thread_full
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False

    # -- the default (in-process) compute runner ---------------------------

    def _ensure_executor(self) -> ThreadPoolExecutor:
        # Simulations are CPU-bound pure Python, so one worker thread
        # serializes them without stalling the event loop that is busy
        # answering cache hits.
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-sim"
            )
        return self._executor

    async def _thread_rows(
        self, family: QueryFamily, sources: List[int]
    ) -> None:
        await asyncio.get_running_loop().run_in_executor(
            self._ensure_executor(),
            self.service.compute_rows, family, sources,
        )

    async def _thread_full(self, family: QueryFamily) -> None:
        await asyncio.get_running_loop().run_in_executor(
            self._ensure_executor(), self.service.compute_full, family
        )

    # -- request side ------------------------------------------------------

    async def row(self, family: QueryFamily, source: int) -> None:
        """Ensure ``source``'s row is cached, batching with neighbors.

        Returns once the row is resident; raises whatever the
        underlying run raised.
        """
        if self._closed:
            raise RuntimeError("batcher is shut down")
        window = self._windows.get(family)
        if window is None or len(window.sources) >= self.max_batch:
            window = _Window()
            self._windows[family] = window
            window.task = asyncio.ensure_future(
                self._flush_after_tick(family, window)
            )
            self._track(window.task)
        future = window.waiters.get(source)
        if future is None:
            future = asyncio.get_running_loop().create_future()
            window.waiters[source] = future
            window.sources.append(source)
        await asyncio.shield(future)

    async def full(self, family: QueryFamily) -> None:
        """Ensure the complete matrix is cached (no coalescing axis)."""
        task = asyncio.ensure_future(self._run_full(family))
        self._track(task)
        await asyncio.shield(task)

    # -- flush side --------------------------------------------------------

    def _track(self, task: asyncio.Task) -> None:
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _flush_after_tick(
        self, family: QueryFamily, window: _Window
    ) -> None:
        await asyncio.sleep(self.tick_s)
        if self._windows.get(family) is window:
            del self._windows[family]
        try:
            await self._run_rows(family, list(window.sources))
        except BaseException as exc:  # propagate to every waiter
            for future in window.waiters.values():
                if not future.done():
                    future.set_exception(exc)
            return
        for future in window.waiters.values():
            if not future.done():
                future.set_result(None)

    # -- lifecycle ---------------------------------------------------------

    async def drain(self) -> int:
        """Flush every open window and wait out in-flight runs.

        Returns the number of tasks awaited; used by graceful shutdown
        so accepted queries are answered before the process exits.
        """
        self._closed = True
        drained = 0
        while self._inflight or self._windows:
            pending = list(self._inflight)
            if not pending:
                await asyncio.sleep(0)
                continue
            drained += len(pending)
            await asyncio.gather(*pending, return_exceptions=True)
        return drained

    def close(self) -> None:
        """Release the in-process simulation worker thread, if any."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
