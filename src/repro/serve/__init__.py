"""``repro.serve`` — the persistent distance-query service.

Production framing of the paper's query-shaped algorithms: a
long-running asyncio HTTP+JSON server that loads graphs once, runs
registered protocols on demand through :func:`repro.protocols.run`,
memoizes distance matrices in the content-addressed run cache, and
answers point ``distance`` / ``eccentricity`` / ``diameter`` queries
from resident matrices at memory speed.  Concurrent cold queries
against one graph coalesce into a single Algorithm 2 (S-SP) run —
``O(|S| + D)`` rounds for the whole batch.  See ``docs/serving.md``.

Layering (transport-independent core first):

* :mod:`~repro.serve.matrix` — query families and distance matrices;
* :mod:`~repro.serve.cache` — in-memory LRU over the on-disk RunCache;
* :mod:`~repro.serve.service` — graphs, lookups, protocol runs;
* :mod:`~repro.serve.batch` — the per-tick source batcher;
* :mod:`~repro.serve.stats` — the ``/stats`` counters;
* :mod:`~repro.serve.server` — the HTTP front end + shutdown;
* :mod:`~repro.serve.loadgen` — the ``repro serve-bench`` harness.
"""

from .batch import DEFAULT_MAX_BATCH, DEFAULT_TICK_S, SourceBatcher
from .cache import DEFAULT_MAX_BYTES, MatrixCache
from .loadgen import (
    SCHEMA as LOADGEN_SCHEMA,
    LoadgenOptions,
    render_summary,
    run_loadgen,
    write_artifact,
)
from .matrix import DistanceMatrix, QueryFamily
from .server import (
    DistanceServer,
    ServerConfig,
    ServerThread,
    run_server,
)
from .service import Answer, DistanceService, QueryError
from .stats import ServeStats

__all__ = [
    "Answer",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_TICK_S",
    "DistanceMatrix",
    "DistanceServer",
    "DistanceService",
    "LOADGEN_SCHEMA",
    "LoadgenOptions",
    "MatrixCache",
    "QueryError",
    "QueryFamily",
    "ServeStats",
    "ServerConfig",
    "ServerThread",
    "SourceBatcher",
    "render_summary",
    "run_loadgen",
    "run_server",
    "write_artifact",
]
