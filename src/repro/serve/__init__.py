"""``repro.serve`` — the persistent distance-query service.

Production framing of the paper's query-shaped algorithms: a
long-running asyncio HTTP+JSON server that loads graphs once, runs
registered protocols on demand through :func:`repro.protocols.run`,
memoizes distance matrices in the content-addressed run cache, and
answers point ``distance`` / ``eccentricity`` / ``diameter`` queries
from resident matrices at memory speed.  Concurrent cold queries
against one graph coalesce into a single Algorithm 2 (S-SP) run —
``O(|S| + D)`` rounds for the whole batch.  See ``docs/serving.md``.

Layering (transport-independent core first):

* :mod:`~repro.serve.matrix` — query families and distance matrices;
* :mod:`~repro.serve.cache` — in-memory LRU over the on-disk RunCache;
* :mod:`~repro.serve.service` — graphs, lookups, protocol runs;
* :mod:`~repro.serve.batch` — the per-tick source batcher;
* :mod:`~repro.serve.stats` — the ``/stats`` counters;
* :mod:`~repro.serve.supervisor` — the supervised worker-process
  pool (deadlines, crash retry, respawn, chaos injection);
* :mod:`~repro.serve.breaker` — per-family circuit breakers;
* :mod:`~repro.serve.server` — the HTTP front end + shutdown;
* :mod:`~repro.serve.loadgen` — the ``repro serve-bench`` harness;
* :mod:`~repro.serve.chaos` — the ``repro serve-chaos`` harness.
"""

from .batch import DEFAULT_MAX_BATCH, DEFAULT_TICK_S, SourceBatcher
from .breaker import BreakerBoard, BreakerOpen, CircuitBreaker
from .cache import DEFAULT_MAX_BYTES, MatrixCache
from .chaos import (
    SCHEMA as CHAOS_SCHEMA,
    ChaosOptions,
    run_chaos,
)
from .loadgen import (
    SCHEMA as LOADGEN_SCHEMA,
    LoadgenOptions,
    render_summary,
    run_loadgen,
    write_artifact,
)
from .matrix import DistanceMatrix, QueryFamily
from .server import (
    DistanceServer,
    HttpProtocolError,
    ServerConfig,
    ServerThread,
    run_server,
)
from .service import Answer, DistanceService, QueryError
from .stats import ServeStats
from .supervisor import (
    ChaosPlan,
    ComputeFailed,
    DeadlineExceeded,
    PoolSaturated,
    Supervisor,
    SupervisorError,
)

__all__ = [
    "Answer",
    "BreakerBoard",
    "BreakerOpen",
    "CHAOS_SCHEMA",
    "ChaosOptions",
    "ChaosPlan",
    "CircuitBreaker",
    "ComputeFailed",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_TICK_S",
    "DeadlineExceeded",
    "DistanceMatrix",
    "DistanceServer",
    "DistanceService",
    "HttpProtocolError",
    "LOADGEN_SCHEMA",
    "LoadgenOptions",
    "MatrixCache",
    "PoolSaturated",
    "QueryError",
    "QueryFamily",
    "ServeStats",
    "ServerConfig",
    "ServerThread",
    "SourceBatcher",
    "Supervisor",
    "SupervisorError",
    "render_summary",
    "run_chaos",
    "run_loadgen",
    "run_server",
    "write_artifact",
]
